"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one of the paper's figures (or the
Section 4 "table" of theoretical properties).  Absolute numbers differ
from the paper — the datasets are synthetic and the budget is laptop
scale — but each module prints the same *series* the paper plots so the
qualitative shape (who converges, who wins, by roughly what margin) can
be compared directly.

Scaling
-------
By default the benchmarks run a scaled-down configuration so the whole
suite finishes in minutes.  Set the environment variable
``REPRO_BENCH_PAPER=1`` to use the paper's configuration (10 clients,
longer training); expect a much longer run time.
"""

from __future__ import annotations

import os
import platform
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.learning.experiment import ExperimentConfig, run_experiment
from repro.learning.history import TrainingHistory

#: True when the paper-scale configuration is requested.
PAPER_SCALE = os.environ.get("REPRO_BENCH_PAPER", "0") not in ("", "0", "false", "False")


def scaled(small, paper):
    """Pick the scaled-down or paper-scale value of a parameter."""
    return paper if PAPER_SCALE else small


def build_info() -> Dict[str, object]:
    """Numerical-stack provenance for BENCH_* artifacts.

    Kernel timings depend as much on the BLAS build and its thread pool
    as on the code under test, so every artifact row set records the
    numpy version, the linked BLAS/LAPACK implementation, the machine,
    and the thread-count environment in effect — successive CI runs can
    then only be compared when this block matches.
    """
    try:
        blas = np.show_config(mode="dicts").get("Build Dependencies", {}).get("blas", {})
        blas_info = {
            "name": blas.get("name", "unknown"),
            "version": blas.get("version", "unknown"),
        }
    except Exception:  # pragma: no cover - older numpy without mode="dicts"
        blas_info = {"name": "unknown", "version": "unknown"}
    thread_env = {
        var: os.environ.get(var)
        for var in (
            "OMP_NUM_THREADS",
            "OPENBLAS_NUM_THREADS",
            "MKL_NUM_THREADS",
            "VECLIB_MAXIMUM_THREADS",
            "NUMEXPR_NUM_THREADS",
        )
        if os.environ.get(var) is not None
    }
    return {
        "numpy_version": np.__version__,
        "blas": blas_info,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "thread_env": thread_env,
        "kernel_backend": os.environ.get("REPRO_KERNEL_BACKEND", "numpy"),
    }


def artifact_headlines(payload: Dict[str, object]) -> Dict[str, float]:
    """Comparable headline metrics of a BENCH_* artifact, keyed stably.

    Two shapes exist in the suite and both are handled:

    * ``cases``-style artifacts (message plane, rng modes): one metric
      per case row — ``rounds_per_sec``, keyed by the row's identity
      fields (label plus whichever of plane / rng_mode / n / d are
      present).  ``rounds`` is deliberately *not* part of the key:
      rounds/sec is already per-round, so a smoke run (few rounds) is
      comparable against a full-run baseline (more rounds).
    * headline-dict artifacts (subset kernels): every top-level section
      whose value is a mapping contributes its ``*_speedup`` entries,
      keyed ``section:name``.

    Every metric is higher-is-better, which is what
    :func:`compare_to_baseline` assumes.
    """
    headlines: Dict[str, float] = {}
    for row in payload.get("cases", []) or []:
        if not isinstance(row, dict) or "rounds_per_sec" not in row:
            continue
        parts = [str(row.get("label", row.get("scheduler", "case")))]
        for field in ("plane", "rng_mode", "n", "d"):
            if field in row:
                parts.append(f"{field}={row[field]}")
        headlines["case:" + "|".join(parts)] = float(row["rounds_per_sec"])
    for section, value in payload.items():
        if section in ("cases", "build") or not isinstance(value, dict):
            continue
        for name, metric in value.items():
            if name.endswith("_speedup") and isinstance(metric, (int, float)):
                headlines[f"{section}:{name}"] = float(metric)
    return headlines


def compare_to_baseline(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    *,
    max_regression: float = 0.30,
) -> Dict[str, List[str]]:
    """Compare a fresh BENCH_* artifact against its committed baseline.

    Returns ``{"failures": [...], "warnings": [...], "info": [...]}``.
    A headline shared by both artifacts that regressed by more than
    ``max_regression`` (fractional, against the baseline) is a failure —
    unless the two ``build`` fingerprints differ, in which case every
    regression is demoted to a warning: timings from different
    numpy/BLAS/machine combinations are not comparable enough to gate
    on (see :func:`build_info`).  Headlines present on only one side
    are informational (grids and smoke subsets legitimately differ).
    """
    report: Dict[str, List[str]] = {"failures": [], "warnings": [], "info": []}
    same_build = fresh.get("build") == baseline.get("build")
    if not same_build:
        report["warnings"].append(
            "build fingerprints differ: regressions are warn-only"
        )
    fresh_headlines = artifact_headlines(fresh)
    base_headlines = artifact_headlines(baseline)
    shared = sorted(set(fresh_headlines) & set(base_headlines))
    if not shared:
        report["warnings"].append("no shared headline metrics to compare")
    for key in shared:
        base = base_headlines[key]
        new = fresh_headlines[key]
        if base <= 0:
            report["info"].append(f"{key}: baseline metric is {base}, skipped")
            continue
        regression = 1.0 - new / base
        line = f"{key}: {base:.2f} -> {new:.2f} ({-regression:+.1%})"
        if regression > max_regression:
            (report["failures"] if same_build else report["warnings"]).append(
                f"{line} exceeds the {max_regression:.0%} regression budget"
            )
        else:
            report["info"].append(line)
    only = sorted(set(fresh_headlines) ^ set(base_headlines))
    if only:
        report["info"].append(
            f"{len(only)} headline(s) present on one side only (ignored)"
        )
    return report


@dataclass
class FigureSpec:
    """One figure: a set of named experiment configurations."""

    figure_id: str
    description: str
    configs: Dict[str, ExperimentConfig]

    def run(self) -> Dict[str, TrainingHistory]:
        """Run every configuration and return the histories by label."""
        return {label: run_experiment(config) for label, config in self.configs.items()}


def accuracy_table(histories: Dict[str, TrainingHistory], *, every: int = 1) -> str:
    """Render accuracy-vs-round series as a plain-text table.

    One row per algorithm, one column every ``every`` recorded rounds plus
    the final value — the same series the paper's figures plot.
    """
    lines: List[str] = []
    header_done = False
    for label, history in histories.items():
        accs = history.accuracies()
        cols = accs[::every]
        if cols and accs[-1] != cols[-1]:
            cols.append(accs[-1])
        if not header_done:
            rounds = list(range(0, history.rounds, every))
            if rounds and rounds[-1] != history.rounds - 1:
                rounds.append(history.rounds - 1)
            lines.append("round      " + "  ".join(f"{r:>6d}" for r in rounds))
            header_done = True
        lines.append(f"{label:<10s} " + "  ".join(f"{a:6.3f}" for a in cols))
    return "\n".join(lines)


def summary_table(histories: Dict[str, TrainingHistory]) -> str:
    """Final/best accuracy summary table (one row per algorithm)."""
    lines = [f"{'algorithm':<12s} {'final_acc':>9s} {'best_acc':>9s} {'final_loss':>10s}"]
    for label, history in histories.items():
        final_loss = history.losses()[-1] if history.records else float("nan")
        lines.append(
            f"{label:<12s} {history.final_accuracy():9.3f} {history.best_accuracy():9.3f} "
            f"{final_loss:10.3f}"
        )
    return "\n".join(lines)


def print_report(figure_id: str, description: str, body: str) -> None:
    """Print a benchmark report block with a recognisable banner."""
    banner = "=" * 72
    print(f"\n{banner}\n[{figure_id}] {description}\n{banner}\n{body}\n")


def centralized_config(**overrides) -> ExperimentConfig:
    """Scaled centralized base configuration shared by FIG1/2 benches."""
    base = ExperimentConfig(
        setting="centralized",
        dataset="mnist",
        heterogeneity="mild",
        aggregation="box-geom",
        attack="sign-flip",
        num_clients=10,
        num_byzantine=1,
        rounds=scaled(40, 150),
        num_samples=scaled(800, 6000),
        batch_size=scaled(16, 32),
        learning_rate=scaled(0.05, 0.01),
        mlp_hidden=scaled((32, 16), (128, 64)),
        seed=7,
    )
    return base.with_overrides(**overrides)


def decentralized_config(**overrides) -> ExperimentConfig:
    """Scaled decentralized base configuration shared by FIG3 benches."""
    base = ExperimentConfig(
        setting="decentralized",
        dataset="mnist",
        heterogeneity="mild",
        aggregation="box-geom",
        attack="sign-flip",
        num_clients=scaled(7, 10),
        num_byzantine=1,
        rounds=scaled(35, 150),
        num_samples=scaled(560, 6000),
        batch_size=scaled(16, 32),
        learning_rate=scaled(0.05, 0.01),
        mlp_hidden=scaled((16, 8), (128, 64)),
        # Cap the subset enumeration so the hyperbox/MD searches stay
        # laptop-fast at gradient dimensionality.
        aggregation_kwargs={"max_subsets": scaled(10, 45)},
        seed=7,
    )
    return base.with_overrides(**overrides)
