"""ABL — ablation benchmarks beyond the paper's figures.

Three ablations called out in DESIGN.md:

1. attack sweep: BOX-GEOM vs plain mean across the attack zoo
   (crash, random vector, magnitude, opposite-of-mean, label flip),
2. sub-round sweep: how the number of agreement sub-rounds affects the
   final gradient disagreement in the decentralized setting,
3. subset-budget sweep: accuracy impact of sampling the ``(n-t)``-subset
   enumeration in BOX-GEOM (the ``max_subsets`` knob).
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import centralized_config, decentralized_config, print_report, scaled, summary_table

from repro.learning.experiment import run_experiment

ATTACKS = ("crash", "random-vector", "magnitude", "opposite-mean", "label-flip")


def test_ablation_attack_sweep(benchmark):
    """BOX-GEOM vs plain mean across the attack zoo (centralized)."""

    def run():
        histories = {}
        for attack in ATTACKS:
            for rule in ("box-geom", "mean"):
                config = centralized_config(
                    aggregation=rule, attack=attack, rounds=scaled(10, 100)
                )
                histories[f"{attack}/{rule}"] = run_experiment(config)
        return histories

    histories = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report("ABL-attacks", "BOX-GEOM vs mean across attacks", summary_table(histories))
    assert len(histories) == len(ATTACKS) * 2


def test_ablation_subround_schedule(benchmark):
    """Gradient disagreement vs number of agreement sub-rounds."""

    def run():
        results = {}
        for subrounds in (1, 2, 4):
            config = decentralized_config(rounds=scaled(3, 20))
            from repro.learning.experiment import build_experiment
            from repro.agreement.registry import make_algorithm
            from repro.learning.decentralized import DecentralizedTrainer
            from repro.nn.optimizers import SGD

            built = build_experiment(config)
            algorithm = make_algorithm(
                "box-geom", config.num_clients, config.tolerance,
                **config.aggregation_kwargs,
            )
            trainer = DecentralizedTrainer(
                built.clients,
                algorithm,
                built.test_data,
                optimizer=SGD(config.learning_rate, total_rounds=config.rounds),
                subround_schedule=lambda _iteration, s=subrounds: s,
                flatten_inputs=built.flatten_inputs,
                seed=0,
            )
            history = trainer.train(config.rounds)
            results[subrounds] = history.records[-1].gradient_disagreement
        return results

    disagreements = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"sub-rounds={k}: final gradient disagreement = {v:.3e}" for k, v in disagreements.items()]
    print_report("ABL-subrounds", "Agreement sub-round sweep (BOX-GEOM, decentralized)", "\n".join(lines))
    # More sub-rounds must not increase the disagreement.
    values = [disagreements[k] for k in sorted(disagreements)]
    assert values[-1] <= values[0] + 1e-9


def test_ablation_subset_budget(benchmark):
    """BOX-GEOM accuracy as the subset-enumeration budget shrinks."""

    def run():
        histories = {}
        for budget in (None, 12, 4):
            label = "exhaustive" if budget is None else f"budget={budget}"
            kwargs = {} if budget is None else {"max_subsets": budget}
            config = centralized_config(
                aggregation="box-geom", rounds=scaled(10, 100), aggregation_kwargs=kwargs
            )
            histories[label] = run_experiment(config)
        return histories

    histories = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report("ABL-subsets", "BOX-GEOM subset sampling budget sweep", summary_table(histories))
    assert len(histories) == 3
