"""ASYNC-ENGINE — event-driven scheduler throughput and trace overhead.

Not a figure of the paper; the smoke benchmark for
:mod:`repro.engine.asynchronous`.  It drives the same mean-update
agreement exchange through the synchronous baseline and the asynchronous
scheduler (calm and bursty regimes, quorum and full-count wait
conditions) and reports rounds/sec, so CI can track both the engine's
event-driven overhead and the cost of the per-round delivery traces
every stats-recording scheduler now keeps.

Running it writes a ``BENCH_async_engine.json`` artifact (one row per
case and size):

    PYTHONPATH=src python benchmarks/bench_async_engine.py --smoke

or through pytest:

    pytest benchmarks/bench_async_engine.py -s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

try:
    from _harness import build_info, print_report, scaled
except ImportError:  # pragma: no cover - direct script execution
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from _harness import build_info, print_report, scaled

from repro.engine import make_scheduler, run_exchange

#: Scheduler configurations benchmarked against each other.  The
#: synchronous row is the no-overhead baseline; the asynchronous rows
#: cover calm vs. bursty delay regimes and quorum vs. timeout waiting.
CASES = [
    {"label": "synchronous", "scheduler": "synchronous", "kwargs": {}, "wait": None},
    {
        "label": "async(calm,quorum)",
        "scheduler": "asynchronous",
        "kwargs": {"wait_timeout": 2.0},
        "wait": "quorum",
    },
    {
        "label": "async(bursty,quorum)",
        "scheduler": "asynchronous",
        "kwargs": {"wait_timeout": 2.0, "burstiness": 0.3},
        "wait": "quorum",
    },
    {
        "label": "async(bursty,count=n)",
        "scheduler": "asynchronous",
        "kwargs": {"wait_timeout": 2.0, "burstiness": 0.3},
        "wait": "count",
    },
]


def measure_case(
    case: Dict[str, object], *, n: int, d: int, rounds: int, seed: int = 0
) -> Dict[str, object]:
    """Time ``rounds`` mean-update exchange rounds on one case."""
    engine = make_scheduler(
        str(case["scheduler"]), n, seed=seed, keep_history=False,
        **dict(case["kwargs"]),
    )
    engine.require_quorum(1, policy="starve")
    if case["wait"] == "quorum":
        engine.wait_for(quorum=True)
    elif case["wait"] == "count":
        engine.wait_for(count=n)
    rng = np.random.default_rng(seed)
    initial = {i: rng.normal(size=d) for i in range(n)}

    start = time.perf_counter()
    final = run_exchange(engine, initial, rounds, lambda _n, received: received.mean(axis=0))
    seconds = time.perf_counter() - start

    assert len(final) == n, "every node must come out of the exchange"
    trace = engine.trace_snapshot()
    return {
        "label": case["label"],
        "scheduler": case["scheduler"],
        "kwargs": dict(case["kwargs"]),
        "wait": case["wait"],
        "n": n,
        "d": d,
        "rounds": rounds,
        "seconds": seconds,
        "rounds_per_sec": rounds / seconds if seconds > 0 else float("inf"),
        "trace_rows": len(trace),
        "stats": engine.stats_snapshot(),
        "pending": getattr(engine, "pending_count", lambda: 0)(),
    }


def run_trajectory(smoke: bool = False) -> Dict[str, object]:
    """Measure every case at one (smoke) or two sizes."""
    if smoke:
        sizes = [(10, 64, 200)]
    else:
        sizes = [(10, 64, scaled(500, 2000)), (25, 256, scaled(200, 1000))]
    # Warm up BLAS / allocator before timing anything.
    measure_case(CASES[0], n=4, d=8, rounds=10)
    rows: List[Dict[str, object]] = [
        measure_case(case, n=n, d=d, rounds=rounds)
        for (n, d, rounds) in sizes
        for case in CASES
    ]
    return {
        "benchmark": "async_engine",
        "created_unix": time.time(),
        "build": build_info(),
        "smoke": smoke,
        "cases": rows,
    }


def render_report(payload: Dict[str, object]) -> str:
    lines = [
        f"{'case':<24} {'n':>4} {'d':>5} {'rounds':>7} {'rounds/s':>9} "
        f"{'delivered':>10} {'delayed':>8} {'pending':>8} {'trace':>6}"
    ]
    for row in payload["cases"]:
        stats = row["stats"]
        lines.append(
            f"{row['label']:<24} {row['n']:>4} {row['d']:>5} {row['rounds']:>7} "
            f"{row['rounds_per_sec']:>9.1f} {stats['delivered']:>10} "
            f"{stats['delayed']:>8} {row['pending']:>8} {row['trace_rows']:>6}"
        )
    return "\n".join(lines)


def check_sanity(payload: Dict[str, object]) -> None:
    """Progress, conservation (asynchrony loses nothing) and trace shape."""
    by_size: Dict[tuple, Dict[str, dict]] = {}
    for row in payload["cases"]:
        assert row["rounds_per_sec"] > 0, f"{row['label']} made no progress"
        stats = row["stats"]
        assert stats["delivered"] > 0, f"{row['label']} delivered nothing"
        assert stats["dropped"] == 0, f"{row['label']} lost messages: {stats}"
        if row["scheduler"] == "asynchronous":
            # No-loss conservation: everything sent is delivered,
            # expired, or still in flight.
            accounted = (
                stats["delivered"] + stats["expired_at_reset"] + row["pending"]
            )
            assert accounted == stats["sent"], (
                f"{row['label']} counters do not add up: {stats}"
            )
            # One trace row per executed round.
            assert row["trace_rows"] == row["rounds"], (
                f"{row['label']} trace rows {row['trace_rows']} != rounds"
            )
        by_size.setdefault((row["n"], row["d"]), {})[row["label"]] = row
    for size, cases in by_size.items():
        sync = cases.get("synchronous")
        if sync is None:
            continue
        for label, row in cases.items():
            if label == "synchronous":
                continue
            # Delivery-trace + event-queue overhead stays within an order
            # of magnitude of lock-step delivery.
            slowdown = sync["rounds_per_sec"] / row["rounds_per_sec"]
            assert slowdown < 25.0, (
                f"{label} at {size} is {slowdown:.1f}x slower than synchronous"
            )


def write_artifact(payload: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_async_engine_throughput():
    """Pytest entry: trajectory + sanity checks + JSON artifact."""
    payload = run_trajectory(smoke=False)
    print_report(
        "ASYNC-ENGINE",
        "rounds/sec: event-driven scheduler vs synchronous baseline",
        render_report(payload),
    )
    write_artifact(payload, "BENCH_async_engine.json")
    check_sanity(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single small size per case (CI mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_async_engine.json",
        help="path of the JSON trajectory artifact",
    )
    args = parser.parse_args(argv)
    payload = run_trajectory(smoke=args.smoke)
    print_report(
        "ASYNC-ENGINE",
        "rounds/sec: event-driven scheduler vs synchronous baseline",
        render_report(payload),
    )
    write_artifact(payload, args.output)
    print(f"wrote {args.output}")
    check_sanity(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
