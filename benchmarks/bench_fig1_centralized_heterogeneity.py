"""FIG1 — centralized collaborative learning, MLP, f = 1 sign flip,
across the three data-heterogeneity regimes.

Paper reference: Figure 1.  Expected shape: MD-MEAN, MD-GEOM, BOX-MEAN
and BOX-GEOM all reach high accuracy under uniform and mild
heterogeneity; Krum and Multi-Krum keep up on uniform/mild data but
collapse under extreme (2-class) heterogeneity because they select only
one / three input vectors.

Run ``pytest benchmarks/bench_fig1_centralized_heterogeneity.py
--benchmark-only -s`` to see the regenerated accuracy series; set
``REPRO_BENCH_PAPER=1`` for the paper-scale configuration.
"""

from __future__ import annotations

import pytest

from _harness import (
    FigureSpec,
    accuracy_table,
    centralized_config,
    print_report,
    summary_table,
)

ALGORITHMS = ("md-mean", "md-geom", "box-mean", "box-geom", "krum", "multi-krum")
HETEROGENEITIES = ("uniform", "mild", "extreme")


def _figure(heterogeneity: str) -> FigureSpec:
    configs = {
        name: centralized_config(aggregation=name, heterogeneity=heterogeneity)
        for name in ALGORITHMS
    }
    return FigureSpec(
        figure_id=f"FIG1[{heterogeneity}]",
        description=(
            "Centralized, MLP, synthetic MNIST, f=1 sign flip, "
            f"{heterogeneity} heterogeneity"
        ),
        configs=configs,
    )


@pytest.mark.parametrize("heterogeneity", HETEROGENEITIES)
def test_fig1_centralized_heterogeneity(benchmark, heterogeneity):
    """Regenerate one panel of Figure 1 and report the accuracy series."""
    spec = _figure(heterogeneity)
    histories = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    print_report(
        spec.figure_id,
        spec.description,
        accuracy_table(histories, every=max(1, len(next(iter(histories.values())).records) // 6))
        + "\n\n"
        + summary_table(histories),
    )
    # Sanity: every algorithm produced a full history.
    for history in histories.values():
        assert history.rounds == next(iter(histories.values())).rounds
