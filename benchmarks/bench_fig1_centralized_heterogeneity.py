"""FIG1 — centralized collaborative learning, MLP, f = 1 sign flip,
across the three data-heterogeneity regimes.

Paper reference: Figure 1.  Expected shape: MD-MEAN, MD-GEOM, BOX-MEAN
and BOX-GEOM all reach high accuracy under uniform and mild
heterogeneity; Krum and Multi-Krum keep up on uniform/mild data but
collapse under extreme (2-class) heterogeneity because they select only
one / three input vectors.

Each panel is driven through the ``repro.sweep`` engine: the aggregation
rules form one grid axis, so the panel benefits from the engine's
deterministic per-cell seeding and can be parallelised / resumed via
``REPRO_BENCH_SWEEP_WORKERS``.

Run ``pytest benchmarks/bench_fig1_centralized_heterogeneity.py
--benchmark-only -s`` to see the regenerated accuracy series; set
``REPRO_BENCH_PAPER=1`` for the paper-scale configuration.
"""

from __future__ import annotations

import os

import pytest

from _harness import (
    accuracy_table,
    centralized_config,
    print_report,
    summary_table,
)
from repro.sweep import ScenarioGrid, SweepRunner, rows_to_histories

ALGORITHMS = ("md-mean", "md-geom", "box-mean", "box-geom", "krum", "multi-krum")
HETEROGENEITIES = ("uniform", "mild", "extreme")

#: Worker processes for the per-panel sweep (1 = in-process).
SWEEP_WORKERS = int(os.environ.get("REPRO_BENCH_SWEEP_WORKERS", "1"))


def _panel_grid(heterogeneity: str) -> ScenarioGrid:
    base = centralized_config(heterogeneity=heterogeneity)
    # derive_seeds=False keeps the panel a *paired* comparison: every
    # rule trains on the identical dataset, partition and initial
    # weights (seed 7), exactly as the pre-sweep harness did.
    return ScenarioGrid(base, {"aggregation": list(ALGORITHMS)}, derive_seeds=False)


def _run_panel(grid: ScenarioGrid):
    rows = SweepRunner(grid, workers=SWEEP_WORKERS).run()
    histories = rows_to_histories(rows)
    # Key the report by the rule name alone (the single grid axis).
    return {row["axes"]["aggregation"]: histories[row["cell_id"]] for row in rows}


@pytest.mark.parametrize("heterogeneity", HETEROGENEITIES)
def test_fig1_centralized_heterogeneity(benchmark, heterogeneity):
    """Regenerate one panel of Figure 1 and report the accuracy series."""
    grid = _panel_grid(heterogeneity)
    histories = benchmark.pedantic(_run_panel, args=(grid,), rounds=1, iterations=1)
    print_report(
        f"FIG1[{heterogeneity}]",
        (
            "Centralized, MLP, synthetic MNIST, f=1 sign flip, "
            f"{heterogeneity} heterogeneity (sweep engine, "
            f"{SWEEP_WORKERS} worker(s))"
        ),
        accuracy_table(histories, every=max(1, len(next(iter(histories.values())).records) // 6))
        + "\n\n"
        + summary_table(histories),
    )
    # Sanity: every algorithm produced a full history.
    for history in histories.values():
        assert history.rounds == next(iter(histories.values())).rounds
