"""FIG2a — centralized, MLP, extreme heterogeneity, f = 2 sign-flip attackers.

Paper reference: Figure 2a.  Expected shape: MD-MEAN fails to converge,
MD-GEOM reaches the best accuracy but is unstable, BOX-MEAN and BOX-GEOM
converge to a middling accuracy, Krum and Multi-Krum converge but at low
accuracy (~30-40%).
"""

from __future__ import annotations

from _harness import (
    FigureSpec,
    accuracy_table,
    centralized_config,
    print_report,
    scaled,
    summary_table,
)

ALGORITHMS = ("md-mean", "md-geom", "box-mean", "box-geom", "krum", "multi-krum")


def _figure() -> FigureSpec:
    configs = {
        name: centralized_config(
            aggregation=name,
            heterogeneity="extreme",
            num_byzantine=2,
            byzantine_tolerance=2,
            rounds=scaled(40, 200),
        )
        for name in ALGORITHMS
    }
    return FigureSpec(
        figure_id="FIG2A",
        description="Centralized, MLP, extreme heterogeneity, f=2 sign flip",
        configs=configs,
    )


def test_fig2a_centralized_extreme_f2(benchmark):
    """Regenerate Figure 2a and report the accuracy series."""
    spec = _figure()
    histories = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    print_report(
        spec.figure_id,
        spec.description,
        accuracy_table(histories, every=max(1, len(next(iter(histories.values())).records) // 6))
        + "\n\n"
        + summary_table(histories),
    )
    for history in histories.values():
        assert history.num_byzantine == 2
