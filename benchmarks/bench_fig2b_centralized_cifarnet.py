"""FIG2b — centralized, CifarNet, synthetic CIFAR10, f = 1, mild heterogeneity.

Paper reference: Figure 2b.  Expected shape: the four agreement-based
rules (BOX-GEOM, BOX-MEAN, MD-GEOM, MD-MEAN) end close together,
Multi-Krum slightly below them, Krum clearly worst.
"""

from __future__ import annotations

from _harness import (
    FigureSpec,
    accuracy_table,
    centralized_config,
    print_report,
    scaled,
    summary_table,
)

ALGORITHMS = ("md-mean", "md-geom", "box-mean", "box-geom", "krum", "multi-krum")


def _figure() -> FigureSpec:
    configs = {
        name: centralized_config(
            aggregation=name,
            dataset="cifar10",
            heterogeneity="mild",
            rounds=scaled(8, 200),
            num_samples=scaled(400, 6000),
            batch_size=scaled(8, 32),
        )
        for name in ALGORITHMS
    }
    return FigureSpec(
        figure_id="FIG2B",
        description="Centralized, CifarNet, synthetic CIFAR10, f=1 sign flip, mild heterogeneity",
        configs=configs,
    )


def test_fig2b_centralized_cifarnet(benchmark):
    """Regenerate Figure 2b and report the accuracy series."""
    spec = _figure()
    histories = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    print_report(
        spec.figure_id,
        spec.description,
        accuracy_table(histories) + "\n\n" + summary_table(histories),
    )
    for history in histories.values():
        assert history.rounds >= 1
