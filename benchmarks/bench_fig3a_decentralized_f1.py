"""FIG3a — decentralized collaborative learning, MLP, f = 1 sign flip,
mild heterogeneity.

Paper reference: Figure 3a.  Expected shape: the mean-based agreement
algorithms (MD-MEAN, BOX-MEAN) fail to converge under the sign-flip
attack, while the geometric-median-based ones (MD-GEOM, BOX-GEOM)
converge (paper: 77.8% and 78.8% respectively).
"""

from __future__ import annotations

from _harness import (
    FigureSpec,
    accuracy_table,
    decentralized_config,
    print_report,
    summary_table,
)

ALGORITHMS = ("md-mean", "md-geom", "box-mean", "box-geom")


def _figure() -> FigureSpec:
    configs = {
        name: decentralized_config(aggregation=name) for name in ALGORITHMS
    }
    return FigureSpec(
        figure_id="FIG3A",
        description="Decentralized, MLP, mild heterogeneity, f=1 sign flip",
        configs=configs,
    )


def test_fig3a_decentralized_f1(benchmark):
    """Regenerate Figure 3a and report the per-round mean accuracy series."""
    spec = _figure()
    histories = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    body = accuracy_table(histories) + "\n\n" + summary_table(histories)
    disagreement = "\n".join(
        f"{label:<10s} final gradient disagreement = "
        f"{history.records[-1].gradient_disagreement:.3e}"
        for label, history in histories.items()
    )
    print_report(spec.figure_id, spec.description, body + "\n\n" + disagreement)
    for history in histories.values():
        assert history.setting == "decentralized"
