"""FIG3b — decentralized collaborative learning, MLP, f = 2 sign flip,
mild heterogeneity.

Paper reference: Figure 3b.  Expected shape: MD-MEAN and BOX-MEAN fail
to converge; MD-GEOM reaches ~65% but is unstable; BOX-GEOM converges
(~62%).
"""

from __future__ import annotations

from _harness import (
    FigureSpec,
    accuracy_table,
    decentralized_config,
    print_report,
    scaled,
    summary_table,
)

ALGORITHMS = ("md-mean", "md-geom", "box-mean", "box-geom")


def _figure() -> FigureSpec:
    configs = {
        name: decentralized_config(
            aggregation=name,
            num_clients=scaled(8, 10),
            num_byzantine=2,
            byzantine_tolerance=2,
        )
        for name in ALGORITHMS
    }
    return FigureSpec(
        figure_id="FIG3B",
        description="Decentralized, MLP, mild heterogeneity, f=2 sign flip",
        configs=configs,
    )


def test_fig3b_decentralized_f2(benchmark):
    """Regenerate Figure 3b and report the per-round mean accuracy series."""
    spec = _figure()
    histories = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    print_report(
        spec.figure_id,
        spec.description,
        accuracy_table(histories) + "\n\n" + summary_table(histories),
    )
    for history in histories.values():
        assert history.num_byzantine == 2
