"""MESSAGE-PLANE — object vs batch delivery throughput along the node axis.

Not a figure of the paper; the scaling benchmark for the array-backed
batch message plane (:mod:`repro.network.batch`).  It drives the same
mean-update exchange through every scheduler on both delivery planes —
the legacy per-``Message``-object plane and the vectorized batch plane —
over n in {64, 256, 1024, 4096}, and reports rounds/sec plus the
batch/object speedup per (scheduler, n) pair.

The object plane materialises n^2 message objects per round, so it is
measured only up to n=1024; n=4096 runs on the batch plane alone (the
point of the refactor: the node axis scales past where per-object
delivery is usable at all).

Running it writes a ``BENCH_message_plane.json`` artifact:

    PYTHONPATH=src python benchmarks/bench_message_plane.py

``--smoke`` runs the single CI gate — lossy delivery at n=1024, d=256 on
both planes — and asserts the batch plane is at least 5x faster:

    PYTHONPATH=src python benchmarks/bench_message_plane.py --smoke

or through pytest:

    pytest benchmarks/bench_message_plane.py -s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

try:
    from _harness import build_info, print_report
except ImportError:  # pragma: no cover - direct script execution
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from _harness import build_info, print_report

from repro.engine import make_scheduler
from repro.network.delivery import EmptyInboxError, full_broadcast_plan

#: Scheduler configurations benchmarked on both planes.
SCHEDULER_CASES = [
    {"scheduler": "synchronous", "kwargs": {}},
    {"scheduler": "partial", "kwargs": {"delay": 2}},
    {"scheduler": "lossy", "kwargs": {"drop_rate": 0.1,
                                      "crash_schedule": ((1, 2, 5),)}},
    {"scheduler": "asynchronous", "kwargs": {"wait_timeout": 2.0,
                                             "burstiness": 0.2}},
]

#: (n, rounds) grid of the full run; d is fixed at the CI gate's 256.
SIZE_GRID = [(64, 30), (256, 10), (1024, 3), (4096, 2)]
DIMENSION = 256

#: The object plane builds n^2 Message objects per round — beyond this it
#: is not usefully measurable (that is what the batch plane replaces).
OBJECT_PLANE_MAX_N = 1024

#: The partial scheduler's delay draws and the asynchronous scheduler's
#: bitwise-pinned lag transform are per-link scalar work even on the
#: batch plane, so their n=4096 cell would dominate the suite's runtime;
#: the n=4096 completion gate runs on synchronous + lossy.
SCALAR_RNG_MAX_N = {"partial": 1024, "asynchronous": 1024}

#: CI smoke gate: batch must beat object by at least this factor here.
SMOKE_N, SMOKE_D, SMOKE_ROUNDS, SMOKE_MIN_SPEEDUP = 1024, 256, 3, 5.0


def _case_label(case: Dict[str, object]) -> str:
    knobs = ",".join(f"{k}={v}" for k, v in sorted(case["kwargs"].items()))
    return case["scheduler"] + (f"({knobs})" if knobs else "")


def measure_case(
    scheduler: str,
    kwargs: Dict[str, object],
    *,
    n: int,
    d: int,
    rounds: int,
    plane: str,
    seed: int = 0,
) -> Dict[str, object]:
    """Time ``rounds`` delivery rounds on one plane.

    The timed loop is the message plane itself: every node broadcasts,
    the scheduler delivers, and every receiver materialises its
    consumption-ready ``(m, d)`` matrix — per-message payload stacking on
    the object plane, one vectorized gather on the batch plane.  No
    aggregation runs inside the loop (that cost is plane-independent and
    would only dilute the comparison).
    """
    engine = make_scheduler(
        scheduler, n, seed=seed, keep_history=False, message_plane=plane, **kwargs
    )
    engine.require_quorum(1, policy="starve")
    if scheduler == "asynchronous":
        # Event-driven delivery needs an explicit wait condition; a 2/3
        # target keeps every node waiting on real arrivals.
        engine.wait_for(count=max(1, (2 * n) // 3))
    rng = np.random.default_rng(seed)
    plans = [full_broadcast_plan(i, rng.normal(size=d)) for i in range(n)]

    delivered_rows = 0
    start = time.perf_counter()
    for round_index in range(rounds):
        result = engine.submit(plans, round_index)
        for node in range(n):
            try:
                matrix = result.received_matrix(node)
            except EmptyInboxError:
                continue  # crashed / starved receiver this round
            delivered_rows += matrix.shape[0]
    seconds = time.perf_counter() - start

    assert delivered_rows > 0, "no node materialised any delivery"
    return {
        "scheduler": scheduler,
        "kwargs": {k: list(map(list, v)) if k == "crash_schedule" else v
                   for k, v in kwargs.items()},
        "label": _case_label({"scheduler": scheduler, "kwargs": kwargs}),
        "plane": plane,
        "n": n,
        "d": d,
        "rounds": rounds,
        "seconds": seconds,
        "rounds_per_sec": rounds / seconds if seconds > 0 else float("inf"),
        "stats": engine.stats_snapshot(),
    }


def attach_speedups(rows: List[Dict[str, object]]) -> None:
    """Annotate every batch row with its speedup over the paired object row."""
    object_times = {
        (row["label"], row["n"]): row["seconds"] / row["rounds"]
        for row in rows
        if row["plane"] == "object"
    }
    for row in rows:
        if row["plane"] != "batch":
            continue
        base = object_times.get((row["label"], row["n"]))
        if base is not None and row["seconds"] > 0:
            row["speedup_vs_object"] = base / (row["seconds"] / row["rounds"])


def run_trajectory(smoke: bool = False) -> Dict[str, object]:
    """Measure every scheduler x plane over the node-axis grid."""
    # Warm up BLAS / allocator before timing anything.
    measure_case("synchronous", {}, n=4, d=8, rounds=10, plane="batch")
    rows: List[Dict[str, object]] = []
    skipped: List[str] = []
    if smoke:
        case = SCHEDULER_CASES[2]  # lossy: the CI gate's configuration
        for plane in ("object", "batch"):
            rows.append(
                measure_case(
                    case["scheduler"], dict(case["kwargs"]),
                    n=SMOKE_N, d=SMOKE_D, rounds=SMOKE_ROUNDS, plane=plane,
                )
            )
    else:
        for n, rounds in SIZE_GRID:
            for case in SCHEDULER_CASES:
                scheduler = case["scheduler"]
                cap = SCALAR_RNG_MAX_N.get(scheduler)
                if cap is not None and n > cap:
                    skipped.append(
                        f"{_case_label(case)} capped at n={cap} "
                        f"(per-link scalar RNG work; n={n} skipped)"
                    )
                    continue
                for plane in ("object", "batch"):
                    if plane == "object" and n > OBJECT_PLANE_MAX_N:
                        skipped.append(
                            f"{_case_label(case)} object plane capped at "
                            f"n={OBJECT_PLANE_MAX_N} (n^2 Message objects; "
                            f"n={n} skipped)"
                        )
                        continue
                    rows.append(
                        measure_case(
                            scheduler, dict(case["kwargs"]),
                            n=n, d=DIMENSION, rounds=rounds, plane=plane,
                        )
                    )
    attach_speedups(rows)
    return {
        "benchmark": "message_plane",
        "created_unix": time.time(),
        "build": build_info(),
        "smoke": smoke,
        "skipped": skipped,
        "cases": rows,
    }


def render_report(payload: Dict[str, object]) -> str:
    lines = [
        f"{'scheduler':<44} {'plane':>6} {'n':>5} {'rounds':>6} "
        f"{'rounds/s':>9} {'speedup':>8} {'delivered':>10}"
    ]
    for row in payload["cases"]:
        speedup = row.get("speedup_vs_object")
        lines.append(
            f"{row['label']:<44} {row['plane']:>6} {row['n']:>5} {row['rounds']:>6} "
            f"{row['rounds_per_sec']:>9.2f} "
            f"{(f'{speedup:.1f}x' if speedup is not None else '-'):>8} "
            f"{row['stats']['delivered']:>10}"
        )
    for note in payload.get("skipped", []):
        lines.append(f"  [capped] {note}")
    return "\n".join(lines)


def check_sanity(payload: Dict[str, object]) -> None:
    """Progress, message accounting, and the coverage the ISSUE pins."""
    for row in payload["cases"]:
        assert row["rounds_per_sec"] > 0, f"{row['label']} made no progress"
        stats = row["stats"]
        assert stats["delivered"] > 0, f"{row['label']} delivered nothing"
        accounted = stats["delivered"] + stats["dropped"] + stats["crash_omitted"]
        assert accounted <= stats["sent"], (
            f"{row['label']} counters do not add up: {stats}"
        )
    if not payload["smoke"]:
        # The refactor's headline: an honest-node round at n=4096 must
        # complete on the batch plane and be recorded in the artifact.
        assert any(
            row["n"] == 4096 and row["plane"] == "batch"
            for row in payload["cases"]
        ), "full run must include an n=4096 batch-plane case"


def check_smoke_gate(payload: Dict[str, object]) -> None:
    """CI gate: batch plane >= 5x object plane at n=1024, d=256, lossy."""
    batch_rows = [
        row for row in payload["cases"]
        if row["plane"] == "batch" and row["n"] == SMOKE_N
        and row["scheduler"] == "lossy" and "speedup_vs_object" in row
    ]
    assert batch_rows, "smoke run produced no paired lossy batch row"
    speedup = batch_rows[0]["speedup_vs_object"]
    assert speedup >= SMOKE_MIN_SPEEDUP, (
        f"batch plane only {speedup:.2f}x over object at n={SMOKE_N}, "
        f"d={SMOKE_D} lossy (need >= {SMOKE_MIN_SPEEDUP}x)"
    )


def write_artifact(payload: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_message_plane_throughput():
    """Pytest entry: smoke-sized gate + sanity checks + JSON artifact."""
    payload = run_trajectory(smoke=True)
    print_report(
        "MESSAGE-PLANE",
        "object vs batch delivery plane, rounds/sec",
        render_report(payload),
    )
    write_artifact(payload, "BENCH_message_plane.json")
    check_sanity(payload)
    check_smoke_gate(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate only: lossy n=1024 d=256 on both planes, assert >= 5x",
    )
    parser.add_argument(
        "--output",
        default="BENCH_message_plane.json",
        help="path of the JSON trajectory artifact",
    )
    args = parser.parse_args(argv)
    payload = run_trajectory(smoke=args.smoke)
    print_report(
        "MESSAGE-PLANE",
        "object vs batch delivery plane, rounds/sec",
        render_report(payload),
    )
    write_artifact(payload, args.output)
    print(f"wrote {args.output}")
    check_sanity(payload)
    if args.smoke:
        check_smoke_gate(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
