"""MICRO — throughput of the geometric primitives.

Not a figure of the paper; supporting micro-benchmarks for the
performance-sensitive building blocks (Weiszfeld, hyperbox rules, MD
subset search, Krum, minimum covering ball) at gradient-like
dimensionality.  Useful to track regressions when optimising.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import scaled

from repro.aggregation.hyperbox_rules import HyperboxGeometricMedian, HyperboxMean
from repro.aggregation.krum import Krum
from repro.aggregation.mda import MinimumDiameterGeometricMedian
from repro.linalg.covering_ball import minimum_covering_ball
from repro.linalg.geometric_median import geometric_median

N_CLIENTS = 10
T = 1
DIM = scaled(2_000, 50_000)


@pytest.fixture(scope="module")
def gradient_stack():
    rng = np.random.default_rng(0)
    honest = rng.normal(0.0, 1.0, size=(N_CLIENTS - T, DIM))
    byz = -5.0 * honest.mean(axis=0, keepdims=True).repeat(T, axis=0)
    return np.vstack([honest, byz])


def test_weiszfeld_geometric_median(benchmark, gradient_stack):
    """Weiszfeld on a full stack of gradient-sized vectors."""
    result = benchmark(lambda: geometric_median(gradient_stack, max_iter=50))
    assert result.shape == (DIM,)


def test_box_geom_one_shot(benchmark, gradient_stack):
    """One BOX-GEOM aggregation (trusted box + C(m, n-t) subset medians)."""
    rule = HyperboxGeometricMedian(n=N_CLIENTS, t=T, max_iter=25)
    result = benchmark(lambda: rule.aggregate(gradient_stack))
    assert result.shape == (DIM,)


def test_box_mean_one_shot(benchmark, gradient_stack):
    """One BOX-MEAN aggregation."""
    rule = HyperboxMean(n=N_CLIENTS, t=T)
    result = benchmark(lambda: rule.aggregate(gradient_stack))
    assert result.shape == (DIM,)


def test_md_geom_one_shot(benchmark, gradient_stack):
    """One MD-GEOM aggregation (minimum-diameter subset + Weiszfeld)."""
    rule = MinimumDiameterGeometricMedian(n=N_CLIENTS, t=T, max_iter=25)
    result = benchmark(lambda: rule.aggregate(gradient_stack))
    assert result.shape == (DIM,)


def test_krum_one_shot(benchmark, gradient_stack):
    """One Krum selection."""
    rule = Krum(n=N_CLIENTS, t=T)
    result = benchmark(lambda: rule.aggregate(gradient_stack))
    assert result.shape == (DIM,)


def test_minimum_covering_ball_sgeo_scale(benchmark):
    """Minimum covering ball of an S_geo-sized candidate cloud."""
    rng = np.random.default_rng(1)
    candidates = rng.normal(size=(45, scaled(200, 2_000)))
    ball = benchmark(lambda: minimum_covering_ball(candidates))
    assert ball.radius > 0.0
