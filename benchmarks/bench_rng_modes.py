"""RNG-MODES — scalar vs vectorized stochastic-delay draws, rounds/sec.

Not a figure of the paper; the scaling benchmark for the opt-in
``rng_mode="vectorized"`` fast path of the two stochastic-delay
schedulers (:mod:`repro.engine.partial`, :mod:`repro.engine.asynchronous`).
Both modes run on the batch message plane — the only plane the
vectorized mode supports — so the measured gap is purely the draw
strategy: the scalar per-link RNG loop (the bitwise-pinned reference)
against one Bernoulli vector plus one lag vector per round (partial) or
the whole-round numpy Pareto transform (asynchronous).

The scalar partial loop is O(n^2) Python-level RNG calls per round
(~54 s/round at n=4096 on the reference container), so its n=4096 cell
is measured with a single round; the vectorized cells use the full
round counts.

Running it writes a ``BENCH_rng_modes.json`` artifact:

    PYTHONPATH=src python benchmarks/bench_rng_modes.py

``--smoke`` runs the single CI gate — the partial scheduler at n=1024,
d=256 in both modes — and asserts the vectorized mode is at least 3x
faster:

    PYTHONPATH=src python benchmarks/bench_rng_modes.py --smoke

or through pytest:

    pytest benchmarks/bench_rng_modes.py -s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

try:
    from _harness import build_info, print_report
except ImportError:  # pragma: no cover - direct script execution
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from _harness import build_info, print_report

from repro.engine import RNG_MODES, make_scheduler
from repro.network.delivery import EmptyInboxError, full_broadcast_plan

#: The two stochastic-delay schedulers the rng_mode axis applies to.
SCHEDULER_CASES = [
    {"scheduler": "partial", "kwargs": {"delay": 2}},
    {"scheduler": "asynchronous", "kwargs": {"wait_timeout": 2.0,
                                             "burstiness": 0.2}},
]

#: (n, rounds) grid of the full run; d is fixed at the CI gate's 256.
SIZE_GRID = [(256, 10), (1024, 3), (4096, 2)]
DIMENSION = 256

#: Scalar-mode rounds are capped here per n: the per-link Python RNG
#: loop makes the n=4096 scalar cells minutes-long at full round counts.
SCALAR_ROUNDS_CAP = {4096: 1}

#: CI smoke gate: vectorized must beat scalar by at least this factor on
#: the partial scheduler here (async keeps its lexsort-dominated
#: delivery machinery, so only partial carries a hard multiple).
SMOKE_N, SMOKE_D, SMOKE_ROUNDS, SMOKE_MIN_SPEEDUP = 1024, 256, 3, 3.0


def _case_label(case: Dict[str, object]) -> str:
    knobs = ",".join(f"{k}={v}" for k, v in sorted(case["kwargs"].items()))
    return case["scheduler"] + (f"({knobs})" if knobs else "")


def measure_case(
    scheduler: str,
    kwargs: Dict[str, object],
    *,
    n: int,
    d: int,
    rounds: int,
    rng_mode: str,
    seed: int = 0,
) -> Dict[str, object]:
    """Time ``rounds`` delivery rounds in one rng_mode on the batch plane.

    The timed loop is the stochastic delivery machinery itself: every
    node broadcasts, the scheduler draws its per-link delays and
    delivers, and every receiver materialises its consumption-ready
    ``(m, d)`` matrix.  No aggregation runs inside the loop (that cost
    is mode-independent and would only dilute the comparison).
    """
    engine = make_scheduler(
        scheduler, n, seed=seed, keep_history=False,
        message_plane="batch", rng_mode=rng_mode, **kwargs,
    )
    engine.require_quorum(1, policy="starve")
    if scheduler == "asynchronous":
        # Event-driven delivery needs an explicit wait condition; a 2/3
        # target keeps every node waiting on real arrivals.
        engine.wait_for(count=max(1, (2 * n) // 3))
    rng = np.random.default_rng(seed)
    plans = [full_broadcast_plan(i, rng.normal(size=d)) for i in range(n)]

    delivered_rows = 0
    start = time.perf_counter()
    for round_index in range(rounds):
        result = engine.submit(plans, round_index)
        for node in range(n):
            try:
                matrix = result.received_matrix(node)
            except EmptyInboxError:
                continue  # starved receiver this round
            delivered_rows += matrix.shape[0]
    seconds = time.perf_counter() - start

    assert delivered_rows > 0, "no node materialised any delivery"
    return {
        "scheduler": scheduler,
        "kwargs": dict(kwargs),
        "label": _case_label({"scheduler": scheduler, "kwargs": kwargs}),
        "rng_mode": rng_mode,
        "n": n,
        "d": d,
        "rounds": rounds,
        "seconds": seconds,
        "rounds_per_sec": rounds / seconds if seconds > 0 else float("inf"),
        "stats": engine.stats_snapshot(),
    }


def attach_speedups(rows: List[Dict[str, object]]) -> None:
    """Annotate every vectorized row with its speedup over paired scalar."""
    scalar_times = {
        (row["label"], row["n"]): row["seconds"] / row["rounds"]
        for row in rows
        if row["rng_mode"] == "scalar"
    }
    for row in rows:
        if row["rng_mode"] != "vectorized":
            continue
        base = scalar_times.get((row["label"], row["n"]))
        if base is not None and row["seconds"] > 0:
            row["speedup_vs_scalar"] = base / (row["seconds"] / row["rounds"])


def run_trajectory(smoke: bool = False) -> Dict[str, object]:
    """Measure both schedulers x both modes over the node-axis grid."""
    # Warm up BLAS / allocator before timing anything.
    measure_case("partial", {"delay": 1}, n=4, d=8, rounds=10,
                 rng_mode="vectorized")
    rows: List[Dict[str, object]] = []
    skipped: List[str] = []
    if smoke:
        case = SCHEDULER_CASES[0]  # partial: the CI gate's configuration
        for mode in RNG_MODES:
            rows.append(
                measure_case(
                    case["scheduler"], dict(case["kwargs"]),
                    n=SMOKE_N, d=SMOKE_D, rounds=SMOKE_ROUNDS, rng_mode=mode,
                )
            )
    else:
        for n, rounds in SIZE_GRID:
            for case in SCHEDULER_CASES:
                for mode in RNG_MODES:
                    case_rounds = rounds
                    if mode == "scalar" and n in SCALAR_ROUNDS_CAP:
                        case_rounds = SCALAR_ROUNDS_CAP[n]
                        skipped.append(
                            f"{_case_label(case)} scalar capped at "
                            f"{case_rounds} round(s) for n={n} (per-link "
                            f"Python RNG loop)"
                        )
                    rows.append(
                        measure_case(
                            case["scheduler"], dict(case["kwargs"]),
                            n=n, d=DIMENSION, rounds=case_rounds,
                            rng_mode=mode,
                        )
                    )
    attach_speedups(rows)
    return {
        "benchmark": "rng_modes",
        "created_unix": time.time(),
        "build": build_info(),
        "smoke": smoke,
        "skipped": skipped,
        "cases": rows,
    }


def render_report(payload: Dict[str, object]) -> str:
    lines = [
        f"{'scheduler':<36} {'rng_mode':>10} {'n':>5} {'rounds':>6} "
        f"{'rounds/s':>9} {'speedup':>8} {'delivered':>10}"
    ]
    for row in payload["cases"]:
        speedup = row.get("speedup_vs_scalar")
        lines.append(
            f"{row['label']:<36} {row['rng_mode']:>10} {row['n']:>5} "
            f"{row['rounds']:>6} {row['rounds_per_sec']:>9.2f} "
            f"{(f'{speedup:.1f}x' if speedup is not None else '-'):>8} "
            f"{row['stats']['delivered']:>10}"
        )
    for note in payload.get("skipped", []):
        lines.append(f"  [capped] {note}")
    return "\n".join(lines)


def check_sanity(payload: Dict[str, object]) -> None:
    """Progress, message accounting, and the coverage the ISSUE pins."""
    for row in payload["cases"]:
        assert row["rounds_per_sec"] > 0, f"{row['label']} made no progress"
        stats = row["stats"]
        assert stats["delivered"] > 0, f"{row['label']} delivered nothing"
        assert stats["dropped"] == 0, (
            f"{row['label']} dropped messages: these models never lose one"
        )
        # The stochastic-delay conservation identity, minus what is
        # still in flight at measurement end.
        assert stats["delivered"] <= stats["sent"], (
            f"{row['label']} counters do not add up: {stats}"
        )
    if not payload["smoke"]:
        # The fast path's point: both schedulers reach n=4096 vectorized
        # and the artifact records scalar-vs-vectorized at every size.
        for case in SCHEDULER_CASES:
            label = _case_label(case)
            for n, _rounds in SIZE_GRID:
                for mode in RNG_MODES:
                    assert any(
                        row["label"] == label and row["n"] == n
                        and row["rng_mode"] == mode
                        for row in payload["cases"]
                    ), f"full run is missing {label} n={n} {mode}"


def check_smoke_gate(payload: Dict[str, object]) -> None:
    """CI gate: vectorized >= 3x scalar at n=1024, d=256, partial."""
    gate_rows = [
        row for row in payload["cases"]
        if row["rng_mode"] == "vectorized" and row["n"] == SMOKE_N
        and row["scheduler"] == "partial" and "speedup_vs_scalar" in row
    ]
    assert gate_rows, "smoke run produced no paired partial vectorized row"
    speedup = gate_rows[0]["speedup_vs_scalar"]
    assert speedup >= SMOKE_MIN_SPEEDUP, (
        f"vectorized mode only {speedup:.2f}x over scalar at n={SMOKE_N}, "
        f"d={SMOKE_D} partial (need >= {SMOKE_MIN_SPEEDUP}x)"
    )


def write_artifact(payload: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_rng_mode_throughput():
    """Pytest entry: smoke-sized gate + sanity checks + JSON artifact."""
    payload = run_trajectory(smoke=True)
    print_report(
        "RNG-MODES",
        "scalar vs vectorized stochastic-delay draws, rounds/sec",
        render_report(payload),
    )
    write_artifact(payload, "BENCH_rng_modes.json")
    check_sanity(payload)
    check_smoke_gate(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate only: partial n=1024 d=256 in both modes, assert >= 3x",
    )
    parser.add_argument(
        "--output",
        default="BENCH_rng_modes.json",
        help="path of the JSON trajectory artifact",
    )
    args = parser.parse_args(argv)
    payload = run_trajectory(smoke=args.smoke)
    print_report(
        "RNG-MODES",
        "scalar vs vectorized stochastic-delay draws, rounds/sec",
        render_report(payload),
    )
    write_artifact(payload, args.output)
    print(f"wrote {args.output}")
    check_sanity(payload)
    if args.smoke:
        check_smoke_gate(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
