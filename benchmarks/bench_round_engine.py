"""ROUND-ENGINE — scheduler throughput of the pluggable round engine.

Not a figure of the paper; the smoke benchmark for :mod:`repro.engine`.
It drives the same mean-update agreement exchange through every
scheduler (synchronous lock-step, partially synchronous delays, lossy
drops + a crash window) and reports rounds/sec plus the delivery
counters, so CI can track the engine's overhead trajectory the same way
``bench_subset_kernels.py`` tracks the kernel layer.

Running it writes a ``BENCH_round_engine.json`` artifact (one row per
scheduler and size):

    PYTHONPATH=src python benchmarks/bench_round_engine.py --smoke

or through pytest:

    pytest benchmarks/bench_round_engine.py -s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

try:
    from _harness import build_info, print_report, scaled
except ImportError:  # pragma: no cover - direct script execution
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from _harness import build_info, print_report, scaled

from repro.engine import make_scheduler, run_exchange

#: Scheduler configurations benchmarked against each other.
SCHEDULER_CASES = [
    {"scheduler": "synchronous", "kwargs": {}},
    {"scheduler": "partial", "kwargs": {"delay": 2}},
    {"scheduler": "lossy", "kwargs": {"drop_rate": 0.1}},
    {"scheduler": "lossy", "kwargs": {"drop_rate": 0.1, "crash_schedule": ((1, 5, 15),)}},
]


def _case_label(case: Dict[str, object]) -> str:
    knobs = ",".join(f"{k}={v}" for k, v in sorted(case["kwargs"].items()))
    return case["scheduler"] + (f"({knobs})" if knobs else "")


def measure_case(
    scheduler: str, kwargs: Dict[str, object], *, n: int, d: int, rounds: int, seed: int = 0
) -> Dict[str, object]:
    """Time ``rounds`` mean-update exchange rounds on one scheduler."""
    engine = make_scheduler(scheduler, n, seed=seed, keep_history=False, **kwargs)
    engine.require_quorum(1, policy="starve")
    rng = np.random.default_rng(seed)
    initial = {i: rng.normal(size=d) for i in range(n)}

    start = time.perf_counter()
    final = run_exchange(engine, initial, rounds, lambda _n, received: received.mean(axis=0))
    seconds = time.perf_counter() - start

    assert len(final) == n, "every node must come out of the exchange"
    return {
        "scheduler": scheduler,
        "kwargs": {k: list(map(list, v)) if k == "crash_schedule" else v
                   for k, v in kwargs.items()},
        "label": _case_label({"scheduler": scheduler, "kwargs": kwargs}),
        "n": n,
        "d": d,
        "rounds": rounds,
        "seconds": seconds,
        "rounds_per_sec": rounds / seconds if seconds > 0 else float("inf"),
        "stats": engine.stats_snapshot(),
    }


def run_trajectory(smoke: bool = False) -> Dict[str, object]:
    """Measure every scheduler at one (smoke) or two sizes."""
    if smoke:
        sizes = [(10, 64, 200)]
    else:
        sizes = [(10, 64, scaled(500, 2000)), (25, 256, scaled(200, 1000))]
    # Warm up BLAS / allocator before timing anything.
    measure_case("synchronous", {}, n=4, d=8, rounds=10)
    rows: List[Dict[str, object]] = [
        measure_case(case["scheduler"], dict(case["kwargs"]), n=n, d=d, rounds=rounds)
        for (n, d, rounds) in sizes
        for case in SCHEDULER_CASES
    ]
    return {
        "benchmark": "round_engine",
        "created_unix": time.time(),
        "build": build_info(),
        "smoke": smoke,
        "cases": rows,
    }


def render_report(payload: Dict[str, object]) -> str:
    lines = [
        f"{'scheduler':<38} {'n':>4} {'d':>5} {'rounds':>7} "
        f"{'rounds/s':>9} {'delivered':>10} {'dropped':>8} {'delayed':>8}"
    ]
    for row in payload["cases"]:
        stats = row["stats"]
        lines.append(
            f"{row['label']:<38} {row['n']:>4} {row['d']:>5} {row['rounds']:>7} "
            f"{row['rounds_per_sec']:>9.1f} {stats['delivered']:>10} "
            f"{stats['dropped'] + stats['crash_omitted']:>8} {stats['delayed']:>8}"
        )
    return "\n".join(lines)


def check_sanity(payload: Dict[str, object]) -> None:
    """Every scheduler must make progress and account for its messages."""
    for row in payload["cases"]:
        assert row["rounds_per_sec"] > 0, f"{row['label']} made no progress"
        stats = row["stats"]
        assert stats["delivered"] > 0, f"{row['label']} delivered nothing"
        # Outcomes never exceed real sends: suppressed (crashed-sender)
        # messages stay out of `sent`, and partial's in-flight tail means
        # `sent` can exceed the outcomes, never the other way around.
        accounted = stats["delivered"] + stats["dropped"] + stats["crash_omitted"]
        assert accounted <= stats["sent"], (
            f"{row['label']} counters do not add up: {stats}"
        )


def write_artifact(payload: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_round_engine_throughput():
    """Pytest entry: trajectory + sanity checks + JSON artifact."""
    payload = run_trajectory(smoke=False)
    print_report(
        "ROUND-ENGINE",
        "rounds/sec per scheduler (mean-update exchange)",
        render_report(payload),
    )
    write_artifact(payload, "BENCH_round_engine.json")
    check_sanity(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single small size per scheduler (CI mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_round_engine.json",
        help="path of the JSON trajectory artifact",
    )
    args = parser.parse_args(argv)
    payload = run_trajectory(smoke=args.smoke)
    print_report(
        "ROUND-ENGINE",
        "rounds/sec per scheduler (mean-update exchange)",
        render_report(payload),
    )
    write_artifact(payload, args.output)
    print(f"wrote {args.output}")
    check_sanity(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
