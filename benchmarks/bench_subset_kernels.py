"""SUBSET-KERNELS — batched vs. looped subset aggregation throughput.

Not a figure of the paper; the acceptance benchmark for the batched
subset-kernel layer (:mod:`repro.linalg.subset_kernels`).  For each
``(n, t, d)`` case it times the pre-batching per-tuple path (one scalar
Weiszfeld solve / diameter gather per subset, exactly what
``subset_aggregates`` and the old ``minimum_diameter_subset`` did)
against the batched kernels, over the exhaustive ``C(n, n - t)``
family, and checks the numerical equivalence contract along the way
(bitwise for means/diameters, Weiszfeld-tolerance for medians).

The headline case — ``n=16, t=4, d=64``, 1820 subsets — must show at
least a **5x** speedup for the geometric-median aggregation; the module
asserts it.

Running it writes a ``BENCH_subset_kernels.json`` trajectory artifact
(one row per case, so successive CI runs can be compared) either next
to the current working directory or wherever ``--output`` points:

    PYTHONPATH=src python benchmarks/bench_subset_kernels.py --smoke

or through pytest:

    pytest benchmarks/bench_subset_kernels.py -s
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from math import comb
from typing import Dict, List, Optional

import numpy as np

try:
    from _harness import build_info, print_report, scaled
except ImportError:  # pragma: no cover - direct script execution
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from _harness import build_info, print_report, scaled

from repro.linalg.distances import pairwise_distances
from repro.linalg.geometric_median import geometric_median
from repro.linalg.precision import tolerance_tier
from repro.linalg.sparsity import detect_structure
from repro.linalg.subset_kernels import (
    subset_diameters,
    subset_geometric_medians,
    subset_index_matrix,
    subset_means,
)

#: The acceptance configuration and its required speedup.
HEADLINE = {"n": 16, "t": 4, "d": 64}
HEADLINE_MIN_SPEEDUP = 5.0

#: The precision/sparsity fast-path acceptance configuration: a large-d
#: structured stack (exact-zero columns from a sparse gradient layer,
#: duplicated rows from a coordinated sign-flip clique) where the
#: float32 tier plus sparsity routing must beat the dense float64
#: kernels by at least 10x end to end.
FASTPATH = {"n": 16, "t": 4, "d": 10_000}
FASTPATH_MIN_SPEEDUP = 10.0

#: Weiszfeld settings matching the BOX-GEOM rule defaults.
TOL = 1e-8
MAX_ITER = 100


def _received_stack(n: int, t: int, d: int, seed: int = 0) -> np.ndarray:
    """Honest cluster plus a shifted Byzantine cluster."""
    rng = np.random.default_rng(seed)
    honest = rng.normal(0.0, 1.0, size=(n - t, d))
    byz = rng.normal(0.0, 1.0, size=(t, d)) + 10.0
    return np.vstack([honest, byz])


def measure_case(n: int, t: int, d: int, *, seed: int = 0) -> Dict[str, object]:
    """Time looped vs. batched kernels on one exhaustive subset family."""
    size = n - t
    mat = _received_stack(n, t, d, seed)
    dist = pairwise_distances(mat)
    indices = subset_index_matrix(n, size)
    tuples = [list(row) for row in indices]

    # -- geometric medians (the expensive aggregation) -----------------------
    start = time.perf_counter()
    looped_gm = np.stack(
        [geometric_median(mat[rows], tol=TOL, max_iter=MAX_ITER) for rows in tuples]
    )
    looped_gm_s = time.perf_counter() - start
    start = time.perf_counter()
    batched_gm = subset_geometric_medians(
        mat, indices, tol=TOL, max_iter=MAX_ITER, dist=dist
    )
    batched_gm_s = time.perf_counter() - start

    # -- means ---------------------------------------------------------------
    start = time.perf_counter()
    looped_mean = np.stack([mat[rows].mean(axis=0) for rows in tuples])
    looped_mean_s = time.perf_counter() - start
    start = time.perf_counter()
    batched_mean = subset_means(mat, indices)
    batched_mean_s = time.perf_counter() - start

    # -- diameters -------------------------------------------------------------
    start = time.perf_counter()
    looped_diam = np.array([dist[np.ix_(rows, rows)].max() for rows in tuples])
    looped_diam_s = time.perf_counter() - start
    start = time.perf_counter()
    batched_diam = subset_diameters(dist, indices)
    batched_diam_s = time.perf_counter() - start

    # Equivalence contract, checked on every benchmarked case.
    assert np.array_equal(batched_mean, looped_mean), "means must be bitwise equal"
    assert np.array_equal(batched_diam, looped_diam), "diameters must be bitwise equal"
    gm_max_diff = float(np.abs(batched_gm - looped_gm).max())
    assert gm_max_diff < 1e-6, f"medians diverged: {gm_max_diff}"

    def ratio(a: float, b: float) -> float:
        return a / b if b > 0 else float("inf")

    return {
        "n": n,
        "t": t,
        "d": d,
        "subset_size": size,
        "subsets": comb(n, size),
        "geomedian_looped_s": looped_gm_s,
        "geomedian_batched_s": batched_gm_s,
        "geomedian_speedup": ratio(looped_gm_s, batched_gm_s),
        "geomedian_max_abs_diff": gm_max_diff,
        "means_looped_s": looped_mean_s,
        "means_batched_s": batched_mean_s,
        "means_speedup": ratio(looped_mean_s, batched_mean_s),
        "diameters_looped_s": looped_diam_s,
        "diameters_batched_s": batched_diam_s,
        "diameters_speedup": ratio(looped_diam_s, batched_diam_s),
    }


def _structured_stack(n: int, t: int, d: int, seed: int = 0) -> np.ndarray:
    """Large-d stack with the structure real attack rounds produce.

    Honest rows share an exact-zero column block (~90% of coordinates:
    gradients of a mostly-inactive layer are exactly 0.0 for every
    client computing the same architecture) and the Byzantine clique
    sends byte-identical sign-flipped copies of one honest gradient.
    """
    rng = np.random.default_rng(seed)
    active = max(1, d // 10)
    mat = np.zeros((n, d), dtype=np.float64)
    mat[: n - t, :active] = rng.normal(0.0, 1.0, size=(n - t, active))
    # Flip only the active block: ``-5.0 * 0.0`` would produce ``-0.0``,
    # and the structure detector deliberately treats ``-0.0`` as
    # non-elidable (eliding it could flip the sign bit of a mean).
    mat[n - t:, :active] = np.tile(-5.0 * mat[:1, :active], (t, 1))
    return mat


def measure_fastpath(n: int, t: int, d: int, *, seed: int = 0) -> Dict[str, object]:
    """Dense float64 kernels vs. the float32 + sparsity fast path.

    Both sides run the *batched* kernels — this measures the value of
    the precision tier and the structure routing on top of batching,
    not batching itself.  The fast path must stay inside the float32
    tolerance tier against the dense float64 reference.
    """
    size = n - t
    mat = _structured_stack(n, t, d, seed)
    mat32 = mat.astype(np.float32)
    indices = subset_index_matrix(n, size)
    profile = detect_structure(mat)
    profile32 = detect_structure(mat32)

    def run(matrix, *, sparsity, profile):
        dist = pairwise_distances(matrix, profile=profile, sparsity=sparsity)
        diam = subset_diameters(
            dist, indices, sparsity=sparsity, profile=profile
        )
        means = subset_means(
            matrix, indices, sparsity=sparsity, profile=profile
        )
        medians = subset_geometric_medians(
            matrix, indices, tol=TOL, max_iter=MAX_ITER, dist=dist,
            sparsity=sparsity, profile=profile,
        )
        return diam, means, medians

    gc.collect()
    start = time.perf_counter()
    dense = run(mat, sparsity="off", profile=None)
    dense_s = time.perf_counter() - start

    # Best-of-3: the dense run just touched gigabytes of temporaries, and
    # on small CI machines the first pass after that pays allocator and
    # page-cache penalties that have nothing to do with the kernels.
    fast_s = float("inf")
    for _ in range(3):
        gc.collect()
        start = time.perf_counter()
        fast = run(mat32, sparsity="auto", profile=profile32)
        fast_s = min(fast_s, time.perf_counter() - start)

    # The float64 path with sparsity routing must be *bitwise* equal to
    # the dense reference wherever the routing engages (means always;
    # diameters/medians via subset dedup).
    sparse64 = run(mat, sparsity="auto", profile=profile)
    for ref, got, what in zip(dense, sparse64, ("diameters", "means", "medians")):
        assert np.array_equal(ref, got), f"f64 sparsity path broke {what} bitwise"

    tier = tolerance_tier("float32")
    max_diffs = {}
    for ref, got, what in zip(dense, fast, ("diameters", "means", "medians")):
        assert tier.check(ref, got), f"float32 fast path out of tier on {what}"
        max_diffs[what] = float(np.abs(ref - got).max())

    return {
        "n": n,
        "t": t,
        "d": d,
        "subset_size": size,
        "subsets": comb(n, size),
        "unique_row_patterns": int(profile.num_unique_rows),
        "zero_column_fraction": float(profile.zero_column_fraction),
        "dense_float64_s": dense_s,
        "fastpath_float32_s": fast_s,
        "fastpath_speedup": dense_s / fast_s if fast_s > 0 else float("inf"),
        "float32_max_abs_diff": max_diffs,
        "tier": {"rtol": tier.rtol, "atol": tier.atol},
    }


def run_trajectory(smoke: bool = False) -> Dict[str, object]:
    """Measure the scaling trajectory plus the headline acceptance case."""
    if smoke:
        cases = [(12, 3, 32)]
    else:
        cases = [(10, 2, 64), (12, 3, 64), (14, 4, 64), (16, 4, scaled(64, 256))]
    # Warm up BLAS / allocator before timing anything.
    measure_case(8, 2, 8)
    trajectory: List[Dict[str, object]] = [
        measure_case(n, t, d) for (n, t, d) in cases
    ]
    headline = measure_case(HEADLINE["n"], HEADLINE["t"], HEADLINE["d"])
    # The fast-path acceptance case runs in smoke mode too — it is the
    # contract the precision/sparsity layer exists to honour.
    fastpath = measure_fastpath(FASTPATH["n"], FASTPATH["t"], FASTPATH["d"])
    return {
        "benchmark": "subset_kernels",
        "created_unix": time.time(),
        "build": build_info(),
        "smoke": smoke,
        "weiszfeld": {"tol": TOL, "max_iter": MAX_ITER},
        "headline_min_speedup": HEADLINE_MIN_SPEEDUP,
        "headline": headline,
        "fastpath_min_speedup": FASTPATH_MIN_SPEEDUP,
        "fastpath": fastpath,
        "trajectory": trajectory,
    }


def render_report(payload: Dict[str, object]) -> str:
    rows = list(payload["trajectory"]) + [payload["headline"]]
    lines = [
        f"{'n':>3} {'t':>2} {'d':>4} {'subsets':>8} "
        f"{'geomed loop':>11} {'geomed batch':>12} {'speedup':>8} "
        f"{'means x':>8} {'diam x':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row['n']:>3} {row['t']:>2} {row['d']:>4} {row['subsets']:>8} "
            f"{row['geomedian_looped_s']:>10.3f}s {row['geomedian_batched_s']:>11.3f}s "
            f"{row['geomedian_speedup']:>7.1f}x "
            f"{row['means_speedup']:>7.1f}x {row['diameters_speedup']:>7.1f}x"
        )
    head = payload["headline"]
    lines.append(
        f"headline (n={head['n']}, t={head['t']}, d={head['d']}): "
        f"{head['geomedian_speedup']:.1f}x geomedian speedup "
        f"(required: >={payload['headline_min_speedup']:.0f}x)"
    )
    fast = payload["fastpath"]
    lines.append(
        f"fast path (n={fast['n']}, t={fast['t']}, d={fast['d']}, "
        f"{fast['unique_row_patterns']} unique rows, "
        f"{fast['zero_column_fraction']:.0%} zero cols): "
        f"dense f64 {fast['dense_float64_s']:.2f}s vs "
        f"f32+sparsity {fast['fastpath_float32_s']:.2f}s = "
        f"{fast['fastpath_speedup']:.1f}x "
        f"(required: >={payload['fastpath_min_speedup']:.0f}x)"
    )
    return "\n".join(lines)


def check_headline(payload: Dict[str, object]) -> None:
    speedup = payload["headline"]["geomedian_speedup"]
    assert speedup >= HEADLINE_MIN_SPEEDUP, (
        f"batched subset aggregation speedup {speedup:.2f}x is below the "
        f"required {HEADLINE_MIN_SPEEDUP:.0f}x at the headline configuration"
    )
    fast = payload["fastpath"]["fastpath_speedup"]
    assert fast >= FASTPATH_MIN_SPEEDUP, (
        f"float32 + sparsity fast path speedup {fast:.2f}x is below the "
        f"required {FASTPATH_MIN_SPEEDUP:.0f}x at the large-d configuration"
    )


def write_artifact(payload: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_subset_kernel_speedup():
    """Pytest entry: trajectory + headline acceptance + JSON artifact."""
    payload = run_trajectory(smoke=False)
    print_report(
        "SUBSET-KERNELS",
        "batched vs. looped subset aggregation (exhaustive families)",
        render_report(payload),
    )
    write_artifact(payload, "BENCH_subset_kernels.json")
    check_headline(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single small trajectory case before the headline (CI mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_subset_kernels.json",
        help="path of the JSON trajectory artifact",
    )
    args = parser.parse_args(argv)
    payload = run_trajectory(smoke=args.smoke)
    print_report(
        "SUBSET-KERNELS",
        "batched vs. looped subset aggregation (exhaustive families)",
        render_report(payload),
    )
    write_artifact(payload, args.output)
    print(f"wrote {args.output}")
    check_headline(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
