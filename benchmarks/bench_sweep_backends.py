"""SWEEP-BACKENDS — cells/sec per execution backend + merge byte-identity.

Not a figure of the paper; the smoke benchmark for
:mod:`repro.sweep.executors`.  It drives one small grid through every
execution backend — serial, process pool, static 2-shard (both shards
run here, then merged), and lease-mode 2-worker — and reports cells/sec
per backend, so CI can track the dispatch overhead of the backend layer.
Every backend's output is asserted byte-identical to the serial stream
(after ``repro.sweep.merge`` for the sharded runs) — the invariant the
distributed path rests on.

Running it writes a ``BENCH_sweep_backends.json`` artifact:

    PYTHONPATH=src python benchmarks/bench_sweep_backends.py --smoke

or through pytest:

    pytest benchmarks/bench_sweep_backends.py -s
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

try:
    from _harness import build_info, print_report, scaled
except ImportError:  # pragma: no cover - direct script execution
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from _harness import build_info, print_report, scaled

from repro.learning.experiment import ExperimentConfig
from repro.sweep import (
    ProcessPoolBackend,
    ScenarioGrid,
    SerialBackend,
    ShardBackend,
    SweepRunner,
    merge_shards,
)


def _grid(smoke: bool) -> ScenarioGrid:
    base = ExperimentConfig(
        num_clients=4 if smoke else scaled(6, 10),
        num_byzantine=1,
        rounds=1 if smoke else scaled(3, 10),
        num_samples=40 if smoke else scaled(120, 800),
        batch_size=8,
        learning_rate=0.05,
        mlp_hidden=(8, 4) if smoke else scaled((16, 8), (32, 16)),
        seed=11,
    )
    return ScenarioGrid(
        base,
        {
            "heterogeneity": ["uniform", "extreme"],
            "aggregation": ["mean", "krum"],
        },
    )


def _run_case(label: str, grid: ScenarioGrid, work: "callable") -> Dict[str, object]:
    start = time.perf_counter()
    output = work()
    seconds = time.perf_counter() - start
    return {
        "label": label,
        "cells": len(grid),
        "seconds": seconds,
        "cells_per_sec": len(grid) / seconds if seconds > 0 else float("inf"),
        "bytes": len(output),
    }


def run_trajectory(smoke: bool = False) -> Dict[str, object]:
    grid = _grid(smoke)
    workdir = Path(tempfile.mkdtemp(prefix="bench_sweep_backends_"))
    try:
        def serial() -> bytes:
            out = workdir / "serial.jsonl"
            SweepRunner(grid, backend=SerialBackend(), output_path=out).run()
            return out.read_bytes()

        def pool() -> bytes:
            out = workdir / "pool.jsonl"
            out.unlink(missing_ok=True)
            SweepRunner(
                grid, backend=ProcessPoolBackend(2), output_path=out
            ).run()
            return out.read_bytes()

        def static_shards() -> bytes:
            shards = []
            for index in range(2):
                out = workdir / f"static{index}.jsonl"
                out.unlink(missing_ok=True)
                backend = ShardBackend(shard_index=index, shard_count=2)
                SweepRunner(grid, backend=backend, output_path=out).run()
                shards.append(out)
            merged = workdir / "static_merged.jsonl"
            merge_shards(shards, merged, grid=grid)
            return merged.read_bytes()

        def lease_shards() -> bytes:
            # Two workers racing on one lease dir concurrently, so the
            # claim/contention path is actually exercised (and timed).
            lease_dir = workdir / "leases"
            shutil.rmtree(lease_dir, ignore_errors=True)
            shards = []
            threads = []
            for index in range(2):
                out = workdir / f"lease{index}.jsonl"
                out.unlink(missing_ok=True)
                backend = ShardBackend(
                    lease_dir=lease_dir, owner=f"bench-{index}",
                    lease_timeout=300, poll_interval=0.02,
                )
                runner = SweepRunner(grid, backend=backend, output_path=out)
                threads.append(threading.Thread(target=runner.run))
                shards.append(out)
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            merged = workdir / "lease_merged.jsonl"
            merge_shards(shards, merged, grid=grid)
            return merged.read_bytes()

        # Warm-up: imports, BLAS init, dataset cache for the serial case.
        SweepRunner(_grid(True), backend=SerialBackend()).run()

        outputs: Dict[str, bytes] = {}

        def timed(label, work):
            row = _run_case(label, grid, lambda: outputs.setdefault(label, work()))
            row["byte_identical"] = outputs[label] == outputs["serial"]
            return row

        cases = [
            timed("serial", serial),
            timed("process(2)", pool),
            timed("shard-static(2)+merge", static_shards),
            timed("shard-lease(2)+merge", lease_shards),
        ]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "benchmark": "sweep_backends",
        "created_unix": time.time(),
        "build": build_info(),
        "smoke": smoke,
        "cells": len(grid),
        "cases": cases,
    }


def render_report(payload: Dict[str, object]) -> str:
    lines = [f"{'backend':<24} {'cells':>6} {'seconds':>8} {'cells/s':>8} {'bytes':>8}"]
    for row in payload["cases"]:
        lines.append(
            f"{row['label']:<24} {row['cells']:>6} {row['seconds']:>8.2f} "
            f"{row['cells_per_sec']:>8.2f} {row['bytes']:>8}"
        )
    return "\n".join(lines)


def check_sanity(payload: Dict[str, object]) -> None:
    """Every backend produced the same bytes and made progress."""
    assert payload["cases"][0]["label"] == "serial"
    for row in payload["cases"]:
        assert row["cells_per_sec"] > 0, f"{row['label']} made no progress"
        assert row["byte_identical"], (
            f"{row['label']} stream differs from the serial baseline "
            f"(byte-identity broken)"
        )


def write_artifact(payload: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_sweep_backends_throughput():
    """Pytest entry: trajectory + sanity checks + JSON artifact."""
    payload = run_trajectory(smoke=False)
    print_report(
        "SWEEP-BACKENDS",
        "cells/sec per execution backend (serial baseline, byte-identity checked)",
        render_report(payload),
    )
    write_artifact(payload, "BENCH_sweep_backends.json")
    check_sanity(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest grid (CI mode)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_sweep_backends.json",
        help="path of the JSON trajectory artifact",
    )
    args = parser.parse_args(argv)
    payload = run_trajectory(smoke=args.smoke)
    print_report(
        "SWEEP-BACKENDS",
        "cells/sec per execution backend (serial baseline, byte-identity checked)",
        render_report(payload),
    )
    write_artifact(payload, args.output)
    print(f"wrote {args.output}")
    check_sanity(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
