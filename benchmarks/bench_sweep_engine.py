"""Micro-benchmark of the scenario-sweep engine.

Records the two numbers future PRs should track:

- **cells/sec** — throughput of :class:`repro.sweep.SweepRunner` on a
  small but representative grid (heterogeneity x distance-based rules),
- **distance-cache hit rate** — fraction of pairwise-distance-matrix
  requests served by the shared per-round
  :class:`~repro.aggregation.context.AggregationContext` when one
  received stack is evaluated by every distance-based rule at once
  (:func:`repro.aggregation.aggregate_all`), with the matching
  shared-vs-uncached wall-clock speedup.

Run ``pytest benchmarks/bench_sweep_engine.py --benchmark-only -s``.
Set ``REPRO_BENCH_SWEEP_WORKERS`` to benchmark the process pool (the
cache counters are per-process, so the hit rate is only reported for the
in-process run).
"""

from __future__ import annotations

import os
import time

import numpy as np

from _harness import print_report, scaled
from repro.aggregation import aggregate_all, make_rule
from repro.aggregation.context import cache_hit_rate, cache_stats, reset_cache_stats
from repro.learning.experiment import ExperimentConfig
from repro.sweep import ScenarioGrid, SweepRunner

SWEEP_WORKERS = int(os.environ.get("REPRO_BENCH_SWEEP_WORKERS", "1"))

#: Rules whose aggregation is dominated by pairwise-distance work.
DISTANCE_RULES = ("krum", "multi-krum", "medoid", "md-mean")


def _engine_grid() -> ScenarioGrid:
    base = ExperimentConfig(
        setting="centralized",
        dataset="mnist",
        heterogeneity="mild",
        aggregation=DISTANCE_RULES[0],
        attack="sign-flip",
        num_clients=scaled(6, 10),
        num_byzantine=1,
        rounds=scaled(4, 20),
        num_samples=scaled(120, 1200),
        batch_size=16,
        learning_rate=0.05,
        mlp_hidden=scaled((16, 8), (64, 32)),
        seed=11,
    )
    return ScenarioGrid(
        base,
        {
            "heterogeneity": ["uniform", "extreme"],
            "aggregation": list(DISTANCE_RULES),
        },
    )


def test_sweep_engine_throughput(benchmark):
    """Measure sweep throughput and the shared distance-cache hit rate."""
    grid = _engine_grid()

    def run_sweep():
        reset_cache_stats()
        start = time.perf_counter()
        rows = SweepRunner(grid, workers=SWEEP_WORKERS).run()
        elapsed = time.perf_counter() - start
        return rows, elapsed, cache_stats(), cache_hit_rate()

    rows, elapsed, stats, hit_rate = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    cells_per_sec = len(rows) / elapsed if elapsed > 0 else float("inf")
    lines = [
        f"cells:                 {len(rows)}",
        f"workers:               {SWEEP_WORKERS}",
        f"elapsed:               {elapsed:.2f} s",
        f"cells/sec:             {cells_per_sec:.2f}",
    ]
    if SWEEP_WORKERS == 1:
        lines += [
            f"distance-cache hits:   {stats['hits']}",
            f"distance-cache misses: {stats['misses']}",
            f"distance-cache hit rate: {hit_rate:.1%}",
        ]
    else:
        lines.append("distance-cache stats: n/a (per-process counters)")
    print_report(
        "SWEEP-ENGINE",
        "SweepRunner throughput + AggregationContext distance-cache hit rate",
        "\n".join(lines),
    )
    assert len(rows) == len(grid)
    if SWEEP_WORKERS == 1:
        # Every cell ran distance-based rules through per-round contexts,
        # so the shared cache must have been exercised.
        assert stats["hits"] + stats["misses"] > 0


def test_shared_context_round_evaluation(benchmark):
    """Hit rate + speedup of evaluating all distance rules on one stack.

    This is the per-round sharing the sweep motivation describes: one
    received gradient stack, every distance-based rule.  The shared
    context computes the pairwise matrix once; the uncached path
    recomputes it per rule.
    """
    rng = np.random.default_rng(5)
    m, d, rounds = scaled((10, 2_000, 20), (10, 20_000, 50))
    stacks = [rng.normal(size=(m, d)) for _ in range(rounds)]
    rules = {
        name: make_rule(name, n=m, t=2) for name in DISTANCE_RULES
    }

    def evaluate(shared: bool):
        reset_cache_stats()
        start = time.perf_counter()
        for stack in stacks:
            if shared:
                aggregate_all(rules, stack)
            else:
                for rule in rules.values():
                    rule.aggregate(stack)
        return time.perf_counter() - start, cache_stats(), cache_hit_rate()

    evaluate(True)  # warm-up (BLAS init, imports)
    uncached_s, _, _ = evaluate(False)
    shared_s, stats, hit_rate = benchmark.pedantic(
        evaluate, args=(True,), rounds=1, iterations=1
    )
    speedup = uncached_s / shared_s if shared_s > 0 else float("inf")
    print_report(
        "SWEEP-CTX",
        "aggregate_all shared-context vs per-rule recomputation "
        f"({rounds} rounds, m={m}, d={d})",
        "\n".join(
            [
                f"uncached:              {uncached_s:.3f} s",
                f"shared context:        {shared_s:.3f} s",
                f"speedup:               {speedup:.2f}x",
                f"distance-cache hits:   {stats['hits']}",
                f"distance-cache misses: {stats['misses']}",
                f"distance-cache hit rate: {hit_rate:.1%}",
            ]
        ),
    )
    # One miss per round (the first consumer), hits for every other rule.
    assert stats["misses"] == rounds
    assert stats["hits"] >= rounds * (len(rules) - 1)
