"""T1 — Section 4 "table": per-algorithm convergence and approximation ratios.

The paper has no numbered tables; its Section 4 results amount to one
comparison table, which this benchmark regenerates empirically:

=====================  ============================  =====================
Algorithm               Approximation of geo-median   Agreement convergence
=====================  ============================  =====================
Safe area               unbounded (Thm 4.1)           converges
Krum / Multi-Krum       unbounded (Thm 4.3)           (not an agreement alg.)
MD-GEOM                 2 per round                   may not converge (Lem 4.2)
BOX-GEOM                <= 2 * sqrt(d) (Thm 4.4)      converges
=====================  ============================  =====================
"""

from __future__ import annotations

import numpy as np

from _harness import print_report, scaled

from repro.theory.bounds import (
    hyperbox_approximation_ratio_experiment,
    hyperbox_contraction_experiment,
)
from repro.theory.counterexamples import (
    krum_unbounded_instance,
    md_geom_non_convergence_instance,
    safe_area_unbounded_instance,
)


def _run_theory_table():
    safe = safe_area_unbounded_instance(epsilon=1e-4)
    krum = krum_unbounded_instance()
    md = md_geom_non_convergence_instance(rounds=scaled(6, 12))
    box_ratio = hyperbox_approximation_ratio_experiment(
        trials=scaled(10, 50), d=scaled(6, 20)
    )
    box_conv = hyperbox_contraction_experiment(rounds=scaled(8, 16), d=scaled(6, 20))
    return safe, krum, md, box_ratio, box_conv


def test_t1_theory_ratios(benchmark):
    """Measure the Section 4 properties on their adversarial constructions."""
    safe, krum, md, box_ratio, box_conv = benchmark.pedantic(
        _run_theory_table, rounds=1, iterations=1
    )
    lines = [
        f"{'algorithm':<12s} {'measured ratio':>16s} {'paper bound':>14s} {'converges':>10s}",
        f"{'safe-area':<12s} {safe.measured_ratio:>16.3g} {'unbounded':>14s} {'yes':>10s}",
        f"{'krum':<12s} {krum.measured_ratio:>16.3g} {'unbounded':>14s} {'n/a':>10s}",
        f"{'md-geom':<12s} {2.0:>16.3f} {'2 (per round)':>14s} "
        f"{('no' if not md['converged'] else 'yes'):>10s}",
        f"{'box-geom':<12s} {box_ratio.max_ratio:>16.3f} "
        f"{f'2*sqrt(d)={box_ratio.bound:.2f}':>14s} "
        f"{('yes' if box_conv['converged'] else 'no'):>10s}",
        "",
        "MD-GEOM adversarial-execution diameters: "
        + ", ".join(f"{v:.2f}" for v in md["diameters"]),
        "BOX-GEOM diameters under sign flip:      "
        + ", ".join(f"{v:.2e}" for v in box_conv["diameters"]),
    ]
    print_report("T1", "Section 4 properties, measured on their constructions", "\n".join(lines))

    # The measured values must respect the paper's claims.
    assert safe.measured_ratio > 100.0
    assert krum.measured_ratio == float("inf")
    assert md["converged"] is False
    assert box_ratio.within_bound
    assert box_conv["converged"]
    assert np.isfinite(box_ratio.max_ratio)
