"""TOPOLOGY — sparse communication graphs vs the complete graph.

Not a figure of the paper; the scaling benchmark for the topology-aware
communication plane (:mod:`repro.network.topology`).  It drives the same
full-broadcast exchange through the lossy scheduler on the batch message
plane under the complete graph and under sparse topologies (ring and
random-regular), over n in {64, 256, 1024}, and reports rounds/sec plus
the per-delivered-message cost.

The unit the CI gate asserts on is **per round**, not per delivered
message: a round stages the Θ(n·d) payload stack and walks the Θ(n²)
mask algebra regardless of how many links the topology keeps, so a
sparse graph amortises that fixed work over far fewer deliveries — its
per-message cost is structurally higher even though the round itself is
an order of magnitude faster.  What the gate protects is the actual
contract of the refactor: intersecting the topology mask must never
cost more wall-clock than the delivery work it removes, i.e. a sparse
topology is never slower than complete at equal (scheduler, n, d).
The per-delivered-message figures are recorded in the artifact so a
regression in the sparse fixed costs stays visible.

Running it writes a ``BENCH_topology.json`` artifact:

    PYTHONPATH=src python benchmarks/bench_topology.py

``--smoke`` runs the single CI gate — lossy delivery at n=1024, d=256
under complete, ring and random-regular — and asserts both sparse
topologies complete their rounds at least as fast as the complete
graph:

    PYTHONPATH=src python benchmarks/bench_topology.py --smoke

or through pytest:

    pytest benchmarks/bench_topology.py -s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

try:
    from _harness import build_info, print_report
except ImportError:  # pragma: no cover - direct script execution
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from _harness import build_info, print_report

from repro.engine import make_scheduler
from repro.network.delivery import EmptyInboxError, full_broadcast_plan
from repro.network.topology import make_topology

#: Topologies benchmarked against each other (kwargs feed make_topology).
TOPOLOGY_CASES = [
    {"topology": "complete", "kwargs": {}},
    {"topology": "ring", "kwargs": {}},
    {"topology": "random-regular", "kwargs": {"degree": 4}},
]

#: (n, rounds) grid of the full run; d is fixed at the CI gate's 256.
SIZE_GRID = [(64, 30), (256, 10), (1024, 4)]
DIMENSION = 256

#: The gate's scheduler: lossy delivery exercises the drop-mask /
#: topology-mask intersection (synchronous complete graphs take the
#: zero-copy full-broadcast fast path, which a sparse topology
#: legitimately cannot).
SCHEDULER = "lossy"
SCHEDULER_KWARGS = {"drop_rate": 0.1}

#: CI smoke gate: n, d, rounds, and the slack factor a sparse topology's
#: per-round time may exceed the complete graph's (noise allowance only
#: — measured sparse rounds are ~10-20x faster).
SMOKE_N, SMOKE_D, SMOKE_ROUNDS, SMOKE_MAX_RATIO = 1024, 256, 3, 1.0


def _case_label(case: Dict[str, object]) -> str:
    knobs = ",".join(f"{k}={v}" for k, v in sorted(case["kwargs"].items()))
    return case["topology"] + (f"({knobs})" if knobs else "")


def measure_case(
    topology: str,
    topology_kwargs: Dict[str, object],
    *,
    n: int,
    d: int,
    rounds: int,
    seed: int = 0,
) -> Dict[str, object]:
    """Time ``rounds`` lossy delivery rounds under one topology.

    The timed loop is the delivery plane: every node broadcasts, the
    scheduler intersects its drop mask with the topology mask, and every
    receiver materialises its consumption-ready ``(m, d)`` matrix.  No
    aggregation runs inside the loop.
    """
    topo = make_topology(topology, n, seed=seed, **topology_kwargs)
    engine = make_scheduler(
        SCHEDULER, n, seed=seed, keep_history=False, topology=topo,
        **SCHEDULER_KWARGS
    )
    engine.require_quorum(1, policy="starve")
    rng = np.random.default_rng(seed)
    plans = [full_broadcast_plan(i, rng.normal(size=d)) for i in range(n)]

    delivered_rows = 0
    start = time.perf_counter()
    for round_index in range(rounds):
        result = engine.submit(plans, round_index)
        for node in range(n):
            try:
                matrix = result.received_matrix(node)
            except EmptyInboxError:
                continue  # starved receiver this round
            delivered_rows += matrix.shape[0]
    seconds = time.perf_counter() - start

    assert delivered_rows > 0, "no node materialised any delivery"
    stats = engine.stats_snapshot()
    return {
        "topology": topology,
        "kwargs": dict(topology_kwargs),
        "label": _case_label({"topology": topology, "kwargs": topology_kwargs}),
        "n": n,
        "d": d,
        "edges": topo.num_edges,
        "rounds": rounds,
        "seconds": seconds,
        "rounds_per_sec": rounds / seconds if seconds > 0 else float("inf"),
        "us_per_delivered": 1e6 * seconds / stats["delivered"],
        "stats": stats,
    }


def attach_speedups(rows: List[Dict[str, object]]) -> None:
    """Annotate sparse rows with their per-round speedup over complete."""
    complete_times = {
        row["n"]: row["seconds"] / row["rounds"]
        for row in rows
        if row["topology"] == "complete"
    }
    for row in rows:
        if row["topology"] == "complete":
            continue
        base = complete_times.get(row["n"])
        if base is not None and row["seconds"] > 0:
            row["round_speedup_vs_complete"] = base / (row["seconds"] / row["rounds"])


def run_trajectory(smoke: bool = False) -> Dict[str, object]:
    """Measure every topology over the node-axis grid."""
    # Warm up BLAS / allocator before timing anything.
    measure_case("ring", {}, n=8, d=8, rounds=10)
    rows: List[Dict[str, object]] = []
    grid = [(SMOKE_N, SMOKE_ROUNDS)] if smoke else SIZE_GRID
    d = SMOKE_D if smoke else DIMENSION
    for n, rounds in grid:
        for case in TOPOLOGY_CASES:
            rows.append(
                measure_case(
                    case["topology"], dict(case["kwargs"]), n=n, d=d,
                    rounds=rounds,
                )
            )
    attach_speedups(rows)
    return {
        "benchmark": "topology",
        "created_unix": time.time(),
        "build": build_info(),
        "smoke": smoke,
        "scheduler": SCHEDULER,
        "scheduler_kwargs": SCHEDULER_KWARGS,
        "cases": rows,
    }


def render_report(payload: Dict[str, object]) -> str:
    lines = [
        f"{'topology':<28} {'n':>5} {'edges':>8} {'rounds':>6} "
        f"{'rounds/s':>9} {'speedup':>8} {'us/msg':>8} {'delivered':>10}"
    ]
    for row in payload["cases"]:
        speedup = row.get("round_speedup_vs_complete")
        lines.append(
            f"{row['label']:<28} {row['n']:>5} {row['edges']:>8} {row['rounds']:>6} "
            f"{row['rounds_per_sec']:>9.2f} "
            f"{(f'{speedup:.1f}x' if speedup is not None else '-'):>8} "
            f"{row['us_per_delivered']:>8.3f} "
            f"{row['stats']['delivered']:>10}"
        )
    return "\n".join(lines)


def check_sanity(payload: Dict[str, object]) -> None:
    for row in payload["cases"]:
        assert row["rounds_per_sec"] > 0, f"{row['label']} made no progress"
        stats = row["stats"]
        assert stats["delivered"] > 0, f"{row['label']} delivered nothing"
        assert stats["delivered"] <= stats["sent"], (
            f"{row['label']} counters do not add up: {stats}"
        )
    # Sparse topologies must actually be sparse: far fewer deliveries
    # than the complete graph at the same n.
    by_n: Dict[int, Dict[str, int]] = {}
    for row in payload["cases"]:
        by_n.setdefault(row["n"], {})[row["topology"]] = row["stats"]["delivered"]
    for n, delivered in by_n.items():
        complete = delivered.get("complete")
        if complete is None:
            continue
        for topology, count in delivered.items():
            if topology != "complete":
                assert count < complete, (
                    f"{topology} at n={n} delivered {count} >= complete's "
                    f"{complete}; the topology mask is not restricting links"
                )


def check_smoke_gate(payload: Dict[str, object]) -> None:
    """CI gate: sparse rounds at least as fast as complete at n=1024."""
    complete = [
        row for row in payload["cases"]
        if row["topology"] == "complete" and row["n"] == SMOKE_N
    ]
    assert complete, "smoke run produced no complete-graph row"
    base = complete[0]["seconds"] / complete[0]["rounds"]
    sparse = [
        row for row in payload["cases"]
        if row["topology"] != "complete" and row["n"] == SMOKE_N
    ]
    assert len(sparse) >= 2, "smoke run needs ring and random-regular rows"
    for row in sparse:
        per_round = row["seconds"] / row["rounds"]
        assert per_round <= base * SMOKE_MAX_RATIO, (
            f"{row['label']} took {per_round:.4f}s per round vs complete's "
            f"{base:.4f}s at n={SMOKE_N} — the topology mask intersection "
            f"costs more than the delivery work it removes "
            f"(allowed ratio {SMOKE_MAX_RATIO}x)"
        )


def write_artifact(payload: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_topology_throughput():
    """Pytest entry: smoke-sized gate + sanity checks + JSON artifact."""
    payload = run_trajectory(smoke=True)
    print_report(
        "TOPOLOGY",
        "sparse vs complete communication graphs, rounds/sec",
        render_report(payload),
    )
    write_artifact(payload, "BENCH_topology.json")
    check_sanity(payload)
    check_smoke_gate(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate only: lossy n=1024 d=256 under complete/ring/"
             "random-regular, assert sparse rounds not slower",
    )
    parser.add_argument(
        "--output",
        default="BENCH_topology.json",
        help="path of the JSON trajectory artifact",
    )
    args = parser.parse_args(argv)
    payload = run_trajectory(smoke=args.smoke)
    print_report(
        "TOPOLOGY",
        "sparse vs complete communication graphs, rounds/sec",
        render_report(payload),
    )
    write_artifact(payload, args.output)
    print(f"wrote {args.output}")
    check_sanity(payload)
    if args.smoke:
        check_smoke_gate(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
