"""Guard BENCH_* headline metrics against committed baselines.

CI runs the smoke benchmarks, then runs this script over the fresh
``BENCH_*.json`` artifacts: every artifact with a committed counterpart
in ``benchmarks/baselines/`` has its shared headline metrics (rounds/sec
per case, ``*_speedup`` headlines) compared, and a regression of more
than 30% against the baseline fails the build.  When the fresh
artifact's ``build`` fingerprint (numpy/BLAS/platform, see
``_harness.build_info``) differs from the baseline's, regressions are
demoted to warnings — cross-machine timings are not comparable enough
to gate on, but the drift is still printed for a human to read.

    PYTHONPATH=src python benchmarks/check_baselines.py BENCH_*.json

Refresh a baseline by re-running the full benchmark on a quiet machine
and committing the artifact:

    PYTHONPATH=src python benchmarks/bench_rng_modes.py \
        --output benchmarks/baselines/BENCH_rng_modes.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

try:
    from _harness import compare_to_baseline
except ImportError:  # pragma: no cover - direct script execution
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from _harness import compare_to_baseline

BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines")


def check_artifact(path: str, baseline_dir: str, *, max_regression: float) -> bool:
    """Compare one fresh artifact; return False on gating failures."""
    name = os.path.basename(path)
    baseline_path = os.path.join(baseline_dir, name)
    if not os.path.exists(baseline_path):
        print(f"[{name}] no committed baseline, skipped")
        return True
    with open(path, "r", encoding="utf-8") as handle:
        fresh = json.load(handle)
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    report = compare_to_baseline(fresh, baseline, max_regression=max_regression)
    for line in report["info"]:
        print(f"[{name}] {line}")
    for line in report["warnings"]:
        print(f"[{name}] WARNING: {line}")
    for line in report["failures"]:
        print(f"[{name}] FAIL: {line}")
    return not report["failures"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "artifacts", nargs="+",
        help="fresh BENCH_*.json files (matched to baselines by filename)",
    )
    parser.add_argument(
        "--baseline-dir", default=BASELINE_DIR,
        help="directory of committed baseline artifacts",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="fractional headline regression that fails the check",
    )
    args = parser.parse_args(argv)
    ok = True
    for path in args.artifacts:
        if not os.path.exists(path):
            print(f"[{os.path.basename(path)}] fresh artifact missing, skipped")
            continue
        ok = check_artifact(
            path, args.baseline_dir, max_regression=args.max_regression
        ) and ok
    if not ok:
        print("baseline drift check FAILED")
        return 1
    print("baseline drift check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
