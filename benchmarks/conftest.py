"""Pytest configuration for the benchmark suite."""

import sys
from pathlib import Path

# Make the sibling `_harness` module importable regardless of how pytest
# sets up rootdir/importmode for the benchmarks directory.
sys.path.insert(0, str(Path(__file__).resolve().parent))
