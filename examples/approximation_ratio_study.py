#!/usr/bin/env python
"""Empirical study of the Section 4 theory: approximation ratios and convergence.

This example reproduces the paper's theoretical comparison numerically:

* the safe-area algorithm on the Theorem 4.1 construction (ratio blows up
  as the group separation epsilon shrinks),
* Krum on the Theorem 4.3 construction (ratio is infinite because the
  candidate-median ball degenerates to a point),
* MD-GEOM on the Lemma 4.2 two-pole instance (the adversarial execution
  never converges, the benign one does), and
* BOX-GEOM's measured one-shot approximation ratio against the 2*sqrt(d)
  bound of Theorem 4.4, across dimensions.

Run with:  python examples/approximation_ratio_study.py
"""

from __future__ import annotations

import numpy as np

from repro.theory.bounds import (
    hyperbox_approximation_ratio_experiment,
    hyperbox_contraction_experiment,
)
from repro.theory.counterexamples import (
    krum_unbounded_instance,
    md_geom_non_convergence_instance,
    safe_area_unbounded_instance,
)


def main() -> None:
    print("Theorem 4.1 — safe area vs the geometric median")
    for epsilon in (1e-1, 1e-2, 1e-3, 1e-4):
        report = safe_area_unbounded_instance(epsilon=epsilon)
        print(f"  group separation eps={epsilon:<8.0e} measured ratio = {report.measured_ratio:.3g}")
    print("  (the ratio grows without bound as eps -> 0: the safe area is a bad")
    print("   approximation of the geometric median)\n")

    print("Theorem 4.3 — Krum with silent Byzantine nodes")
    report = krum_unbounded_instance()
    print(f"  measured ratio = {report.measured_ratio}  "
          f"(distance to true median = {report.details['distance_to_true_median']:.3f})\n")

    print("Lemma 4.2 — MD-GEOM on the two-pole instance")
    for tie_break in ("adversarial", "first"):
        result = md_geom_non_convergence_instance(rounds=8, tie_break=tie_break)
        diameters = ", ".join(f"{v:.2f}" for v in result["diameters"])
        print(f"  {tie_break:<12s} scheduler: diameters = [{diameters}]  converged = {result['converged']}")
    print()

    print("Theorem 4.4 — BOX-GEOM ratio vs the 2*sqrt(d) bound")
    print(f"  {'d':>4s} {'max measured ratio':>20s} {'bound 2*sqrt(d)':>16s}")
    for d in (2, 4, 8, 16, 32):
        result = hyperbox_approximation_ratio_experiment(trials=20, d=d, seed=d)
        print(f"  {d:>4d} {result.max_ratio:>20.3f} {result.bound:>16.3f}")
    print()

    print("Theorem 4.4 — BOX-GEOM convergence (honest diameter per sub-round)")
    from repro.byzantine.partition import PartitionAttack

    attack = PartitionAttack(group_a=[0, 1, 2, 3], group_b=[4, 5, 6, 7, 8])
    result = hyperbox_contraction_experiment(rounds=10, attack=attack)
    for r, (diam, factor) in enumerate(
        zip(result["diameters"], [float("nan")] + result["contraction_factors"])
    ):
        suffix = "" if np.isnan(factor) else f"   (x{factor:.2f} vs previous round)"
        print(f"  round {r:>2d}: diameter = {diam:.3e}{suffix}")


if __name__ == "__main__":
    main()
