#!/usr/bin/env python
"""Attack zoo: how each aggregation rule behaves under each Byzantine attack.

Runs a small centralized experiment for every (attack, aggregation rule)
pair and prints the final-accuracy matrix.  This goes beyond the paper's
figures (which focus on the sign flip) and corresponds to the ablation
benchmark ``benchmarks/bench_ablation_attacks.py``.

The (attack x rule) grid is expanded and executed by the ``repro.sweep``
engine, so the zoo can run on several worker processes and — when
``--output`` is given — stream its rows to JSONL and resume after an
interrupt instead of restarting.

Run with:  python examples/attack_zoo.py [--rounds 15] [--workers 2]
"""

from __future__ import annotations

import argparse

from repro.learning.experiment import ExperimentConfig
from repro.sweep import ScenarioGrid, SweepRunner

ATTACKS = ("sign-flip", "crash", "random-vector", "magnitude", "opposite-mean", "label-flip")
RULES = ("mean", "geomedian", "krum", "md-geom", "box-mean", "box-geom")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--samples", type=int, default=640)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep (1 = in-process)")
    parser.add_argument("--output", type=str, default=None,
                        help="stream sweep rows to this JSONL file (enables resume)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    base = ExperimentConfig(
        setting="centralized",
        dataset="mnist",
        heterogeneity="mild",
        aggregation=RULES[0],
        attack=ATTACKS[0],
        num_clients=args.clients,
        num_byzantine=1,
        rounds=args.rounds,
        num_samples=args.samples,
        batch_size=16,
        learning_rate=0.05,
        mlp_hidden=(32, 16),
        seed=args.seed,
    )
    # derive_seeds=False: every (attack, rule) cell shares --seed, so the
    # matrix is a paired comparison on identical data and initial weights.
    grid = ScenarioGrid(
        base,
        {"attack": list(ATTACKS), "aggregation": list(RULES)},
        derive_seeds=False,
    )
    rows = SweepRunner(grid, workers=args.workers, output_path=args.output).run()
    final = {
        (row["axes"]["attack"], row["axes"]["aggregation"]):
            row["summary"]["final_accuracy"]
        for row in rows
    }

    print(f"Final accuracy after {args.rounds} rounds, {args.clients} clients, "
          f"1 Byzantine client ({len(rows)} sweep cells)\n")
    corner = "attack / rule"
    header = f"{corner:<15s}" + "".join(f"{rule:>11s}" for rule in RULES)
    print(header)
    print("-" * len(header))
    for attack in ATTACKS:
        row = [f"{attack:<15s}"]
        for rule in RULES:
            row.append(f"{final[(attack, rule)]:>11.3f}")
        print("".join(row))
    print("\nReading guide: the plain mean should suffer most under magnitude /")
    print("opposite-mean attacks, while the hyperbox and minimum-diameter rules")
    print("stay close to their attack-free accuracy.")
    if args.output:
        print(f"Rows streamed to {args.output}; rerun with the same --output to resume.")


if __name__ == "__main__":
    main()
