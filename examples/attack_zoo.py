#!/usr/bin/env python
"""Attack zoo: how each aggregation rule behaves under each Byzantine attack.

Runs a small centralized experiment for every (attack, aggregation rule)
pair and prints the final-accuracy matrix.  This goes beyond the paper's
figures (which focus on the sign flip) and corresponds to the ablation
benchmark ``benchmarks/bench_ablation_attacks.py``.

Run with:  python examples/attack_zoo.py [--rounds 15]
"""

from __future__ import annotations

import argparse

from repro.learning.experiment import ExperimentConfig, run_centralized_experiment

ATTACKS = ("sign-flip", "crash", "random-vector", "magnitude", "opposite-mean", "label-flip")
RULES = ("mean", "geomedian", "krum", "md-geom", "box-mean", "box-geom")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--samples", type=int, default=640)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    print(f"Final accuracy after {args.rounds} rounds, {args.clients} clients, 1 Byzantine client\n")
    corner = "attack / rule"
    header = f"{corner:<15s}" + "".join(f"{rule:>11s}" for rule in RULES)
    print(header)
    print("-" * len(header))
    for attack in ATTACKS:
        row = [f"{attack:<15s}"]
        for rule in RULES:
            config = ExperimentConfig(
                setting="centralized",
                dataset="mnist",
                heterogeneity="mild",
                aggregation=rule,
                attack=attack,
                num_clients=args.clients,
                num_byzantine=1,
                rounds=args.rounds,
                num_samples=args.samples,
                batch_size=16,
                learning_rate=0.05,
                mlp_hidden=(32, 16),
                seed=args.seed,
            )
            history = run_centralized_experiment(config)
            row.append(f"{history.final_accuracy():>11.3f}")
        print("".join(row))
    print("\nReading guide: the plain mean should suffer most under magnitude /")
    print("opposite-mean attacks, while the hyperbox and minimum-diameter rules")
    print("stay close to their attack-free accuracy.")


if __name__ == "__main__":
    main()
