#!/usr/bin/env python
"""Centralized Byzantine collaborative learning under a sign-flip attack.

A laptop-scale version of the paper's Figure 1 / Figure 2a experiments:
10 clients with non-i.i.d. shards of a synthetic MNIST-like dataset, one
of which flips the sign of its gradients every round.  The script trains
the same global model once per aggregation rule and prints the accuracy
trajectory, so you can see directly which rules tolerate the attack.

Run with:            python examples/centralized_signflip.py
Fewer rounds:        python examples/centralized_signflip.py --rounds 10
Extreme data split:  python examples/centralized_signflip.py --heterogeneity extreme --byzantine 2
"""

from __future__ import annotations

import argparse

from repro.learning.experiment import ExperimentConfig, run_centralized_experiment

RULES = ("mean", "geomedian", "krum", "multi-krum", "md-mean", "md-geom", "box-mean", "box-geom")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=25, help="global communication rounds")
    parser.add_argument("--clients", type=int, default=10, help="number of clients")
    parser.add_argument("--byzantine", type=int, default=1, help="number of sign-flip attackers")
    parser.add_argument(
        "--heterogeneity", choices=("uniform", "mild", "extreme"), default="mild",
        help="how the data is split across clients",
    )
    parser.add_argument("--samples", type=int, default=800, help="dataset size")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    print(
        f"Centralized learning: {args.clients} clients, {args.byzantine} sign-flip attacker(s), "
        f"{args.heterogeneity} heterogeneity, {args.rounds} rounds\n"
    )
    results = {}
    for rule in RULES:
        config = ExperimentConfig(
            setting="centralized",
            dataset="mnist",
            heterogeneity=args.heterogeneity,
            aggregation=rule,
            attack="sign-flip",
            num_clients=args.clients,
            num_byzantine=args.byzantine,
            byzantine_tolerance=max(1, args.byzantine),
            rounds=args.rounds,
            num_samples=args.samples,
            batch_size=16,
            learning_rate=0.05,
            mlp_hidden=(32, 16),
            seed=args.seed,
        )
        history = run_centralized_experiment(config)
        results[rule] = history
        trace = "  ".join(f"{acc:.2f}" for acc in history.accuracies()[:: max(1, args.rounds // 8)])
        print(f"{rule:<12s} accuracy trace: {trace}   final={history.final_accuracy():.3f}")

    print("\nSummary (final / best accuracy):")
    for rule, history in sorted(results.items(), key=lambda kv: -kv[1].final_accuracy()):
        print(f"  {rule:<12s} {history.final_accuracy():.3f} / {history.best_accuracy():.3f}")


if __name__ == "__main__":
    main()
