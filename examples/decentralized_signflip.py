#!/usr/bin/env python
"""Decentralized Byzantine collaborative learning (Figure 3 style).

Every client keeps its own model; gradients are exchanged over a
simulated reliable-broadcast network and agreed upon with an approximate
agreement algorithm before each client updates its local model.  One (or
more) clients run the sign-flip attack in every agreement sub-round.

The paper's headline observation — mean-based agreement (MD-MEAN,
BOX-MEAN) breaks down under the sign flip while geometric-median-based
agreement (MD-GEOM, BOX-GEOM) keeps converging — is visible at this
reduced scale as a gap in final accuracy and in gradient disagreement.

Run with:  python examples/decentralized_signflip.py [--rounds 12] [--byzantine 2]
"""

from __future__ import annotations

import argparse

from repro.learning.experiment import ExperimentConfig, run_decentralized_experiment

ALGORITHMS = ("md-mean", "box-mean", "md-geom", "box-geom")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=8, help="learning iterations")
    parser.add_argument("--clients", type=int, default=7, help="number of clients")
    parser.add_argument("--byzantine", type=int, default=1, help="number of sign-flip attackers")
    parser.add_argument("--samples", type=int, default=560, help="dataset size")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    print(
        f"Decentralized learning: {args.clients} clients, {args.byzantine} sign-flip attacker(s), "
        f"mild heterogeneity, {args.rounds} iterations (log t agreement sub-rounds each)\n"
    )
    for algorithm in ALGORITHMS:
        config = ExperimentConfig(
            setting="decentralized",
            dataset="mnist",
            heterogeneity="mild",
            aggregation=algorithm,
            attack="sign-flip",
            num_clients=args.clients,
            num_byzantine=args.byzantine,
            byzantine_tolerance=max(1, args.byzantine),
            rounds=args.rounds,
            num_samples=args.samples,
            batch_size=16,
            learning_rate=0.05,
            mlp_hidden=(16, 8),
            # Sample the subset enumeration to keep the laptop run fast.
            aggregation_kwargs={"max_subsets": 10},
            seed=args.seed,
        )
        history = run_decentralized_experiment(config)
        last = history.records[-1]
        accs = ", ".join(f"{a:.2f}" for a in history.accuracies())
        print(f"{algorithm:<10s} mean accuracy per round: [{accs}]")
        print(
            f"{'':<10s} final mean accuracy = {history.final_accuracy():.3f}, "
            f"gradient disagreement after last round = {last.gradient_disagreement:.3e}\n"
        )


if __name__ == "__main__":
    main()
