#!/usr/bin/env python
"""Quickstart: robust aggregation and approximate agreement in 60 seconds.

This example walks through the library bottom-up:

1. aggregate a batch of gradient-like vectors (one of which is
   Byzantine) with the paper's BOX-GEOM rule and with the baselines, and
   compare how far each aggregate lands from the honest geometric median;
2. run the multi-round BOX-GEOM agreement protocol against a sign-flip
   attacker and watch the honest nodes' disagreement shrink every round;
3. measure the approximation ratio of Definition 3.3 and check it
   against the paper's 2*sqrt(d) bound (Theorem 4.4).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.aggregation import make_rule
from repro.agreement import AgreementProtocol, HyperboxGeometricMedianAgreement
from repro.agreement.metrics import approximation_ratio, true_geometric_median
from repro.byzantine import SignFlipAttack


def main() -> None:
    rng = np.random.default_rng(0)
    n, t, d = 10, 1, 8

    # --- 1. one-shot robust aggregation --------------------------------------
    honest = rng.normal(loc=1.0, scale=0.5, size=(n - t, d))      # honest gradients
    byzantine = -10.0 * honest.mean(axis=0, keepdims=True)        # a sign-flip-style outlier
    received = np.vstack([honest, byzantine])
    mu_star = true_geometric_median(honest)

    print("One-shot aggregation of 9 honest + 1 Byzantine gradient")
    print(f"{'rule':<12s} {'dist to honest geo-median':>26s}")
    for name in ("mean", "geomedian", "krum", "multi-krum", "md-geom", "box-mean", "box-geom"):
        rule = make_rule(name, n=n, t=t)
        aggregate = rule.aggregate(received)
        print(f"{name:<12s} {np.linalg.norm(aggregate - mu_star):26.4f}")

    # --- 2. multi-round approximate agreement --------------------------------
    print("\nMulti-round BOX-GEOM agreement under a sign-flip attacker")
    algorithm = HyperboxGeometricMedianAgreement(n, t)
    protocol = AgreementProtocol(algorithm, byzantine=(n - 1,), attack=SignFlipAttack(), seed=0)
    inputs = rng.normal(size=(n - t, d))
    result = protocol.run(inputs, rounds=6)
    for round_index, diameter in enumerate(result.diameter_trace()):
        print(f"  after round {round_index}: honest disagreement = {diameter:.3e}")

    # --- 3. approximation ratio vs the theoretical bound ---------------------
    rule = make_rule("box-geom", n=n, t=t)
    ratio = approximation_ratio(rule.aggregate(received), honest, received, n, t)
    print(f"\nBOX-GEOM approximation ratio: {ratio:.3f}  (Theorem 4.4 bound: {2 * np.sqrt(d):.3f})")


if __name__ == "__main__":
    main()
