"""Legacy setuptools shim.

The project is configured through ``pyproject.toml``; this file only
exists so ``pip install -e .`` works on environments whose setuptools
predates PEP 660 editable installs (no ``wheel`` package available).
"""

from setuptools import setup

setup()
