"""repro — Approximate Agreement Algorithms for Byzantine Collaborative Learning.

A from-scratch Python reproduction of the SPAA 2025 paper by Cambus,
Melnyk, Milentijević and Schmid.  The library provides:

- the hyperbox approximate-agreement algorithm for the geometric median
  (the paper's contribution) plus every baseline it is compared against
  (``repro.agreement``, ``repro.aggregation``),
- the geometric-median approximation framework of Section 3
  (``repro.agreement.metrics``),
- a synchronous reliable-broadcast network simulator and Byzantine
  attack models (``repro.network``, ``repro.byzantine``),
- a pure-NumPy neural-network substrate, synthetic non-i.i.d. datasets
  and the centralized / decentralized collaborative-learning loops that
  reproduce the paper's evaluation (``repro.nn``, ``repro.data``,
  ``repro.learning``), and
- executable versions of the paper's theoretical constructions
  (``repro.theory``).

Quickstart
----------
>>> import numpy as np
>>> from repro.core import HyperboxGeometricMedian
>>> rule = HyperboxGeometricMedian(n=10, t=1)
>>> vectors = np.random.default_rng(0).normal(size=(10, 5))
>>> aggregate = rule.aggregate(vectors)
>>> aggregate.shape
(5,)
"""

from repro._version import __version__

__all__ = ["__version__"]
