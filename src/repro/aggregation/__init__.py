"""One-shot robust aggregation rules.

An aggregation rule maps the stack of gradient vectors a server (or a
client in the decentralized setting) received in one round to a single
aggregate vector.  This package implements every rule that appears in
the paper's evaluation:

- plain :class:`Mean` and :class:`GeometricMedian`,
- coordinate-wise :class:`Median` and :class:`TrimmedMean`,
- :class:`Medoid`,
- :class:`Krum` and :class:`MultiKrum` (Blanchard et al.),
- :class:`MinimumDiameterMean` (``MD-MEAN``, El-Mhamdi et al.) and
  :class:`MinimumDiameterGeometricMedian` (``MD-GEOM``, Algorithm 1
  applied once, i.e. the centralized variant), and
- :class:`HyperboxMean` / :class:`HyperboxGeometricMedian` — the one-shot
  (single sub-round) applications of the BOX algorithms, used by the
  centralized learning loop.

The multi-round agreement versions of the BOX/MD algorithms live in
:mod:`repro.agreement`.
"""

from repro.aggregation.base import AggregationRule, aggregate_all
from repro.aggregation.context import (
    AggregationContext,
    cache_hit_rate,
    cache_stats,
    reset_cache_stats,
    subset_cache_hit_rate,
)
from repro.aggregation.mean import CoordinatewiseMedian, Mean, TrimmedMean
from repro.aggregation.geometric_median import GeometricMedian
from repro.aggregation.medoid import Medoid
from repro.aggregation.krum import Krum, MultiKrum
from repro.aggregation.mda import (
    MinimumDiameterGeometricMedian,
    MinimumDiameterMean,
)
from repro.aggregation.hyperbox_rules import (
    HyperboxGeometricMedian,
    HyperboxMean,
)
from repro.aggregation.registry import available_rules, make_rule, register_rule

__all__ = [
    "AggregationContext",
    "AggregationRule",
    "CoordinatewiseMedian",
    "GeometricMedian",
    "HyperboxGeometricMedian",
    "HyperboxMean",
    "Krum",
    "Mean",
    "Medoid",
    "MinimumDiameterGeometricMedian",
    "MinimumDiameterMean",
    "MultiKrum",
    "TrimmedMean",
    "aggregate_all",
    "available_rules",
    "cache_hit_rate",
    "cache_stats",
    "make_rule",
    "register_rule",
    "reset_cache_stats",
    "subset_cache_hit_rate",
]
