"""Base class for one-shot aggregation rules."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.utils.validation import ensure_matrix


class AggregationRule(abc.ABC):
    """Maps a stack of received vectors to a single aggregate vector.

    Sub-classes implement :meth:`_aggregate` on a validated ``(m, d)``
    matrix; the public :meth:`aggregate` handles validation, empty-input
    errors and the trivial single-vector case uniformly.

    Parameters
    ----------
    n:
        Total number of nodes in the system (``None`` means "infer from
        the number of received vectors", which is adequate for rules that
        do not depend on the resilience parameters).
    t:
        Maximum number of Byzantine nodes tolerated.  Rules that trim or
        search over ``(n - t)``-subsets require both ``n`` and ``t``.
    """

    #: Human-readable name used by the registry, plots and reports.
    name: str = "aggregation"

    def __init__(self, n: Optional[int] = None, t: int = 0) -> None:
        if n is not None and n < 1:
            raise ValueError(f"n must be positive, got {n}")
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        if n is not None and t >= n:
            raise ValueError(f"t must be smaller than n, got n={n}, t={t}")
        self.n = n
        self.t = int(t)

    # -- public API ---------------------------------------------------------
    def aggregate(self, vectors: np.ndarray) -> np.ndarray:
        """Aggregate an ``(m, d)`` stack of vectors into a ``(d,)`` vector."""
        mat = ensure_matrix(vectors, name="vectors", min_rows=1)
        if mat.shape[0] == 1:
            return mat[0].copy()
        return np.asarray(self._aggregate(mat), dtype=np.float64).reshape(-1)

    def __call__(self, vectors: np.ndarray) -> np.ndarray:
        return self.aggregate(vectors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, t={self.t})"

    # -- helpers for resilience-aware rules ----------------------------------
    def effective_n(self, received: int) -> int:
        """System size used for subset computations.

        Rules configured without an explicit ``n`` treat the number of
        received vectors as the system size.
        """
        return int(self.n) if self.n is not None else int(received)

    def honest_subset_size(self, received: int) -> int:
        """``n - t`` clipped to the number of received vectors."""
        size = self.effective_n(received) - self.t
        if size < 1:
            raise ValueError(
                f"n - t must be positive (n={self.effective_n(received)}, t={self.t})"
            )
        return min(size, received)

    # -- to be provided by sub-classes ---------------------------------------
    @abc.abstractmethod
    def _aggregate(self, vectors: np.ndarray) -> np.ndarray:
        """Aggregate a validated ``(m >= 2, d)`` matrix."""
        raise NotImplementedError
