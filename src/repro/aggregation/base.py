"""Base class for one-shot aggregation rules."""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Mapping, Optional, Union

import numpy as np

from repro.aggregation.context import AggregationContext


class AggregationRule(abc.ABC):
    """Maps a stack of received vectors to a single aggregate vector.

    Sub-classes implement :meth:`_aggregate` on a validated ``(m, d)``
    matrix plus its :class:`AggregationContext`; the public
    :meth:`aggregate` handles validation, empty-input errors and the
    trivial single-vector case uniformly.

    Parameters
    ----------
    n:
        Total number of nodes in the system (``None`` means "infer from
        the number of received vectors", which is adequate for rules that
        do not depend on the resilience parameters).
    t:
        Maximum number of Byzantine nodes tolerated.  Rules that trim or
        search over ``(n - t)``-subsets require both ``n`` and ``t``.
    """

    #: Human-readable name used by the registry, plots and reports.
    name: str = "aggregation"

    def __init__(self, n: Optional[int] = None, t: int = 0) -> None:
        if n is not None and n < 1:
            raise ValueError(f"n must be positive, got {n}")
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t}")
        if n is not None and t >= n:
            raise ValueError(f"t must be smaller than n, got n={n}, t={t}")
        self.n = n
        self.t = int(t)

    # -- public API ---------------------------------------------------------
    def aggregate(
        self,
        vectors: Optional[np.ndarray] = None,
        *,
        context: Optional[AggregationContext] = None,
    ) -> np.ndarray:
        """Aggregate an ``(m, d)`` stack of vectors into a ``(d,)`` vector.

        Either ``vectors`` or a pre-built ``context`` must be given.  A
        shared context lets several rules (or several passes of one
        rule) reuse one pairwise-distance matrix per round; results are
        bitwise-identical to the context-free path.  When both are
        given, ``context`` must wrap the same stack.
        """
        if context is None:
            if vectors is None:
                raise ValueError("aggregate() needs vectors or a context")
            context = AggregationContext(vectors)
        elif vectors is not None:
            shape = np.shape(vectors)  # no copy for array inputs
            if len(shape) == 1:
                shape = (1, shape[0])
            if shape != context.matrix.shape:
                raise ValueError(
                    f"context wraps a {context.matrix.shape} stack but "
                    f"vectors have shape {shape}"
                )
        mat = context.matrix
        if mat.shape[0] == 1:
            return mat[0].copy()
        return np.asarray(self._aggregate(mat, context), dtype=np.float64).reshape(-1)

    def __call__(self, vectors: np.ndarray) -> np.ndarray:
        return self.aggregate(vectors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, t={self.t})"

    # -- helpers for resilience-aware rules ----------------------------------
    def effective_n(self, received: int) -> int:
        """System size used for subset computations.

        Rules configured without an explicit ``n`` treat the number of
        received vectors as the system size.
        """
        return int(self.n) if self.n is not None else int(received)

    def honest_subset_size(self, received: int) -> int:
        """``n - t`` clipped to the number of received vectors."""
        size = self.effective_n(received) - self.t
        if size < 1:
            raise ValueError(
                f"n - t must be positive (n={self.effective_n(received)}, t={self.t})"
            )
        return min(size, received)

    # -- to be provided by sub-classes ---------------------------------------
    @abc.abstractmethod
    def _aggregate(
        self, vectors: np.ndarray, context: AggregationContext
    ) -> np.ndarray:
        """Aggregate a validated ``(m >= 2, d)`` matrix.

        ``context`` wraps the same matrix; distance-based rules should
        read :attr:`AggregationContext.sq_distances` /
        :attr:`AggregationContext.distances` instead of recomputing.
        """
        raise NotImplementedError


def aggregate_all(
    rules: Union[Mapping[str, AggregationRule], Iterable[AggregationRule]],
    vectors: np.ndarray,
    *,
    context: Optional[AggregationContext] = None,
) -> Dict[str, np.ndarray]:
    """Aggregate one received stack with several rules, sharing one context.

    This is the batched per-round evaluation path: Krum/Multi-Krum, the
    minimum-diameter rules and the medoid all reduce to operations on
    the same pairwise-distance matrix, so evaluating them against a
    shared :class:`AggregationContext` computes that matrix once instead
    of once per rule.  Results are bitwise-identical to calling each
    rule's :meth:`~AggregationRule.aggregate` on its own.

    ``rules`` is either a ``{label: rule}`` mapping or an iterable of
    rules (labelled by their ``name`` attribute, which must then be
    unique).  Returns ``{label: aggregate_vector}``.
    """
    if isinstance(rules, Mapping):
        labelled = dict(rules)
    else:
        labelled = {}
        for rule in rules:
            label = getattr(rule, "name", type(rule).__name__)
            if label in labelled:
                raise ValueError(
                    f"duplicate rule label {label!r}; pass a mapping to disambiguate"
                )
            labelled[label] = rule
    if context is None:
        context = AggregationContext(vectors)
    return {
        label: rule.aggregate(context=context) for label, rule in labelled.items()
    }
