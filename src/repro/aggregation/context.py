"""Per-round shared computation cache for aggregation rules.

Krum/Multi-Krum, minimum-diameter averaging and the medoid all reduce to
operations on the pairwise (squared) Euclidean distance matrix of the
received vectors.  When several of these rules — or several internal
steps of one rule, such as the adversarial tie-break of MD-GEOM — look
at the *same* received stack in one round, recomputing that matrix is
the dominant redundant cost.

:class:`AggregationContext` wraps one received ``(m, d)`` matrix and
memoises the distance matrices lazily: the first consumer pays for the
GEMM, every later consumer reuses the exact same array, so results are
bitwise-identical to the uncached code path.  Module-level counters
record cache hits and misses so the benchmark suite can report the hit
rate (see ``benchmarks/bench_sweep_engine.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.utils.validation import ensure_matrix

#: Cumulative cache counters, keyed by "hits" / "misses".
_CACHE_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def cache_stats() -> Dict[str, int]:
    """Copy of the global distance-cache counters (hits / misses)."""
    return dict(_CACHE_STATS)


def reset_cache_stats() -> None:
    """Zero the global distance-cache counters."""
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def cache_hit_rate() -> float:
    """Fraction of distance-matrix requests served from the cache."""
    total = _CACHE_STATS["hits"] + _CACHE_STATS["misses"]
    return _CACHE_STATS["hits"] / total if total else 0.0


class AggregationContext:
    """Shared per-round state for aggregation rules.

    Parameters
    ----------
    vectors:
        The ``(m, d)`` stack of received vectors the round operates on.
        Validated once here, so rules consuming the context can skip
        their own :func:`~repro.utils.validation.ensure_matrix` pass.

    Notes
    -----
    The context assumes the wrapped matrix is not mutated after
    construction — the learning loops build a fresh context per round.
    Passing the same context to several rules shares the distance work
    between them; every rule also works without a context, in which case
    it builds a private one (see :meth:`AggregationRule.aggregate`).
    """

    __slots__ = ("matrix", "_sq_distances", "_distances")

    def __init__(self, vectors: np.ndarray) -> None:
        self.matrix = ensure_matrix(vectors, name="vectors", min_rows=1)
        self._sq_distances: Optional[np.ndarray] = None
        self._distances: Optional[np.ndarray] = None

    @property
    def num_vectors(self) -> int:
        """Number of received vectors ``m``."""
        return int(self.matrix.shape[0])

    @property
    def dimension(self) -> int:
        """Vector dimension ``d``."""
        return int(self.matrix.shape[1])

    @property
    def sq_distances(self) -> np.ndarray:
        """Lazily computed ``(m, m)`` squared-distance matrix (memoised)."""
        if self._sq_distances is None:
            from repro.linalg.distances import pairwise_sq_distances

            _CACHE_STATS["misses"] += 1
            self._sq_distances = pairwise_sq_distances(self.matrix)
        else:
            _CACHE_STATS["hits"] += 1
        return self._sq_distances

    @property
    def distances(self) -> np.ndarray:
        """Lazily computed ``(m, m)`` distance matrix (memoised).

        Derived as ``sqrt`` of :attr:`sq_distances`, so requesting both
        matrices still performs the underlying GEMM only once and the
        values match :func:`repro.linalg.distances.pairwise_distances`
        bitwise.
        """
        if self._distances is None:
            self._distances = np.sqrt(self.sq_distances)
        else:
            _CACHE_STATS["hits"] += 1
        return self._distances

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cached = [
            name
            for name, value in (
                ("sq", self._sq_distances),
                ("dist", self._distances),
            )
            if value is not None
        ]
        return (
            f"AggregationContext(m={self.num_vectors}, d={self.dimension}, "
            f"cached={cached})"
        )
