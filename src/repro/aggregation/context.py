"""Per-round shared computation cache for aggregation rules.

Krum/Multi-Krum, minimum-diameter averaging and the medoid all reduce to
operations on the pairwise (squared) Euclidean distance matrix of the
received vectors.  When several of these rules — or several internal
steps of one rule, such as the adversarial tie-break of MD-GEOM — look
at the *same* received stack in one round, recomputing that matrix is
the dominant redundant cost.

:class:`AggregationContext` wraps one received ``(m, d)`` matrix and
memoises the distance matrices lazily: the first consumer pays for the
GEMM, every later consumer reuses the exact same array, so results are
bitwise-identical to the uncached code path.  Module-level counters
record cache hits and misses so the benchmark suite can report the hit
rate (see ``benchmarks/bench_sweep_engine.py``).

On top of the distance matrices the context also caches the *subset
artifacts* the subset-quantified rules (BOX-MEAN/BOX-GEOM,
MD-MEAN/MD-GEOM) consume per round: the exhaustive ``(S, s)`` subset
index matrix, the ``(S,)`` subset diameters, the ``(S, d)`` subset
means, and the ``(S, d)`` subset geometric medians.  BOX- and MD-rules
evaluated on the same received stack (e.g. via ``aggregate_all`` or the
agreement sub-rounds) therefore never recompute a subset family or its
aggregates.  Only deterministic, exhaustive families are cached —
sampled families depend on the caller's random generator and bypass the
cache so results stay identical to the uncached path.  Subset-cache
traffic is counted separately (``subset_hits`` / ``subset_misses``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.validation import ensure_matrix

#: Cumulative cache counters.  "hits"/"misses" track the pairwise
#: distance matrices; "subset_hits"/"subset_misses" track the per-round
#: subset artifacts (index matrices, diameters, means, medians).
_CACHE_STATS: Dict[str, int] = {
    "hits": 0,
    "misses": 0,
    "subset_hits": 0,
    "subset_misses": 0,
}


def cache_stats() -> Dict[str, int]:
    """Copy of the global cache counters (distance + subset)."""
    return dict(_CACHE_STATS)


def reset_cache_stats() -> None:
    """Zero the global cache counters."""
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


def cache_hit_rate() -> float:
    """Fraction of distance-matrix requests served from the cache."""
    total = _CACHE_STATS["hits"] + _CACHE_STATS["misses"]
    return _CACHE_STATS["hits"] / total if total else 0.0


def subset_cache_hit_rate() -> float:
    """Fraction of subset-artifact requests served from the cache."""
    total = _CACHE_STATS["subset_hits"] + _CACHE_STATS["subset_misses"]
    return _CACHE_STATS["subset_hits"] / total if total else 0.0


class AggregationContext:
    """Shared per-round state for aggregation rules.

    Parameters
    ----------
    vectors:
        The ``(m, d)`` stack of received vectors the round operates on.
        Validated once here, so rules consuming the context can skip
        their own :func:`~repro.utils.validation.ensure_matrix` pass.
    dtype:
        Precision tier of the kernel layer — ``"float64"`` (default,
        bitwise-identical to the historical path) or ``"float32"``
        (float32 storage, float64 accumulation; see
        :mod:`repro.linalg.precision`).  The wrapped matrix is stored in
        this dtype; every cached artifact (distances, subset
        aggregates) is still float64.
    sparsity:
        ``"auto"`` (default) detects bit-level structure — duplicated
        rows, exact-zero columns — once per round and routes the subset
        kernels through the reduced computation where that is exact for
        the active tier; ``"off"`` forces the dense paths (see
        :mod:`repro.linalg.sparsity`).

    Notes
    -----
    The context assumes the wrapped matrix is not mutated after
    construction — the learning loops build a fresh context per round.
    Passing the same context to several rules shares the distance work
    between them; every rule also works without a context, in which case
    it builds a private one (see :meth:`AggregationRule.aggregate`).

    The subset accessors (:meth:`subset_indices`,
    :meth:`subset_diameters`, :meth:`subset_means`,
    :meth:`subset_geometric_medians`) cache only exhaustive families —
    they are deterministic functions of the wrapped matrix, so reuse is
    result-identical.  ``chunk_size`` arguments affect peak memory only,
    never values, and are therefore not part of any cache key; the
    precision tier *does* change values, so every subset cache key is
    prefixed with the dtype name (a context holds one matrix in one
    dtype, but the explicit key keeps tiers un-mixable even if cached
    tables are ever shared or serialised).
    """

    __slots__ = (
        "matrix",
        "dtype_name",
        "sparsity",
        "_profile",
        "_profile_provider",
        "_sq_distances",
        "_distances",
        "_subset_indices",
        "_subset_diameters",
        "_subset_means",
        "_subset_medians",
    )

    def __init__(
        self,
        vectors: np.ndarray,
        *,
        dtype: "str | None" = None,
        sparsity: str = "auto",
    ) -> None:
        from repro.linalg.precision import resolve_dtype
        from repro.linalg.sparsity import resolve_sparsity

        resolved = resolve_dtype(dtype)
        # A matrix gathered by the batch message plane arrives as a
        # TransportMatrix carrying a profile provider; capture it before
        # ensure_matrix validation strips the ndarray subclass.
        provider = getattr(vectors, "_profile_provider", None)
        self.matrix = ensure_matrix(
            vectors, name="vectors", min_rows=1, dtype=resolved
        )
        self.dtype_name: str = resolved.name
        self.sparsity: str = resolve_sparsity(sparsity)
        self._profile = None
        self._profile_provider = provider
        self._sq_distances: Optional[np.ndarray] = None
        self._distances: Optional[np.ndarray] = None
        self._subset_indices: Dict[int, np.ndarray] = {}
        self._subset_diameters: Dict[Tuple[str, int], np.ndarray] = {}
        self._subset_means: Dict[Tuple[str, int], np.ndarray] = {}
        self._subset_medians: Dict[
            Tuple[str, int, float, int, float], np.ndarray
        ] = {}

    @property
    def num_vectors(self) -> int:
        """Number of received vectors ``m``."""
        return int(self.matrix.shape[0])

    @property
    def dimension(self) -> int:
        """Vector dimension ``d``."""
        return int(self.matrix.shape[1])

    @property
    def profile(self):
        """Bit-level structure of the wrapped matrix (memoised).

        ``None`` when ``sparsity="off"`` — the kernels then never see a
        profile and always run dense.  When the wrapped matrix was
        gathered by the batch message plane, the transported batch-level
        profile is *projected* through the provider it carried instead of
        re-detected from scratch — a bitwise-equivalent claim in every
        precision tier (see
        :func:`repro.linalg.sparsity.project_profile`).
        """
        if self.sparsity == "off":
            return None
        if self._profile is None:
            if self._profile_provider is not None:
                self._profile = self._profile_provider(self.matrix)
            if self._profile is None:
                from repro.linalg.sparsity import detect_structure

                self._profile = detect_structure(self.matrix)
        return self._profile

    @property
    def sq_distances(self) -> np.ndarray:
        """Lazily computed ``(m, m)`` squared-distance matrix (memoised)."""
        if self._sq_distances is None:
            from repro.linalg.distances import pairwise_sq_distances

            _CACHE_STATS["misses"] += 1
            self._sq_distances = pairwise_sq_distances(
                self.matrix, profile=self.profile, sparsity=self.sparsity
            )
        else:
            _CACHE_STATS["hits"] += 1
        return self._sq_distances

    @property
    def distances(self) -> np.ndarray:
        """Lazily computed ``(m, m)`` distance matrix (memoised).

        Derived as ``sqrt`` of :attr:`sq_distances`, so requesting both
        matrices still performs the underlying GEMM only once and the
        values match :func:`repro.linalg.distances.pairwise_distances`
        bitwise.
        """
        if self._distances is None:
            self._distances = np.sqrt(self.sq_distances)
        else:
            _CACHE_STATS["hits"] += 1
        return self._distances

    # -- per-round subset artifacts ------------------------------------------
    def _check_subset_size(self, subset_size: int) -> int:
        size = int(subset_size)
        if size < 1 or size > self.num_vectors:
            raise ValueError(
                f"subset_size must be in [1, {self.num_vectors}], got {subset_size}"
            )
        return size

    def subset_indices(self, subset_size: int) -> np.ndarray:
        """Exhaustive ``(C(m, s), s)`` subset index matrix (memoised)."""
        size = self._check_subset_size(subset_size)
        cached = self._subset_indices.get(size)
        if cached is None:
            from repro.linalg.subset_kernels import subset_index_matrix

            _CACHE_STATS["subset_misses"] += 1
            cached = subset_index_matrix(self.num_vectors, size)
            self._subset_indices[size] = cached
        else:
            _CACHE_STATS["subset_hits"] += 1
        return cached

    def subset_diameters(
        self, subset_size: int, *, chunk_size: Optional[int] = None
    ) -> np.ndarray:
        """Diameters of every exhaustive ``subset_size``-subset (memoised)."""
        size = self._check_subset_size(subset_size)
        key = (self.dtype_name, size)
        cached = self._subset_diameters.get(key)
        if cached is None:
            from repro.linalg.subset_kernels import subset_diameters

            _CACHE_STATS["subset_misses"] += 1
            cached = subset_diameters(
                self.distances,
                self.subset_indices(size),
                chunk_size=chunk_size,
                sparsity=self.sparsity,
                profile=self.profile,
            )
            self._subset_diameters[key] = cached
        else:
            _CACHE_STATS["subset_hits"] += 1
        return cached

    def subset_means(
        self, subset_size: int, *, chunk_size: Optional[int] = None
    ) -> np.ndarray:
        """Means of every exhaustive ``subset_size``-subset (memoised)."""
        size = self._check_subset_size(subset_size)
        key = (self.dtype_name, size)
        cached = self._subset_means.get(key)
        if cached is None:
            from repro.linalg.subset_kernels import subset_means

            _CACHE_STATS["subset_misses"] += 1
            cached = subset_means(
                self.matrix,
                self.subset_indices(size),
                chunk_size=chunk_size,
                sparsity=self.sparsity,
                profile=self.profile,
            )
            self._subset_means[key] = cached
        else:
            _CACHE_STATS["subset_hits"] += 1
        return cached

    def subset_geometric_medians(
        self,
        subset_size: int,
        *,
        tol: float = 1e-8,
        max_iter: int = 200,
        eps: float = 1e-12,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """Geometric medians of every exhaustive subset (memoised).

        Cached per ``(dtype, subset_size, tol, max_iter, eps)`` so rules
        with different solver settings never share results.
        """
        size = self._check_subset_size(subset_size)
        key = (self.dtype_name, size, float(tol), int(max_iter), float(eps))
        cached = self._subset_medians.get(key)
        if cached is None:
            from repro.linalg.subset_kernels import subset_geometric_medians

            _CACHE_STATS["subset_misses"] += 1
            cached = subset_geometric_medians(
                self.matrix,
                self.subset_indices(size),
                tol=tol,
                max_iter=max_iter,
                eps=eps,
                chunk_size=chunk_size,
                dist=self.distances,
                sparsity=self.sparsity,
                profile=self.profile,
            )
            self._subset_medians[key] = cached
        else:
            _CACHE_STATS["subset_hits"] += 1
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cached = [
            name
            for name, value in (
                ("sq", self._sq_distances),
                ("dist", self._distances),
            )
            if value is not None
        ]
        cached += [
            f"{name}[{len(table)}]"
            for name, table in (
                ("subsets", self._subset_indices),
                ("diams", self._subset_diameters),
                ("means", self._subset_means),
                ("medians", self._subset_medians),
            )
            if table
        ]
        return (
            f"AggregationContext(m={self.num_vectors}, d={self.dimension}, "
            f"dtype={self.dtype_name}, cached={cached})"
        )
