"""Geometric-median aggregation rule (Weiszfeld-based)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregation.base import AggregationRule
from repro.aggregation.context import AggregationContext
from repro.linalg.geometric_median import geometric_median


class GeometricMedian(AggregationRule):
    """Aggregate with the geometric median of all received vectors.

    This is the "simple geometric median" baseline of the paper's
    evaluation: every received vector, Byzantine or not, enters the
    Weiszfeld computation.  The geometric median's 1/2 breakdown point
    gives it substantial robustness even without any filtering.

    Parameters
    ----------
    tol, max_iter:
        Forwarded to :func:`repro.linalg.geometric_median.geometric_median`.

    Notes
    -----
    The rule hands the context's shared pairwise-distance matrix to the
    solver's vertex-snap step, turning its per-input cost loop into one
    matrix-vector product (and sharing the GEMM with any other
    distance-based rule evaluated in the same round).
    """

    name = "geomedian"

    def __init__(
        self,
        n: Optional[int] = None,
        t: int = 0,
        *,
        tol: float = 1e-8,
        max_iter: int = 200,
    ) -> None:
        super().__init__(n=n, t=t)
        if tol <= 0:
            raise ValueError("tol must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        self.tol = float(tol)
        self.max_iter = int(max_iter)

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        return geometric_median(
            vectors, tol=self.tol, max_iter=self.max_iter, dist=context.distances
        )
