"""One-shot hyperbox aggregation rules (BOX-MEAN and BOX-GEOM).

These are the single-application versions of the hyperbox agreement
algorithms, i.e. what a centralized server computes from the gradients
it received in one round:

1. compute the locally trusted hyperbox ``TH`` by trimming the
   ``m - (n - t)`` extreme values per coordinate (Definition 2.5),
2. compute the aggregate hyperbox — the smallest box containing the
   means (``BOX-MEAN``) or geometric medians (``BOX-GEOM``) of every
   ``(n - t)``-subset (Definition 3.5),
3. output the midpoint of the intersection ``TH ∩ GH`` (Definition 3.6).

Theorem 4.4 shows the intersection is never empty, and that repeating
the procedure across nodes converges; the one-shot output is a
``2·sqrt(d)``-approximation of the true geometric median.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.aggregation.base import AggregationRule
from repro.aggregation.context import AggregationContext
from repro.linalg.geometric_median import geometric_median
from repro.linalg.hyperbox import Hyperbox, bounding_hyperbox, trimmed_hyperbox
from repro.linalg.subsets import subset_aggregates


class _HyperboxRuleBase(AggregationRule):
    """Shared TH/GH/intersection machinery for the BOX rules."""

    def __init__(
        self,
        n: Optional[int] = None,
        t: int = 0,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(n=n, t=t)
        if max_subsets is not None and max_subsets < 1:
            raise ValueError("max_subsets must be positive when given")
        self.max_subsets = max_subsets
        self._rng = rng

    # The per-subset aggregate (mean or geometric median).
    def _subset_aggregate(self) -> Callable[[np.ndarray], np.ndarray]:
        raise NotImplementedError

    def trusted_hyperbox(self, vectors: np.ndarray) -> Hyperbox:
        """Locally trusted hyperbox of the received vectors."""
        m = vectors.shape[0]
        trim = max(0, m - self.honest_subset_size(m))
        return trimmed_hyperbox(vectors, trim)

    def aggregate_hyperbox(self, vectors: np.ndarray) -> Hyperbox:
        """Smallest box containing the per-subset aggregates (GH / mean-box)."""
        size = self.honest_subset_size(vectors.shape[0])
        aggregates = subset_aggregates(
            vectors,
            size,
            self._subset_aggregate(),
            max_subsets=self.max_subsets,
            rng=self._rng,
        )
        return bounding_hyperbox(aggregates)

    def decision_hyperbox(self, vectors: np.ndarray) -> Hyperbox:
        """Intersection ``TH ∩ GH`` whose midpoint is the output.

        Falls back to the aggregate hyperbox when numerical noise makes
        the intersection empty in some coordinate (Theorem 4.4 guarantees
        non-emptiness mathematically; with a sampled subset budget the
        guarantee can be violated, so the fallback keeps the rule total).
        """
        th = self.trusted_hyperbox(vectors)
        gh = self.aggregate_hyperbox(vectors)
        inter = th.intersect(gh)
        if inter.is_empty:
            # Repair coordinate-wise: keep the intersection where it is
            # non-empty and use GH clipped to TH elsewhere.
            lower = np.where(inter.lower <= inter.upper, inter.lower, np.maximum(th.lower, np.minimum(gh.lower, th.upper)))
            upper = np.where(inter.lower <= inter.upper, inter.upper, np.minimum(th.upper, np.maximum(gh.upper, th.lower)))
            lower, upper = np.minimum(lower, upper), np.maximum(lower, upper)
            return Hyperbox(lower=lower, upper=upper)
        return inter

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        return self.decision_hyperbox(vectors).midpoint()


class HyperboxMean(_HyperboxRuleBase):
    """BOX-MEAN: midpoint of (trusted box ∩ box of subset means)."""

    name = "box-mean"

    def _subset_aggregate(self) -> Callable[[np.ndarray], np.ndarray]:
        return lambda rows: rows.mean(axis=0)


class HyperboxGeometricMedian(_HyperboxRuleBase):
    """BOX-GEOM: midpoint of (trusted box ∩ geometric-median box).

    This is the paper's Algorithm 2 applied for a single sub-round, the
    form used by the centralized learning loop.
    """

    name = "box-geom"

    def __init__(
        self,
        n: Optional[int] = None,
        t: int = 0,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        tol: float = 1e-8,
        max_iter: int = 100,
    ) -> None:
        super().__init__(n=n, t=t, max_subsets=max_subsets, rng=rng)
        self.tol = float(tol)
        self.max_iter = int(max_iter)

    def _subset_aggregate(self) -> Callable[[np.ndarray], np.ndarray]:
        return lambda rows: geometric_median(rows, tol=self.tol, max_iter=self.max_iter)
