"""One-shot hyperbox aggregation rules (BOX-MEAN and BOX-GEOM).

These are the single-application versions of the hyperbox agreement
algorithms, i.e. what a centralized server computes from the gradients
it received in one round:

1. compute the locally trusted hyperbox ``TH`` by trimming the
   ``m - (n - t)`` extreme values per coordinate (Definition 2.5),
2. compute the aggregate hyperbox — the smallest box containing the
   means (``BOX-MEAN``) or geometric medians (``BOX-GEOM``) of every
   ``(n - t)``-subset (Definition 3.5),
3. output the midpoint of the intersection ``TH ∩ GH`` (Definition 3.6).

Theorem 4.4 shows the intersection is never empty, and that repeating
the procedure across nodes converges; the one-shot output is a
``2·sqrt(d)``-approximation of the true geometric median.

The per-subset aggregates run through the batched kernels of
:mod:`repro.linalg.subset_kernels`: the exhaustive family is served by
the per-round :class:`~repro.aggregation.context.AggregationContext`
cache (shared with the MD rules and across BOX rules in one round) and
sampled families go straight to the chunked kernels.  Subset means are
bitwise-identical to the per-tuple loop; subset geometric medians match
within the Weiszfeld tolerance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregation.base import AggregationRule
from repro.aggregation.context import AggregationContext
from repro.linalg.hyperbox import Hyperbox, bounding_hyperbox, trimmed_hyperbox
from repro.linalg.subset_kernels import subset_geometric_medians, subset_means
from repro.linalg.subsets import subset_count, subset_family


class _HyperboxRuleBase(AggregationRule):
    """Shared TH/GH/intersection machinery for the BOX rules."""

    def __init__(
        self,
        n: Optional[int] = None,
        t: int = 0,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__(n=n, t=t)
        if max_subsets is not None and max_subsets < 1:
            raise ValueError("max_subsets must be positive when given")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive when given")
        self.max_subsets = max_subsets
        self.chunk_size = chunk_size
        self._rng = rng

    # -- batched per-subset aggregates (mean or geometric median) ------------
    def _cached_subset_aggregates(
        self, context: AggregationContext, size: int
    ) -> np.ndarray:
        """Exhaustive ``(S, d)`` aggregates from the shared context cache."""
        raise NotImplementedError

    def _sampled_subset_aggregates(
        self, context: AggregationContext, indices: np.ndarray
    ) -> np.ndarray:
        """``(S, d)`` aggregates of a sampled index-matrix family."""
        raise NotImplementedError

    def trusted_hyperbox(self, vectors: np.ndarray) -> Hyperbox:
        """Locally trusted hyperbox of the received vectors."""
        m = vectors.shape[0]
        trim = max(0, m - self.honest_subset_size(m))
        return trimmed_hyperbox(vectors, trim)

    def aggregate_hyperbox(
        self,
        vectors: np.ndarray,
        *,
        context: Optional[AggregationContext] = None,
    ) -> Hyperbox:
        """Smallest box containing the per-subset aggregates (GH / mean-box)."""
        if context is None:
            context = AggregationContext(vectors)
        else:
            shape = np.shape(vectors)
            if len(shape) == 1:
                shape = (1, shape[0])
            if shape != context.matrix.shape:
                raise ValueError(
                    f"context wraps a {context.matrix.shape} stack but "
                    f"vectors have shape {shape}"
                )
        m = context.num_vectors
        size = self.honest_subset_size(m)
        sampling = (
            self.max_subsets is not None
            and self.max_subsets < subset_count(m, size)
        )
        if sampling:
            indices = subset_family(
                context.matrix, size, max_subsets=self.max_subsets, rng=self._rng
            )
            aggregates = self._sampled_subset_aggregates(context, indices)
        else:
            aggregates = self._cached_subset_aggregates(context, size)
        return bounding_hyperbox(aggregates)

    def decision_hyperbox(
        self,
        vectors: np.ndarray,
        *,
        context: Optional[AggregationContext] = None,
    ) -> Hyperbox:
        """Intersection ``TH ∩ GH`` whose midpoint is the output.

        Falls back to the aggregate hyperbox when numerical noise makes
        the intersection empty in some coordinate (Theorem 4.4 guarantees
        non-emptiness mathematically; with a sampled subset budget the
        guarantee can be violated, so the fallback keeps the rule total).
        """
        th = self.trusted_hyperbox(vectors)
        gh = self.aggregate_hyperbox(vectors, context=context)
        inter = th.intersect(gh)
        if inter.is_empty:
            # Repair coordinate-wise: keep the intersection where it is
            # non-empty and use GH clipped to TH elsewhere.
            lower = np.where(inter.lower <= inter.upper, inter.lower, np.maximum(th.lower, np.minimum(gh.lower, th.upper)))
            upper = np.where(inter.lower <= inter.upper, inter.upper, np.minimum(th.upper, np.maximum(gh.upper, th.lower)))
            lower, upper = np.minimum(lower, upper), np.maximum(lower, upper)
            return Hyperbox(lower=lower, upper=upper)
        return inter

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        return self.decision_hyperbox(vectors, context=context).midpoint()


class HyperboxMean(_HyperboxRuleBase):
    """BOX-MEAN: midpoint of (trusted box ∩ box of subset means)."""

    name = "box-mean"

    def _cached_subset_aggregates(
        self, context: AggregationContext, size: int
    ) -> np.ndarray:
        return context.subset_means(size, chunk_size=self.chunk_size)

    def _sampled_subset_aggregates(
        self, context: AggregationContext, indices: np.ndarray
    ) -> np.ndarray:
        return subset_means(context.matrix, indices, chunk_size=self.chunk_size)


class HyperboxGeometricMedian(_HyperboxRuleBase):
    """BOX-GEOM: midpoint of (trusted box ∩ geometric-median box).

    This is the paper's Algorithm 2 applied for a single sub-round, the
    form used by the centralized learning loop.
    """

    name = "box-geom"

    def __init__(
        self,
        n: Optional[int] = None,
        t: int = 0,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        tol: float = 1e-8,
        max_iter: int = 100,
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__(
            n=n, t=t, max_subsets=max_subsets, rng=rng, chunk_size=chunk_size
        )
        self.tol = float(tol)
        self.max_iter = int(max_iter)

    def _cached_subset_aggregates(
        self, context: AggregationContext, size: int
    ) -> np.ndarray:
        return context.subset_geometric_medians(
            size, tol=self.tol, max_iter=self.max_iter, chunk_size=self.chunk_size
        )

    def _sampled_subset_aggregates(
        self, context: AggregationContext, indices: np.ndarray
    ) -> np.ndarray:
        return subset_geometric_medians(
            context.matrix,
            indices,
            tol=self.tol,
            max_iter=self.max_iter,
            chunk_size=self.chunk_size,
            dist=context.distances,
        )
