"""Krum and Multi-Krum aggregation rules (Blanchard et al. 2017).

Krum scores each received vector by the sum of squared distances to its
``n - t - 2`` closest other vectors and returns the vector with the
smallest score.  Multi-Krum averages the ``q`` best-scoring vectors.

The paper (Equations 3 and 4) states the selection with the
``n - t - 1`` closest vectors; the original Blanchard et al. definition
uses ``n - t - 2``.  The neighbourhood size is therefore configurable,
defaulting to the paper's ``n - t - 1`` (minus the vector itself), and
clipped so the rule still works when fewer vectors arrive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregation.base import AggregationRule
from repro.aggregation.context import AggregationContext
from repro.linalg.distances import resolve_pairwise_matrix


def krum_scores(
    vectors: np.ndarray,
    n: int,
    t: int,
    *,
    neighbourhood: Optional[int] = None,
    sq: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Krum score of every received vector.

    The score of vector ``v_j`` is the sum of squared distances to its
    ``k`` nearest other vectors, where ``k`` defaults to
    ``min(n - t - 1, m - 1)``.  ``sq`` optionally supplies the
    precomputed ``(m, m)`` squared-distance matrix (e.g. from a shared
    :class:`~repro.aggregation.context.AggregationContext`).
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    if t >= n:
        # Clamping the default neighbourhood would silently hide a
        # nonsensical resilience configuration; fail the same way the
        # AggregationRule constructor does.
        raise ValueError(f"t must be smaller than n, got n={n}, t={t}")
    m = vectors.shape[0]
    if m < 2:
        return np.zeros(m)
    if neighbourhood is None:
        k = n - t - 1
    else:
        k = int(neighbourhood)
    k = max(1, min(k, m - 1))
    sq = resolve_pairwise_matrix(vectors, sq, squared=True)
    # Exclude self-distance (the zero diagonal) by keeping the k+1
    # smallest entries per row and dropping the first.  np.partition is
    # O(m) per row where the full sort is O(m log m); sorting only the
    # partitioned (k+1)-prefix afterwards recovers exactly the sorted
    # prefix, so the summation order — and hence the scores — stay
    # bitwise-identical to the full-sort reference.
    if k + 1 < m:
        prefix = np.partition(sq, k, axis=1)[:, : k + 1]
        ordered = np.sort(prefix, axis=1)[:, 1:]
    else:
        ordered = np.sort(sq, axis=1)[:, 1 : k + 1]
    return ordered.sum(axis=1)


class Krum(AggregationRule):
    """Select the single received vector with the smallest Krum score."""

    name = "krum"

    def __init__(
        self,
        n: Optional[int] = None,
        t: int = 0,
        *,
        neighbourhood: Optional[int] = None,
    ) -> None:
        super().__init__(n=n, t=t)
        if neighbourhood is not None and neighbourhood < 1:
            raise ValueError("neighbourhood must be positive")
        self.neighbourhood = neighbourhood

    def selected_index(
        self, vectors: np.ndarray, *, context: Optional[AggregationContext] = None
    ) -> int:
        """Index of the vector Krum selects (ties broken by lowest index)."""
        scores = krum_scores(
            vectors,
            self.effective_n(vectors.shape[0]),
            self.t,
            neighbourhood=self.neighbourhood,
            sq=None if context is None else context.sq_distances,
        )
        return int(np.argmin(scores))

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        return vectors[self.selected_index(vectors, context=context)].copy()


class MultiKrum(AggregationRule):
    """Average the ``q`` received vectors with the smallest Krum scores.

    With ``q = 1`` this reduces exactly to :class:`Krum`; the paper's
    experiments use ``q = 3``.
    """

    name = "multi-krum"

    def __init__(
        self,
        n: Optional[int] = None,
        t: int = 0,
        *,
        q: int = 3,
        neighbourhood: Optional[int] = None,
    ) -> None:
        super().__init__(n=n, t=t)
        if q < 1:
            raise ValueError(f"q must be positive, got {q}")
        if neighbourhood is not None and neighbourhood < 1:
            raise ValueError("neighbourhood must be positive")
        self.q = int(q)
        self.neighbourhood = neighbourhood

    def selected_indices(
        self, vectors: np.ndarray, *, context: Optional[AggregationContext] = None
    ) -> np.ndarray:
        """Indices of the ``q`` best vectors, lowest score first."""
        scores = krum_scores(
            vectors,
            self.effective_n(vectors.shape[0]),
            self.t,
            neighbourhood=self.neighbourhood,
            sq=None if context is None else context.sq_distances,
        )
        q = min(self.q, vectors.shape[0])
        # argsort is stable, so equal scores keep index order.
        return np.argsort(scores, kind="stable")[:q]

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        picks = self.selected_indices(vectors, context=context)
        return vectors[picks].mean(axis=0)
