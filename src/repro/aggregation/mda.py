"""Minimum-diameter aggregation rules (MD-MEAN and MD-GEOM, one-shot).

Both rules first search for a subset of ``n - t`` received vectors with
minimum diameter (Definition 3.4) and then aggregate that subset:

- ``MD-MEAN`` averages the subset (El-Mhamdi et al.'s Minimum Diameter
  Averaging).
- ``MD-GEOM`` takes the subset's geometric median — one round of the
  paper's Algorithm 1, which is exactly what the centralized server
  applies each learning round, and which the paper proves to be a
  2-approximation of the true geometric median.

The subset search is exponential in general (``C(m, n - t)`` subsets);
``max_subsets`` switches to the sampled/greedy search from
:func:`repro.linalg.subsets.minimum_diameter_subset` for larger systems.

All candidate diameters are computed by the batched gather kernel
(:func:`repro.linalg.subset_kernels.subset_diameters`); in the
exhaustive case the index matrix and the diameters come from the shared
per-round :class:`~repro.aggregation.context.AggregationContext` cache,
so MD-MEAN and MD-GEOM evaluated on the same received stack (or the
adversarial tie-break re-scanning the same family) pay for them once.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.aggregation.base import AggregationRule
from repro.aggregation.context import AggregationContext
from repro.linalg.geometric_median import geometric_median
from repro.linalg.subsets import (
    minimum_diameter_subset,
    minimum_diameter_subsets,
    select_minimum_diameter,
    select_minimum_diameter_ties,
    subset_count,
)

#: Valid tie-breaking strategies among equal-diameter subsets.
TIE_BREAKS = ("first", "adversarial")


class _MinimumDiameterBase(AggregationRule):
    """Shared subset-selection logic for the MD rules.

    ``tie_break`` controls which minimum-diameter subset is used when
    several subsets share the minimum diameter (the common case in the
    adversarial constructions of the paper):

    - ``"first"`` (default): the lexicographically smallest index tuple —
      a deterministic, benign scheduler.
    - ``"adversarial"``: among all tied subsets, pick the one whose
      aggregate lies farthest from the mean of the received vectors —
      a worst-case scheduler, used to exhibit Lemma 4.2's
      non-convergence executions.
    """

    def __init__(
        self,
        n: Optional[int] = None,
        t: int = 0,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        tie_break: str = "first",
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__(n=n, t=t)
        if max_subsets is not None and max_subsets < 1:
            raise ValueError("max_subsets must be positive when given")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive when given")
        if tie_break not in TIE_BREAKS:
            raise ValueError(f"tie_break must be one of {TIE_BREAKS}, got {tie_break!r}")
        self.max_subsets = max_subsets
        self.tie_break = tie_break
        self.chunk_size = chunk_size
        self._rng = rng

    def _subset_aggregate(self, rows: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _exhaustive(self, m: int, size: int) -> bool:
        return self.max_subsets is None or self.max_subsets >= subset_count(m, size)

    def minimum_diameter_set(
        self,
        vectors: np.ndarray,
        *,
        context: Optional[AggregationContext] = None,
    ) -> Tuple[Tuple[int, ...], float]:
        """Indices of the selected minimum-diameter subset and its diameter."""
        size = self.honest_subset_size(vectors.shape[0])
        use_cache = context is not None and self._exhaustive(vectors.shape[0], size)
        if self.tie_break == "first":
            if use_cache:
                return select_minimum_diameter(
                    context.subset_indices(size),
                    context.subset_diameters(size, chunk_size=self.chunk_size),
                )
            return minimum_diameter_subset(
                vectors,
                size,
                max_subsets=self.max_subsets,
                rng=self._rng,
                dist=None if context is None else context.distances,
                chunk_size=self.chunk_size,
            )
        if use_cache:
            tied, diam = select_minimum_diameter_ties(
                context.subset_indices(size),
                context.subset_diameters(size, chunk_size=self.chunk_size),
            )
        else:
            tied, diam = minimum_diameter_subsets(
                vectors,
                size,
                max_subsets=self.max_subsets,
                rng=self._rng,
                dist=None if context is None else context.distances,
                chunk_size=self.chunk_size,
            )
        reference = vectors.mean(axis=0)
        best_idx = tied[0]
        best_dist = -1.0
        for idx in tied:
            aggregate = self._subset_aggregate(vectors[list(idx)])
            dist = float(np.linalg.norm(aggregate - reference))
            if dist > best_dist + 1e-15:
                best_dist = dist
                best_idx = idx
        return best_idx, diam

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        idx, _ = self.minimum_diameter_set(vectors, context=context)
        return self._subset_aggregate(vectors[list(idx)])


class MinimumDiameterMean(_MinimumDiameterBase):
    """MD-MEAN: mean of a minimum-diameter ``(n - t)``-subset."""

    name = "md-mean"

    def _subset_aggregate(self, rows: np.ndarray) -> np.ndarray:
        return rows.mean(axis=0)


class MinimumDiameterGeometricMedian(_MinimumDiameterBase):
    """MD-GEOM: geometric median of a minimum-diameter ``(n - t)``-subset."""

    name = "md-geom"

    def __init__(
        self,
        n: Optional[int] = None,
        t: int = 0,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        tie_break: str = "first",
        tol: float = 1e-8,
        max_iter: int = 200,
        chunk_size: Optional[int] = None,
    ) -> None:
        super().__init__(
            n=n,
            t=t,
            max_subsets=max_subsets,
            rng=rng,
            tie_break=tie_break,
            chunk_size=chunk_size,
        )
        self.tol = float(tol)
        self.max_iter = int(max_iter)

    def _subset_aggregate(self, rows: np.ndarray) -> np.ndarray:
        return geometric_median(rows, tol=self.tol, max_iter=self.max_iter)
