"""Mean-family aggregation rules: mean, coordinate-wise median, trimmed mean."""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import AggregationRule
from repro.aggregation.context import AggregationContext


class Mean(AggregationRule):
    """Plain arithmetic mean (Definition 2.1).

    Not Byzantine-robust: a single adversarial vector can move the mean
    arbitrarily far.  Included as the non-robust baseline.
    """

    name = "mean"

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        return vectors.mean(axis=0)


class CoordinatewiseMedian(AggregationRule):
    """Coordinate-wise median.

    A cheap robust baseline; coincides with the geometric median only in
    one dimension.
    """

    name = "cw-median"

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        return np.median(vectors, axis=0)


class TrimmedMean(AggregationRule):
    """Coordinate-wise trimmed mean.

    Per coordinate, drops the ``trim`` smallest and ``trim`` largest
    values and averages the rest.  When constructed with explicit
    ``(n, t)`` the trim level defaults to ``m - (n - t)`` per side, i.e.
    the number of values that could possibly be Byzantine — the same
    trimming the locally trusted hyperbox performs.
    """

    name = "trimmed-mean"

    def __init__(self, n=None, t: int = 0, *, trim: int | None = None) -> None:
        super().__init__(n=n, t=t)
        if trim is not None and trim < 0:
            raise ValueError(f"trim must be non-negative, got {trim}")
        self._explicit_trim = trim

    def trim_level(self, received: int) -> int:
        """Number of values removed from each side of every coordinate."""
        if self._explicit_trim is not None:
            trim = self._explicit_trim
        else:
            trim = max(0, received - self.honest_subset_size(received))
        if 2 * trim >= received:
            raise ValueError(
                f"cannot trim {trim} values per side out of {received} vectors"
            )
        return trim

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        m = vectors.shape[0]
        trim = self.trim_level(m)
        if trim == 0:
            return vectors.mean(axis=0)
        ordered = np.sort(vectors, axis=0)
        return ordered[trim : m - trim].mean(axis=0)
