"""Medoid aggregation rule."""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import AggregationRule
from repro.aggregation.context import AggregationContext
from repro.linalg.geometric_median import medoid_index


class Medoid(AggregationRule):
    """Aggregate with the medoid: the *input* vector minimising the sum
    of distances to all other inputs.

    Cheaper than the geometric median (no iteration) and always returns
    one of the received vectors, but El-Mhamdi et al. observed it fails
    to produce useful models in practice; we include it for completeness
    and for the counterexample tests.
    """

    name = "medoid"

    def _aggregate(self, vectors: np.ndarray, context: AggregationContext) -> np.ndarray:
        return vectors[medoid_index(vectors, dist=context.distances)].copy()
