"""Name-based registry of aggregation rules.

Benchmarks, examples and experiment configs refer to aggregation rules
by string name (``"box-geom"``, ``"md-mean"`` ...); the registry maps
those names to constructors so configurations stay serialisable.
"""

from __future__ import annotations

from typing import Callable, Dict, Type

from repro.aggregation.base import AggregationRule
from repro.aggregation.geometric_median import GeometricMedian
from repro.aggregation.hyperbox_rules import HyperboxGeometricMedian, HyperboxMean
from repro.aggregation.krum import Krum, MultiKrum
from repro.aggregation.mda import MinimumDiameterGeometricMedian, MinimumDiameterMean
from repro.aggregation.mean import CoordinatewiseMedian, Mean, TrimmedMean
from repro.aggregation.medoid import Medoid

_REGISTRY: Dict[str, Type[AggregationRule]] = {}


def register_rule(name: str, cls: Type[AggregationRule], *, overwrite: bool = False) -> None:
    """Register an aggregation rule class under ``name``."""
    key = name.strip().lower()
    if not key:
        raise ValueError("rule name must be non-empty")
    if not overwrite and key in _REGISTRY:
        raise ValueError(f"aggregation rule {key!r} is already registered")
    _REGISTRY[key] = cls


def available_rules() -> list[str]:
    """Sorted list of registered rule names."""
    return sorted(_REGISTRY)


def make_rule(name: str, n: int | None = None, t: int = 0, **kwargs) -> AggregationRule:
    """Instantiate the rule registered under ``name``.

    Extra keyword arguments are forwarded to the rule constructor
    (e.g. ``q=3`` for Multi-Krum or ``max_subsets`` for the subset-search
    rules).
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown aggregation rule {name!r}; available: {available_rules()}"
        )
    return _REGISTRY[key](n=n, t=t, **kwargs)


for _name, _cls in [
    ("mean", Mean),
    ("cw-median", CoordinatewiseMedian),
    ("trimmed-mean", TrimmedMean),
    ("geomedian", GeometricMedian),
    ("medoid", Medoid),
    ("krum", Krum),
    ("multi-krum", MultiKrum),
    ("md-mean", MinimumDiameterMean),
    ("md-geom", MinimumDiameterGeometricMedian),
    ("box-mean", HyperboxMean),
    ("box-geom", HyperboxGeometricMedian),
]:
    register_rule(_name, _cls)
