"""Multi-round approximate-agreement algorithms (the paper's core).

An *agreement algorithm* specifies the rule every honest node applies to
the vectors it received in a sub-round to obtain its vector for the next
sub-round.  Running that rule for several synchronous sub-rounds over
the reliable-broadcast network yields ε-approximate agreement — or fails
to, which is exactly what the paper analyses:

- :class:`HyperboxGeometricMedianAgreement` — Algorithm 2, ``BOX-GEOM``:
  converges and is a ``2·sqrt(d)``-approximation of the true geometric
  median (Theorem 4.4).
- :class:`HyperboxMeanAgreement` — ``BOX-MEAN`` (Cambus–Melnyk).
- :class:`MinimumDiameterGeometricMedianAgreement` — Algorithm 1,
  ``MD-GEOM``: a 2-approximation per round but *not* convergent in the
  worst case (Lemma 4.2).
- :class:`MinimumDiameterMeanAgreement` — ``MD-MEAN`` (El-Mhamdi et al.).
- :class:`SafeAreaAgreement` — the classical safe-area algorithm,
  restricted to ``t < n / max(3, d+1)``; unbounded approximation ratio
  for the geometric median (Theorem 4.1).
- :class:`TrimmedMeanAgreement` — coordinate-wise trimmed mean, the
  other optimal averaging-agreement algorithm from El-Mhamdi et al.

:class:`AgreementProtocol` executes any of these against a configurable
adversary; :mod:`repro.agreement.metrics` measures convergence and the
approximation ratio of Definition 3.3.
"""

from repro.agreement.base import (
    AgreementAlgorithm,
    AgreementResult,
    AggregationAgreement,
    AgreementProtocol,
)
from repro.agreement.algorithms import (
    HyperboxGeometricMedianAgreement,
    HyperboxMeanAgreement,
    MinimumDiameterGeometricMedianAgreement,
    MinimumDiameterMeanAgreement,
    TrimmedMeanAgreement,
)
from repro.agreement.safe_area import SafeAreaAgreement
from repro.agreement.metrics import (
    approximation_ratio,
    covering_ball_of_sgeo,
    geometric_median_candidates,
    honest_diameter_trace,
    true_geometric_median,
)
from repro.agreement.registry import available_algorithms, make_algorithm

__all__ = [
    "AggregationAgreement",
    "AgreementAlgorithm",
    "AgreementProtocol",
    "AgreementResult",
    "HyperboxGeometricMedianAgreement",
    "HyperboxMeanAgreement",
    "MinimumDiameterGeometricMedianAgreement",
    "MinimumDiameterMeanAgreement",
    "SafeAreaAgreement",
    "TrimmedMeanAgreement",
    "approximation_ratio",
    "available_algorithms",
    "covering_ball_of_sgeo",
    "geometric_median_candidates",
    "honest_diameter_trace",
    "make_algorithm",
    "true_geometric_median",
]
