"""Concrete agreement algorithms built from one-shot aggregation rules.

Each class fixes the aggregation rule a node applies per sub-round:

========================  =============================================
Class                      Paper name / reference
========================  =============================================
HyperboxGeometricMedian-   Algorithm 2, ``BOX-GEOM`` (this paper):
Agreement                  midpoint of (trusted box ∩ geo-median box)
HyperboxMeanAgreement      ``BOX-MEAN`` (Cambus & Melnyk 2023)
MinimumDiameterGeometric-  Algorithm 1, ``MD-GEOM``: geometric median of
MedianAgreement            a minimum-diameter ``(n-t)``-subset
MinimumDiameterMean-       ``MD-MEAN`` (El-Mhamdi et al. 2021, MDA)
Agreement
TrimmedMeanAgreement       coordinate-wise trimmed mean (El-Mhamdi
                           et al.'s second optimal averaging algorithm)
========================  =============================================

The subset-quantified algorithms (BOX-*, MD-*) accept a ``chunk_size``
knob forwarded to the batched subset kernels
(:mod:`repro.linalg.subset_kernels`): it bounds how many subsets one
kernel invocation materialises at a time, trading peak memory for a few
extra kernel launches at large ``C(m, n - t)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agreement.base import AggregationAgreement
from repro.aggregation.geometric_median import GeometricMedian
from repro.aggregation.hyperbox_rules import HyperboxGeometricMedian, HyperboxMean
from repro.aggregation.mda import MinimumDiameterGeometricMedian, MinimumDiameterMean
from repro.aggregation.mean import Mean, TrimmedMean


class HyperboxGeometricMedianAgreement(AggregationAgreement):
    """Algorithm 2 of the paper: synchronous approximate agreement with
    hyperbox validity for the geometric median (``BOX-GEOM``).

    Per sub-round every node (i) computes its locally trusted hyperbox by
    trimming ``m - (n - t)`` values per coordinate side, (ii) computes the
    smallest box containing the geometric medians of all ``(n - t)``-
    subsets of its received vectors, and (iii) moves to the midpoint of
    the intersection.  Theorem 4.4: converges with approximation ratio at
    most ``2·sqrt(d)``.
    """

    name = "box-geom"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        weiszfeld_tol: float = 1e-8,
        weiszfeld_max_iter: int = 100,
        chunk_size: Optional[int] = None,
        dtype: Optional[str] = None,
    ) -> None:
        rule = HyperboxGeometricMedian(
            n=n,
            t=t,
            max_subsets=max_subsets,
            rng=rng,
            tol=weiszfeld_tol,
            max_iter=weiszfeld_max_iter,
            chunk_size=chunk_size,
        )
        super().__init__(n, t, rule, dtype=dtype)
        self.name = "box-geom"


class HyperboxMeanAgreement(AggregationAgreement):
    """``BOX-MEAN``: the hyperbox algorithm with subset means as candidates."""

    name = "box-mean"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        chunk_size: Optional[int] = None,
        dtype: Optional[str] = None,
    ) -> None:
        rule = HyperboxMean(
            n=n, t=t, max_subsets=max_subsets, rng=rng, chunk_size=chunk_size
        )
        super().__init__(n, t, rule, dtype=dtype)
        self.name = "box-mean"


class MinimumDiameterGeometricMedianAgreement(AggregationAgreement):
    """Algorithm 1 of the paper: ``MD-GEOM``.

    Per sub-round every node picks a minimum-diameter ``(n - t)``-subset
    of its received vectors and moves to its geometric median.  Lemma 4.2
    shows this does *not* converge in the worst case; any single round is
    still a 2-approximation of the true geometric median.
    """

    name = "md-geom"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        tie_break: str = "first",
        weiszfeld_tol: float = 1e-8,
        weiszfeld_max_iter: int = 200,
        chunk_size: Optional[int] = None,
        dtype: Optional[str] = None,
    ) -> None:
        rule = MinimumDiameterGeometricMedian(
            n=n,
            t=t,
            max_subsets=max_subsets,
            rng=rng,
            tie_break=tie_break,
            tol=weiszfeld_tol,
            max_iter=weiszfeld_max_iter,
            chunk_size=chunk_size,
        )
        super().__init__(n, t, rule, dtype=dtype)
        self.name = "md-geom"


class MinimumDiameterMeanAgreement(AggregationAgreement):
    """``MD-MEAN`` — El-Mhamdi et al.'s Minimum Diameter Averaging."""

    name = "md-mean"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        max_subsets: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        tie_break: str = "first",
        chunk_size: Optional[int] = None,
        dtype: Optional[str] = None,
    ) -> None:
        rule = MinimumDiameterMean(
            n=n,
            t=t,
            max_subsets=max_subsets,
            rng=rng,
            tie_break=tie_break,
            chunk_size=chunk_size,
        )
        super().__init__(n, t, rule, dtype=dtype)
        self.name = "md-mean"


class TrimmedMeanAgreement(AggregationAgreement):
    """Coordinate-wise trimmed-mean agreement.

    The second optimal averaging-agreement algorithm of El-Mhamdi et al.;
    included as a baseline and for the ablation benchmarks.
    """

    name = "trimmed-mean"

    def __init__(self, n: int, t: int, *, dtype: Optional[str] = None) -> None:
        rule = TrimmedMean(n=n, t=t)
        super().__init__(n, t, rule, dtype=dtype)
        self.name = "trimmed-mean"


class SimpleMeanAgreement(AggregationAgreement):
    """Plain-mean "agreement": every node averages everything it received.

    Not Byzantine-robust; included because the paper's decentralized
    comparison (contribution 4) also evaluates the simple mean rule.
    """

    name = "mean"

    def __init__(self, n: int, t: int, *, dtype: Optional[str] = None) -> None:
        super().__init__(n, t, Mean(n=n, t=t), dtype=dtype)
        self.name = "mean"


class SimpleGeometricMedianAgreement(AggregationAgreement):
    """Plain geometric-median "agreement" over all received vectors.

    The simple geometric median baseline of the paper's decentralized
    comparison: robust through the median's 1/2 breakdown point but with
    no trimming or subset search.
    """

    name = "geomedian"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        tol: float = 1e-8,
        max_iter: int = 200,
        dtype: Optional[str] = None,
    ) -> None:
        super().__init__(
            n, t, GeometricMedian(n=n, t=t, tol=tol, max_iter=max_iter), dtype=dtype
        )
        self.name = "geomedian"
