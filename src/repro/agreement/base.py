"""Agreement algorithm interface and the multi-round protocol runner."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.aggregation.base import AggregationRule
from repro.aggregation.context import AggregationContext
from repro.byzantine.base import GradientAttack
from repro.engine.base import RoundEngine
from repro.engine.rounds import attack_adversary_plan, run_exchange
from repro.engine.synchronous import SynchronousScheduler
from repro.linalg.distances import diameter
from repro.utils.rng import as_generator
from repro.utils.validation import ensure_matrix, validate_byzantine_bound


class AgreementAlgorithm(abc.ABC):
    """Per-node, per-sub-round update rule of an agreement algorithm.

    ``update(received)`` maps the ``(m, d)`` matrix of vectors a node
    delivered in the current sub-round to the node's vector for the next
    sub-round.  Implementations must be deterministic given the received
    matrix so that the convergence statements of the paper apply.
    """

    name: str = "agreement"
    #: Resilience divisor: ``t < n / resilience_divisor`` must hold.
    resilience_divisor: int = 3

    def __init__(self, n: int, t: int) -> None:
        validate_byzantine_bound(n, t, resilience_divisor=self.resilience_divisor)
        self.n = int(n)
        self.t = int(t)

    @abc.abstractmethod
    def update(self, received: np.ndarray) -> np.ndarray:
        """New local vector from the ``(m, d)`` received stack."""
        raise NotImplementedError

    def minimum_messages(self) -> int:
        """Quorum each honest node needs per sub-round (``n - t``)."""
        return self.n - self.t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, t={self.t})"


class AggregationAgreement(AgreementAlgorithm):
    """Agreement algorithm whose update rule is a one-shot aggregation rule.

    Every algorithm in the paper has this shape: the sub-round update is
    an application of a robust aggregation rule to the received vectors.
    ``dtype`` selects the kernel precision tier of the per-sub-round
    context (see :mod:`repro.linalg.precision`); the float64 default is
    bitwise-identical to the historical behaviour.
    """

    def __init__(
        self,
        n: int,
        t: int,
        rule: AggregationRule,
        *,
        dtype: "str | None" = None,
    ) -> None:
        from repro.linalg.precision import dtype_name

        super().__init__(n, t)
        self.rule = rule
        self.dtype_name = dtype_name(dtype)
        if rule.n is None:
            rule.n = n
        if rule.t != t:
            rule.t = t
        self.name = getattr(rule, "name", self.name)

    def update(self, received: np.ndarray) -> np.ndarray:
        # The context validates the stack; it also shares the pairwise-
        # distance matrix between every distance-based step of the rule.
        context = AggregationContext(received, dtype=self.dtype_name)
        if context.num_vectors < self.minimum_messages():
            raise ValueError(
                f"received only {context.num_vectors} messages, "
                f"need at least {self.minimum_messages()}"
            )
        return self.rule.aggregate(context=context)


@dataclass
class AgreementResult:
    """Trace of one multi-round agreement execution.

    Attributes
    ----------
    initial:
        Honest nodes' input vectors, keyed by node id.
    per_round:
        ``per_round[r][i]`` is honest node ``i``'s vector *after* sub-round
        ``r`` (i.e. its input for sub-round ``r + 1``).
    honest_ids:
        Sorted honest node ids.
    """

    initial: Dict[int, np.ndarray]
    per_round: List[Dict[int, np.ndarray]] = field(default_factory=list)
    honest_ids: tuple[int, ...] = ()

    @property
    def rounds(self) -> int:
        """Number of executed sub-rounds."""
        return len(self.per_round)

    def final_vectors(self) -> Dict[int, np.ndarray]:
        """Honest vectors after the last sub-round (inputs if no round ran)."""
        return dict(self.per_round[-1]) if self.per_round else dict(self.initial)

    def final_matrix(self) -> np.ndarray:
        """Final honest vectors stacked ``(h, d)`` in node-id order."""
        final = self.final_vectors()
        return np.stack([final[i] for i in sorted(final)], axis=0)

    def honest_matrix(self, round_index: Optional[int] = None) -> np.ndarray:
        """Honest vectors after ``round_index`` (or the inputs for ``None``/-1)."""
        if round_index is None or round_index < 0:
            source = self.initial
        else:
            source = self.per_round[round_index]
        return np.stack([source[i] for i in sorted(source)], axis=0)

    def diameter_trace(self) -> List[float]:
        """Honest-vector diameter after every sub-round (index 0 = inputs)."""
        trace = [diameter(self.honest_matrix(None))]
        for r in range(self.rounds):
            trace.append(diameter(self.honest_matrix(r)))
        return trace

    def converged(self, epsilon: float) -> bool:
        """Whether the final honest vectors are within ``epsilon`` of each other."""
        return self.diameter_trace()[-1] < epsilon


class AgreementProtocol:
    """Runs an agreement algorithm for several synchronous sub-rounds.

    Parameters
    ----------
    algorithm:
        The per-node update rule.
    byzantine:
        Ids of Byzantine nodes (at most ``algorithm.t`` of them).
    attack:
        Attack model driving the Byzantine nodes.  ``None`` means they
        crash (stay silent), the weakest fault the algorithms tolerate.
    seed:
        Seed for the adversary's random generator.
    engine:
        Round engine supplying the timing model.  Defaults to a
        lock-step :class:`~repro.engine.synchronous.SynchronousScheduler`
        (the paper's setting).  Under a lossy or partially synchronous
        engine, nodes starved below the ``n - t`` quorum keep their
        current vector for the round instead of aborting the run.
    """

    def __init__(
        self,
        algorithm: AgreementAlgorithm,
        byzantine: tuple[int, ...] | list[int] = (),
        attack: Optional[GradientAttack] = None,
        *,
        seed: int | None = 0,
        engine: Optional[RoundEngine] = None,
    ) -> None:
        self.algorithm = algorithm
        byz = tuple(sorted(int(b) for b in byzantine))
        if len(byz) > algorithm.t:
            raise ValueError(
                f"{len(byz)} Byzantine nodes configured but the algorithm tolerates t={algorithm.t}"
            )
        if any(b < 0 or b >= algorithm.n for b in byz):
            raise ValueError(f"Byzantine ids out of range: {byz}")
        self.byzantine = byz
        self.attack = attack
        self._rng = as_generator(seed)
        if engine is None:
            engine = SynchronousScheduler(algorithm.n, byz)
        if engine.n != algorithm.n:
            raise ValueError(
                f"engine is configured for n={engine.n} but the algorithm needs n={algorithm.n}"
            )
        if tuple(sorted(engine.byzantine)) != byz:
            raise ValueError(
                f"engine byzantine set {sorted(engine.byzantine)} does not match {byz}"
            )
        self.engine = engine
        # Lock-step delivery cannot legitimately starve a node, so a
        # shortfall is a protocol violation there; under other timing
        # models it is the scheduler's doing and the node just stalls.
        policy = "raise" if isinstance(engine, SynchronousScheduler) else "starve"
        self.engine.require_quorum(algorithm.minimum_messages(), policy=policy)
        # Explicit wait condition for event-driven schedulers: a node
        # processes its sub-round once the n - t quorum has arrived (or
        # its wait window expires).  An explicit count configured on the
        # engine beforehand wins over the quorum reading.
        self.engine.wait_for(quorum=True)
        #: Backwards-compatible alias (this used to be a SynchronousNetwork).
        self.network = self.engine

    def run(
        self,
        inputs: Dict[int, np.ndarray] | np.ndarray,
        rounds: int,
    ) -> AgreementResult:
        """Execute ``rounds`` sub-rounds from the given honest inputs.

        ``inputs`` maps *honest* node id to its input vector; a plain
        ``(h, d)`` array is also accepted and assigned to the honest ids
        in order.
        """
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        # Each run is a fresh exchange: drop history and any message
        # still in flight from a previous run on a delaying scheduler.
        self.engine.reset()
        honest_ids = self.engine.honest
        current = self._normalise_inputs(inputs, honest_ids)
        result = AgreementResult(
            initial={i: v.copy() for i, v in current.items()},
            honest_ids=honest_ids,
        )
        byz_own = self._byzantine_own_vectors(current)
        adversary_plan = (
            attack_adversary_plan(
                lambda _node: self.attack, byz_own, self._rng,
                horizon=self.engine.horizon, engine=self.engine,
            )
            if self.byzantine
            else None
        )

        run_exchange(
            self.engine,
            current,
            rounds,
            lambda _node, received: self.algorithm.update(received),
            adversary_plan,
            on_round=lambda _r, _res, vectors: result.per_round.append(
                {i: v.copy() for i, v in vectors.items()}
            ),
        )
        return result

    # -- helpers -------------------------------------------------------------
    def _normalise_inputs(
        self, inputs: Dict[int, np.ndarray] | np.ndarray, honest_ids: tuple[int, ...]
    ) -> Dict[int, np.ndarray]:
        if isinstance(inputs, dict):
            missing = [i for i in honest_ids if i not in inputs]
            if missing:
                raise ValueError(f"missing input vectors for honest nodes {missing}")
            return {
                i: np.asarray(inputs[i], dtype=np.float64).reshape(-1).copy()
                for i in honest_ids
            }
        mat = ensure_matrix(inputs, name="inputs")
        if mat.shape[0] != len(honest_ids):
            raise ValueError(
                f"expected {len(honest_ids)} input vectors (one per honest node), got {mat.shape[0]}"
            )
        return {node: mat[k].copy() for k, node in enumerate(honest_ids)}

    def _byzantine_own_vectors(self, current: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
        """Hand each Byzantine node an "honest-looking" starting vector.

        Attacks such as the sign flip corrupt the gradient the Byzantine
        node *would* have computed; in pure agreement experiments that
        role is played by the mean of the honest inputs.
        """
        if not current:
            return {}
        base = np.mean(np.stack(list(current.values()), axis=0), axis=0)
        return {b: base.copy() for b in self.byzantine}
