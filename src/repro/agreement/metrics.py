"""Approximation-ratio and convergence diagnostics (Section 3 of the paper).

The paper measures the quality of an agreement/aggregation output
against the *true geometric median* ``mu*`` — the geometric median of
the non-faulty inputs — normalised by the radius ``r_cov`` of the
minimum covering ball of ``S_geo``, the set of geometric medians of all
``(n - t)``-subsets of the vectors a node received (Definitions 3.1 and
3.3).  A vector at distance at most ``c * r_cov`` from ``mu*`` is a
``c``-approximation.

These diagnostics are what the theory benchmarks (T1) report.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.linalg.covering_ball import Ball, minimum_covering_ball
from repro.linalg.distances import diameter
from repro.linalg.geometric_median import geometric_median
from repro.linalg.subset_kernels import subset_geometric_medians
from repro.linalg.subsets import subset_family
from repro.utils.validation import ensure_matrix


def true_geometric_median(
    honest_vectors: np.ndarray, *, tol: float = 1e-10, max_iter: int = 500
) -> np.ndarray:
    """Geometric median ``mu*`` of the non-faulty inputs."""
    mat = ensure_matrix(honest_vectors, name="honest_vectors")
    return geometric_median(mat, tol=tol, max_iter=max_iter)


def geometric_median_candidates(
    received_vectors: np.ndarray,
    n: int,
    t: int,
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    tol: float = 1e-9,
    max_iter: int = 200,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """The set ``S_geo``: geometric medians of all ``(n - t)``-subsets.

    ``received_vectors`` is the full ``(m, d)`` stack a node observed
    (honest and Byzantine alike); the subset size is ``n - t`` clipped to
    ``m``.  Exhaustive by default, sampled when ``max_subsets`` caps the
    enumeration.  The whole family is solved by one batched Weiszfeld
    call (:func:`repro.linalg.subset_kernels.subset_geometric_medians`).
    """
    mat = ensure_matrix(received_vectors, name="received_vectors")
    subset_size = min(max(n - t, 1), mat.shape[0])
    indices = subset_family(mat, subset_size, max_subsets=max_subsets, rng=rng)
    return subset_geometric_medians(
        mat, indices, tol=tol, max_iter=max_iter, chunk_size=chunk_size
    )


def covering_ball_of_sgeo(
    received_vectors: np.ndarray,
    n: int,
    t: int,
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    chunk_size: Optional[int] = None,
) -> Ball:
    """Minimum covering ball ``B(S_geo)`` whose radius is ``r_cov``."""
    candidates = geometric_median_candidates(
        received_vectors, n, t, max_subsets=max_subsets, rng=rng, chunk_size=chunk_size
    )
    return minimum_covering_ball(candidates)


def approximation_ratio(
    output: np.ndarray,
    honest_vectors: np.ndarray,
    received_vectors: np.ndarray,
    n: int,
    t: int,
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    degenerate_tol: float = 1e-12,
) -> float:
    """Approximation ratio of ``output`` per Definition 3.3.

    ``dist(output, mu*) / r_cov`` where ``mu*`` is the geometric median
    of the honest vectors and ``r_cov`` the covering-ball radius of
    ``S_geo`` computed from the received vectors.

    When ``r_cov`` is (numerically) zero the set of candidate medians is
    a single point: the ratio is 0 if the output coincides with it and
    ``inf`` otherwise — this is exactly the degenerate situation used in
    the unboundedness proofs (Theorems 4.1 and 4.3).
    """
    out = np.asarray(output, dtype=np.float64).reshape(-1)
    mu_star = true_geometric_median(honest_vectors)
    ball = covering_ball_of_sgeo(received_vectors, n, t, max_subsets=max_subsets, rng=rng)
    dist = float(np.linalg.norm(out - mu_star))
    if ball.radius <= degenerate_tol:
        return 0.0 if dist <= degenerate_tol else float("inf")
    return dist / ball.radius


def honest_diameter_trace(per_round_matrices: List[np.ndarray]) -> List[float]:
    """Diameter of the honest vectors after each round (for convergence plots)."""
    return [diameter(mat) for mat in per_round_matrices]


def contraction_factors(diameters: List[float], *, eps: float = 1e-15) -> List[float]:
    """Round-over-round contraction ratios of a diameter trace.

    The hyperbox algorithm halves ``E_max`` each sub-round (Theorem 4.4),
    so its contraction factors should settle at or below roughly 0.5 per
    round (up to the sqrt(d) gap between diameter and E_max); MD-GEOM on
    the Lemma 4.2 instance produces factors pinned at 1.0.
    """
    factors = []
    for prev, cur in zip(diameters, diameters[1:]):
        if prev <= eps:
            factors.append(0.0)
        else:
            factors.append(cur / prev)
    return factors


def epsilon_agreement_reached(final_vectors: np.ndarray, epsilon: float) -> bool:
    """Whether all vectors are pairwise closer than ``epsilon`` (ε-agreement)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return diameter(final_vectors) < epsilon
