"""Name-based registry of agreement algorithms."""

from __future__ import annotations

from typing import Callable, Dict

from repro.agreement.algorithms import (
    HyperboxGeometricMedianAgreement,
    HyperboxMeanAgreement,
    MinimumDiameterGeometricMedianAgreement,
    MinimumDiameterMeanAgreement,
    SimpleGeometricMedianAgreement,
    SimpleMeanAgreement,
    TrimmedMeanAgreement,
)
from repro.agreement.base import AgreementAlgorithm
from repro.agreement.safe_area import SafeAreaAgreement

_FACTORIES: Dict[str, Callable[..., AgreementAlgorithm]] = {
    "box-geom": HyperboxGeometricMedianAgreement,
    "box-mean": HyperboxMeanAgreement,
    "md-geom": MinimumDiameterGeometricMedianAgreement,
    "md-mean": MinimumDiameterMeanAgreement,
    "trimmed-mean": TrimmedMeanAgreement,
    "safe-area": SafeAreaAgreement,
    "mean": SimpleMeanAgreement,
    "geomedian": SimpleGeometricMedianAgreement,
}


def available_algorithms() -> list[str]:
    """Sorted names of the registered agreement algorithms."""
    return sorted(_FACTORIES)


def make_algorithm(name: str, n: int, t: int, **kwargs) -> AgreementAlgorithm:
    """Instantiate the agreement algorithm registered under ``name``."""
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown agreement algorithm {name!r}; available: {available_algorithms()}"
        )
    return _FACTORIES[key](n, t, **kwargs)
