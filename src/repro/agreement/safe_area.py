"""Safe-area agreement algorithm (Mendes–Herlihy–Vaidya–Garg).

The classic multidimensional approximate-agreement algorithm: each node
repeatedly moves to a point inside the *safe area*, the intersection of
the convex hulls of every ``(n - t)``-subset of its received vectors
(Definition 2.3).  The safe area is guaranteed non-empty only when
``t < n / max(3, d + 1)``, so the algorithm is unusable when ``n <= d``
— which is the regime of machine-learning gradients — and the paper uses
it purely as a theoretical comparison point (Theorem 4.1 shows its
approximation ratio w.r.t. the geometric median is unbounded).

The implementation restricts itself to small dimensions and picks the
safe-area candidate closest to the mean of the received vectors.
"""

from __future__ import annotations

import numpy as np

from repro.agreement.base import AgreementAlgorithm
from repro.linalg.convex import safe_area_vertices
from repro.utils.validation import ensure_matrix


class SafeAreaAgreement(AgreementAlgorithm):
    """Safe-area update rule for low-dimensional inputs.

    Parameters
    ----------
    n, t:
        System size and fault tolerance.  The constructor enforces
        ``t < n / max(3, d_max + 1)`` lazily: the dimension is only known
        at update time, so the check happens per call.
    grid_resolution:
        Optional grid refinement for the candidate search in d <= 3.
    dtype:
        Accepted for constructor uniformity with the aggregation-backed
        algorithms (so ``make_algorithm(..., dtype=...)`` works for every
        registry entry); validated, but the safe-area search itself is a
        low-dimensional convex-hull computation and always runs in
        float64.
    """

    name = "safe-area"
    resilience_divisor = 3  # refined per-call with the actual dimension

    def __init__(
        self,
        n: int,
        t: int,
        *,
        grid_resolution: int = 0,
        dtype: "str | None" = None,
    ) -> None:
        from repro.linalg.precision import dtype_name

        super().__init__(n, t)
        if grid_resolution < 0:
            raise ValueError("grid_resolution must be non-negative")
        self.grid_resolution = int(grid_resolution)
        self.dtype_name = dtype_name(dtype)

    def update(self, received: np.ndarray) -> np.ndarray:
        mat = ensure_matrix(received, name="received")
        m, d = mat.shape
        divisor = max(3, d + 1)
        if self.t > 0 and self.t * divisor >= self.n:
            raise ValueError(
                f"safe-area algorithm requires t < n/max(3, d+1) = {self.n}/{divisor}; "
                f"got t={self.t} with d={d}"
            )
        if m < self.minimum_messages():
            raise ValueError(
                f"received only {m} messages, need at least {self.minimum_messages()}"
            )
        candidates = safe_area_vertices(
            mat, self.t, grid_resolution=self.grid_resolution
        )
        if candidates.shape[0] == 0:
            # The candidate search is heuristic; fall back to the mean of
            # the received vectors, which lies in the convex hull of all
            # of them (a superset of the safe area's hull constraints).
            return mat.mean(axis=0)
        mean = mat.mean(axis=0)
        dists = np.linalg.norm(candidates - mean[None, :], axis=1)
        return candidates[int(np.argmin(dists))].copy()
