"""Analysis helpers for experiment traces and sweep row files.

The paper's figures are read qualitatively: which algorithms *converge*,
which *diverge* or oscillate, and how large the final accuracy gap is.
This package turns those readings into reproducible numbers so the
benchmark reports and EXPERIMENTS.md comparisons are computed rather
than eyeballed.

Three layers:

- :mod:`repro.analysis.traces` / :mod:`repro.analysis.reporting` —
  per-history classification and plain-text tables;
- :mod:`repro.analysis.streaming` — constant-memory group-by
  aggregation over arbitrarily large sweep JSONL files;
- :mod:`repro.analysis.figures` / :mod:`repro.analysis.report` —
  paper-figure reproductions, delivery heatmaps and the self-contained
  HTML report behind ``repro analyze``.
"""

from repro.analysis.traces import (
    TraceSummary,
    classify_trace,
    moving_average,
    relative_gap,
    summarize_history,
)
from repro.analysis.reporting import (
    comparison_table,
    delivery_rate,
    delivery_trace_summary,
    format_percent,
    histories_to_records,
    sweep_summary_table,
)
from repro.analysis.streaming import (
    GroupStats,
    StreamingMoments,
    SweepAnalysis,
    analysis_table,
    analyze_sweep_rows,
)
from repro.analysis.figures import (
    FIGURE_BACKENDS,
    FigureArtifact,
    build_charts,
    matplotlib_available,
    render_figures,
    write_figures,
)
from repro.analysis.report import render_html_report, write_html_report

__all__ = [
    "FIGURE_BACKENDS",
    "FigureArtifact",
    "GroupStats",
    "StreamingMoments",
    "SweepAnalysis",
    "TraceSummary",
    "analysis_table",
    "analyze_sweep_rows",
    "build_charts",
    "classify_trace",
    "comparison_table",
    "delivery_rate",
    "delivery_trace_summary",
    "format_percent",
    "histories_to_records",
    "matplotlib_available",
    "moving_average",
    "relative_gap",
    "render_figures",
    "render_html_report",
    "summarize_history",
    "sweep_summary_table",
    "write_figures",
    "write_html_report",
]
