"""Analysis helpers for experiment traces.

The paper's figures are read qualitatively: which algorithms *converge*,
which *diverge* or oscillate, and how large the final accuracy gap is.
This package turns those readings into reproducible numbers so the
benchmark reports and EXPERIMENTS.md comparisons are computed rather
than eyeballed.
"""

from repro.analysis.traces import (
    TraceSummary,
    classify_trace,
    moving_average,
    relative_gap,
    summarize_history,
)
from repro.analysis.reporting import (
    comparison_table,
    delivery_rate,
    delivery_trace_summary,
    histories_to_records,
    sweep_summary_table,
)

__all__ = [
    "TraceSummary",
    "classify_trace",
    "comparison_table",
    "delivery_rate",
    "delivery_trace_summary",
    "histories_to_records",
    "moving_average",
    "relative_gap",
    "summarize_history",
    "sweep_summary_table",
]
