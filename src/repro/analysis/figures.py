"""Paper-figure reproductions rendered from sweep analyses.

The paper's Figures 1–3 are accuracy-vs-round curves and final-accuracy
comparisons across scenario grids; this module rebuilds their
equivalents **from sweep rows** (via
:class:`~repro.analysis.streaming.SweepAnalysis`) instead of bespoke
benchmark scripts, and adds the delivery-trace heatmaps (round × group
worst-delivery / late-message maps) that make bursty MMPP-style regimes
visible — per-round worst-case delivery shows bursts that cumulative
``deliv%`` averages away.

Two rendering backends share the same chart descriptions:

- ``svg`` — a dependency-free, deterministic SVG writer (always
  available; byte-identical output for identical input, which the
  determinism tests pin);
- ``mpl`` — matplotlib with the headless ``Agg`` canvas, when matplotlib
  is importable (PNG output; CI installs it, the base container may
  not).

``backend="auto"`` prefers matplotlib and falls back to the SVG writer,
so figure rendering never becomes an import error.

Charts follow a fixed-order colourblind-validated categorical palette
(assigned by series identity, never cycled: past eight series the rest
fold into an explicit note), a single-hue sequential ramp for the
heatmaps, one axis per chart, and a legend whenever two or more series
share a plot.
"""

from __future__ import annotations

import base64
import io
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union
from xml.sax.saxutils import escape

from repro.analysis.streaming import SweepAnalysis

PathLike = Union[str, Path]

#: Fixed-order categorical palette (colourblind-validated, light mode).
#: Hues are assigned by series position and never cycled.
PALETTE: Tuple[str, ...] = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

#: Single-hue sequential ramp stops (light → dark blue) for heatmaps.
SEQUENTIAL_STOPS: Tuple[str, str, str] = ("#eef4fb", "#2a78d6", "#122f54")

#: Cell colour for missing heatmap values (no data ≠ zero).
MISSING_COLOR = "#e3e2de"

SURFACE_COLOR = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID_COLOR = "#e7e6e2"

#: Series beyond this fold into the chart note instead of new hues.
MAX_SERIES = len(PALETTE)

#: Heatmap rows beyond this fold into the chart note.
MAX_HEATMAP_ROWS = 24

FIGURE_BACKENDS = ("auto", "svg", "mpl")


@dataclass(frozen=True)
class FigureArtifact:
    """One rendered figure: bytes plus enough metadata to embed it."""

    name: str
    title: str
    mime: str  # "image/svg+xml" or "image/png"
    data: bytes

    @property
    def extension(self) -> str:
        return "svg" if self.mime == "image/svg+xml" else "png"

    def data_uri(self) -> str:
        """Self-contained ``data:`` URI (inline-HTML embedding)."""
        payload = base64.b64encode(self.data).decode("ascii")
        return f"data:{self.mime};base64,{payload}"


@dataclass
class LineChart:
    """Backend-independent description of a line chart."""

    name: str
    title: str
    xlabel: str
    ylabel: str
    #: (label, [(x, y), ...]) in fixed series order.
    series: List[Tuple[str, List[Tuple[float, float]]]]
    #: Category labels when the x axis is categorical (x = positions).
    x_tick_labels: Optional[List[str]] = None
    note: str = ""


@dataclass
class Heatmap:
    """Backend-independent description of a heatmap."""

    name: str
    title: str
    xlabel: str
    ylabel: str
    row_labels: List[str]
    #: rows × cols; NaN marks a missing cell.
    matrix: List[List[float]] = field(default_factory=list)
    vmin: float = 0.0
    vmax: float = 1.0
    #: Render values as percentages in the colourbar labels.
    percent: bool = False
    note: str = ""


Chart = Union[LineChart, Heatmap]


def matplotlib_available() -> bool:
    """Is the optional matplotlib backend importable?"""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


# -- chart construction from a SweepAnalysis ---------------------------------

def _cap_series(
    series: List[Tuple[str, List[Tuple[float, float]]]]
) -> Tuple[List[Tuple[str, List[Tuple[float, float]]]], str]:
    """Fold series beyond the palette into an explicit note (never cycle)."""
    if len(series) <= MAX_SERIES:
        return series, ""
    kept = series[:MAX_SERIES]
    note = (
        f"+{len(series) - MAX_SERIES} more group(s) not drawn; "
        f"use --group-by to reduce the group count"
    )
    return kept, note


def accuracy_curves_chart(analysis: SweepAnalysis) -> Optional[LineChart]:
    """Mean accuracy per round, one series per group (Fig 1–3 analogue)."""
    series: List[Tuple[str, List[Tuple[float, float]]]] = []
    for key, group in analysis.groups.items():
        curve = group.accuracy_curve.series("mean")
        points = [
            (float(index), value)
            for index, value in enumerate(curve)
            if math.isfinite(value)
        ]
        if points:
            series.append((analysis.group_label(key), points))
    if not series:
        return None
    series, note = _cap_series(series)
    return LineChart(
        name="accuracy_curves",
        title="Accuracy per round (group mean)",
        xlabel="round",
        ylabel="test accuracy",
        series=series,
        note=note,
    )


def final_accuracy_chart(analysis: SweepAnalysis) -> Optional[LineChart]:
    """Mean final accuracy vs the first group-by axis, one series per
    combination of the remaining axes (the paper's panel comparisons)."""
    if not analysis.group_by or not analysis.groups:
        return None
    x_axis, rest = analysis.group_by[0], analysis.group_by[1:]
    x_values: List[str] = []
    table: Dict[str, Dict[str, float]] = {}
    for key, group in analysis.groups.items():
        final = group.metrics.get("final_accuracy")
        if final is None or final.count == 0:
            continue
        x_value = key[0]
        series_label = "/".join(
            f"{name}={value}" for name, value in zip(rest, key[1:])
        ) or "all cells"
        if x_value not in x_values:
            x_values.append(x_value)
        table.setdefault(series_label, {})[x_value] = final.mean
    if not table or len(x_values) < 1:
        return None
    series = [
        (
            label,
            [
                (float(position), values[x_value])
                for position, x_value in enumerate(x_values)
                if x_value in values
            ],
        )
        for label, values in table.items()
    ]
    series = [(label, points) for label, points in series if points]
    if not series:
        return None
    series, note = _cap_series(series)
    return LineChart(
        name="final_accuracy",
        title=f"Final accuracy by {x_axis}",
        xlabel=x_axis,
        ylabel="final test accuracy",
        series=series,
        x_tick_labels=list(x_values),
        note=note,
    )


def _heatmap_from_rounds(
    analysis: SweepAnalysis,
    *,
    name: str,
    title: str,
    stat: str,
    accumulator: str,
    percent: bool,
) -> Optional[Heatmap]:
    rows: List[Tuple[str, List[float]]] = []
    for key, group in analysis.groups.items():
        series = getattr(group, accumulator).series(stat)
        if any(math.isfinite(value) for value in series):
            rows.append((analysis.group_label(key), series))
    if not rows:
        return None
    note = ""
    if len(rows) > MAX_HEATMAP_ROWS:
        note = (
            f"+{len(rows) - MAX_HEATMAP_ROWS} more group(s) not drawn; "
            f"use --group-by to reduce the group count"
        )
        rows = rows[:MAX_HEATMAP_ROWS]
    columns = max(len(series) for _, series in rows)
    matrix = [
        series + [float("nan")] * (columns - len(series)) for _, series in rows
    ]
    finite = [v for row in matrix for v in row if math.isfinite(v)]
    vmax = 1.0 if percent else max(finite + [1.0])
    return Heatmap(
        name=name,
        title=title,
        xlabel="round",
        ylabel="group",
        row_labels=[label for label, _ in rows],
        matrix=matrix,
        vmin=0.0,
        vmax=vmax,
        percent=percent,
        note=note,
    )


def delivery_heatmap_chart(analysis: SweepAnalysis) -> Optional[Heatmap]:
    """Round × group worst per-round delivery rate (burst depth)."""
    return _heatmap_from_rounds(
        analysis,
        name="delivery_worst_heatmap",
        title="Worst per-round delivery (round × group)",
        stat="min",
        accumulator="round_delivery",
        percent=True,
    )


def late_heatmap_chart(analysis: SweepAnalysis) -> Optional[Heatmap]:
    """Round × group mean late (delayed) messages per cell."""
    return _heatmap_from_rounds(
        analysis,
        name="delivery_late_heatmap",
        title="Late messages per round (round × group)",
        stat="mean",
        accumulator="round_late",
        percent=False,
    )


def build_charts(analysis: SweepAnalysis) -> List[Chart]:
    """Every chart the analysis has data for, in report order."""
    charts: List[Optional[Chart]] = [
        accuracy_curves_chart(analysis),
        final_accuracy_chart(analysis),
        delivery_heatmap_chart(analysis),
        late_heatmap_chart(analysis),
    ]
    return [chart for chart in charts if chart is not None]


# -- deterministic SVG backend ----------------------------------------------

def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (deterministic bytes)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    if not math.isfinite(lo) or not math.isfinite(hi) or hi <= lo:
        return [lo]
    return [lo + (hi - lo) * i / (count - 1) for i in range(count)]


def _tick_label(value: float) -> str:
    return f"{value:.3g}"


def _lerp_color(a: str, b: str, t: float) -> str:
    av = [int(a[i : i + 2], 16) for i in (1, 3, 5)]
    bv = [int(b[i : i + 2], 16) for i in (1, 3, 5)]
    mixed = [round(x + (y - x) * t) for x, y in zip(av, bv)]
    return "#" + "".join(f"{channel:02x}" for channel in mixed)


def sequential_color(t: float) -> str:
    """Single-hue light→dark ramp over ``t`` in [0, 1]."""
    t = min(1.0, max(0.0, t))
    light, mid, dark = SEQUENTIAL_STOPS
    if t < 0.5:
        return _lerp_color(light, mid, t * 2.0)
    return _lerp_color(mid, dark, (t - 0.5) * 2.0)


_CHART_W, _CHART_H = 760, 380
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 16, 44, 56
_LEGEND_W = 220


def _svg_text(
    x: float, y: float, text: str, *, size: int = 12,
    color: str = TEXT_SECONDARY, anchor: str = "start", bold: bool = False,
) -> str:
    weight = ' font-weight="600"' if bold else ""
    return (
        f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}" '
        f'fill="{color}" text-anchor="{anchor}"{weight}>{escape(text)}</text>'
    )


def _svg_document(width: int, height: int, body: List[str]) -> str:
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="Helvetica, Arial, sans-serif">',
        f'<rect width="{width}" height="{height}" fill="{SURFACE_COLOR}"/>',
    ]
    parts.extend(body)
    parts.append("</svg>")
    return "\n".join(parts)


def render_line_chart_svg(chart: LineChart) -> str:
    """Deterministic SVG for a :class:`LineChart`."""
    legend = len(chart.series) >= 2
    width = _CHART_W + (_LEGEND_W if legend else 0)
    height = _CHART_H
    plot_w = _CHART_W - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    xs = [x for _, points in chart.series for x, _ in points]
    ys = [y for _, points in chart.series for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi <= x_lo:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if y_hi <= y_lo:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    pad = 0.05 * (y_hi - y_lo)
    y_lo, y_hi = y_lo - pad, y_hi + pad

    def sx(x: float) -> float:
        return _MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return _MARGIN_T + (y_hi - y) / (y_hi - y_lo) * plot_h

    body: List[str] = [
        _svg_text(_MARGIN_L, 24, chart.title, size=14, color=TEXT_PRIMARY,
                  bold=True),
    ]
    # Recessive grid + y ticks.
    for tick in _ticks(y_lo, y_hi):
        y = sy(tick)
        body.append(
            f'<line x1="{_fmt(_MARGIN_L)}" y1="{_fmt(y)}" '
            f'x2="{_fmt(_MARGIN_L + plot_w)}" y2="{_fmt(y)}" '
            f'stroke="{GRID_COLOR}" stroke-width="1"/>'
        )
        body.append(
            _svg_text(_MARGIN_L - 8, y + 4, _tick_label(tick), anchor="end")
        )
    # X ticks: categorical labels when given, numeric otherwise.
    if chart.x_tick_labels is not None:
        for position, label in enumerate(chart.x_tick_labels):
            x = sx(float(position))
            body.append(
                _svg_text(x, _MARGIN_T + plot_h + 18, label, anchor="middle")
            )
    else:
        for tick in _ticks(x_lo, x_hi):
            x = sx(tick)
            body.append(
                _svg_text(x, _MARGIN_T + plot_h + 18, _tick_label(tick),
                          anchor="middle")
            )
    # Axes (drawn over the grid).
    body.append(
        f'<line x1="{_fmt(_MARGIN_L)}" y1="{_fmt(_MARGIN_T)}" '
        f'x2="{_fmt(_MARGIN_L)}" y2="{_fmt(_MARGIN_T + plot_h)}" '
        f'stroke="{TEXT_SECONDARY}" stroke-width="1"/>'
    )
    body.append(
        f'<line x1="{_fmt(_MARGIN_L)}" y1="{_fmt(_MARGIN_T + plot_h)}" '
        f'x2="{_fmt(_MARGIN_L + plot_w)}" y2="{_fmt(_MARGIN_T + plot_h)}" '
        f'stroke="{TEXT_SECONDARY}" stroke-width="1"/>'
    )
    body.append(
        _svg_text(_MARGIN_L + plot_w / 2, height - 16, chart.xlabel,
                  anchor="middle")
    )
    body.append(
        f'<g transform="translate(16 {_fmt(_MARGIN_T + plot_h / 2)}) '
        f'rotate(-90)">{_svg_text(0, 0, chart.ylabel, anchor="middle")}</g>'
    )
    # Series: 2px lines, markers when sparse; native tooltips via <title>.
    for position, (label, points) in enumerate(chart.series):
        color = PALETTE[position]
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{_fmt(sx(x))},{_fmt(sy(y))}"
            for i, (x, y) in enumerate(points)
        )
        body.append(
            f'<path d="{path}" fill="none" stroke="{color}" '
            f'stroke-width="2"><title>{escape(label)}</title></path>'
        )
        if len(points) <= 24:
            for x, y in points:
                body.append(
                    f'<circle cx="{_fmt(sx(x))}" cy="{_fmt(sy(y))}" r="3" '
                    f'fill="{color}"><title>{escape(label)}: '
                    f'{_tick_label(y)}</title></circle>'
                )
    if legend:
        lx = _CHART_W + 8
        for position, (label, _) in enumerate(chart.series):
            ly = _MARGIN_T + 16 * position
            body.append(
                f'<rect x="{_fmt(lx)}" y="{_fmt(ly - 8)}" width="10" '
                f'height="10" rx="2" fill="{PALETTE[position]}"/>'
            )
            body.append(_svg_text(lx + 16, ly, label, size=11))
    if chart.note:
        body.append(
            _svg_text(_MARGIN_L, height - 2, chart.note, size=10)
        )
    return _svg_document(width, height, body)


def render_heatmap_svg(chart: Heatmap) -> str:
    """Deterministic SVG for a :class:`Heatmap`."""
    rows = len(chart.matrix)
    columns = max((len(row) for row in chart.matrix), default=0)
    label_w = max(
        [_MARGIN_L] + [6 * len(label) + 16 for label in chart.row_labels]
    )
    label_w = min(label_w, 260)
    cell_h = max(14, min(28, 240 // max(rows, 1)))
    cell_w = max(4, min(24, 640 // max(columns, 1)))
    plot_w, plot_h = cell_w * columns, cell_h * rows
    width = label_w + plot_w + 120
    height = _MARGIN_T + plot_h + _MARGIN_B

    body: List[str] = [
        _svg_text(label_w, 24, chart.title, size=14, color=TEXT_PRIMARY,
                  bold=True),
    ]
    span = chart.vmax - chart.vmin
    for r, (label, row) in enumerate(zip(chart.row_labels, chart.matrix)):
        y = _MARGIN_T + r * cell_h
        body.append(
            _svg_text(label_w - 6, y + cell_h / 2 + 4, label, size=11,
                      anchor="end")
        )
        for c, value in enumerate(row):
            x = label_w + c * cell_w
            if math.isfinite(value):
                t = (value - chart.vmin) / span if span > 0 else 0.0
                color = sequential_color(t)
                shown = (
                    f"{100.0 * value:.1f}%" if chart.percent
                    else f"{value:.3g}"
                )
                tooltip = f"{label} · round {c}: {shown}"
            else:
                color = MISSING_COLOR
                tooltip = f"{label} · round {c}: no data"
            body.append(
                f'<rect x="{_fmt(x)}" y="{_fmt(y)}" '
                f'width="{_fmt(max(cell_w - 1, 1))}" '
                f'height="{_fmt(max(cell_h - 1, 1))}" fill="{color}">'
                f"<title>{escape(tooltip)}</title></rect>"
            )
    # Column ticks (every few rounds, to avoid label collisions).
    step = max(1, columns // 10)
    for c in range(0, columns, step):
        body.append(
            _svg_text(label_w + c * cell_w + cell_w / 2,
                      _MARGIN_T + plot_h + 16, str(c), size=10,
                      anchor="middle")
        )
    body.append(
        _svg_text(label_w + plot_w / 2, _MARGIN_T + plot_h + 36,
                  chart.xlabel, anchor="middle")
    )
    # Colourbar.
    bar_x, bar_w = label_w + plot_w + 24, 14
    bar_h = max(plot_h, 60)
    steps = 24
    for i in range(steps):
        t = 1.0 - i / (steps - 1)
        body.append(
            f'<rect x="{_fmt(bar_x)}" y="{_fmt(_MARGIN_T + i * bar_h / steps)}" '
            f'width="{bar_w}" height="{_fmt(bar_h / steps + 0.5)}" '
            f'fill="{sequential_color(t)}"/>'
        )
    top = f"{100.0 * chart.vmax:.0f}%" if chart.percent else f"{chart.vmax:.3g}"
    bottom = f"{100.0 * chart.vmin:.0f}%" if chart.percent else f"{chart.vmin:.3g}"
    body.append(_svg_text(bar_x + bar_w + 4, _MARGIN_T + 10, top, size=10))
    body.append(
        _svg_text(bar_x + bar_w + 4, _MARGIN_T + bar_h, bottom, size=10)
    )
    if chart.note:
        body.append(_svg_text(label_w, height - 2, chart.note, size=10))
    return _svg_document(width, height, body)


def render_chart_svg(chart: Chart) -> str:
    if isinstance(chart, LineChart):
        return render_line_chart_svg(chart)
    return render_heatmap_svg(chart)


# -- optional matplotlib backend ---------------------------------------------

def _render_chart_mpl(chart: Chart) -> bytes:
    """PNG bytes via matplotlib's headless Agg canvas."""
    import matplotlib

    matplotlib.use("Agg", force=True)
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(7.6, 3.8), dpi=110)
    fig.patch.set_facecolor(SURFACE_COLOR)
    ax.set_facecolor(SURFACE_COLOR)
    if isinstance(chart, LineChart):
        for position, (label, points) in enumerate(chart.series):
            xs = [x for x, _ in points]
            ys = [y for _, y in points]
            ax.plot(
                xs, ys, label=label, color=PALETTE[position], linewidth=2,
                marker="o" if len(points) <= 24 else None, markersize=4,
            )
        if chart.x_tick_labels is not None:
            ax.set_xticks(range(len(chart.x_tick_labels)))
            ax.set_xticklabels(chart.x_tick_labels)
        if len(chart.series) >= 2:
            ax.legend(loc="center left", bbox_to_anchor=(1.02, 0.5),
                      frameon=False, fontsize=8)
        ax.grid(color=GRID_COLOR, linewidth=0.8)
        ax.set_axisbelow(True)
    else:
        from matplotlib.colors import LinearSegmentedColormap

        colormap = LinearSegmentedColormap.from_list(
            "repro_seq", list(SEQUENTIAL_STOPS)
        )
        colormap.set_bad(MISSING_COLOR)
        import numpy as np

        data = np.array(chart.matrix, dtype=float)
        image = ax.imshow(
            data, aspect="auto", cmap=colormap, vmin=chart.vmin,
            vmax=chart.vmax, interpolation="nearest",
        )
        ax.set_yticks(range(len(chart.row_labels)))
        ax.set_yticklabels(chart.row_labels, fontsize=8)
        bar = fig.colorbar(image, ax=ax)
        if chart.percent:
            bar.ax.set_ylabel("delivery", fontsize=8)
    ax.set_title(chart.title, fontsize=11, color=TEXT_PRIMARY)
    ax.set_xlabel(chart.xlabel, fontsize=9, color=TEXT_SECONDARY)
    ax.set_ylabel(chart.ylabel, fontsize=9, color=TEXT_SECONDARY)
    if chart.note:
        fig.text(0.01, 0.01, chart.note, fontsize=7, color=TEXT_SECONDARY)
    buffer = io.BytesIO()
    fig.savefig(buffer, format="png", bbox_inches="tight")
    plt.close(fig)
    return buffer.getvalue()


# -- entry points ------------------------------------------------------------

def render_figures(
    analysis: SweepAnalysis, *, backend: str = "auto"
) -> List[FigureArtifact]:
    """Render every available chart for an analysis.

    ``backend``: ``"svg"`` (builtin, deterministic), ``"mpl"``
    (matplotlib/Agg PNG; raises if matplotlib is missing) or ``"auto"``
    (matplotlib when importable, SVG otherwise).
    """
    if backend not in FIGURE_BACKENDS:
        raise ValueError(
            f"unknown figure backend {backend!r}; available: {FIGURE_BACKENDS}"
        )
    if backend == "auto":
        backend = "mpl" if matplotlib_available() else "svg"
    if backend == "mpl" and not matplotlib_available():
        raise ValueError(
            "figure backend 'mpl' needs matplotlib installed; use 'svg' "
            "(builtin) or 'auto'"
        )
    artifacts: List[FigureArtifact] = []
    for chart in build_charts(analysis):
        if backend == "mpl":
            data, mime = _render_chart_mpl(chart), "image/png"
        else:
            data, mime = render_chart_svg(chart).encode("utf-8"), "image/svg+xml"
        artifacts.append(
            FigureArtifact(name=chart.name, title=chart.title, mime=mime,
                           data=data)
        )
    return artifacts


def write_figures(
    artifacts: Sequence[FigureArtifact], directory: PathLike
) -> List[Path]:
    """Write one file per artifact into ``directory``; returns the paths."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for artifact in artifacts:
        path = target / f"{artifact.name}.{artifact.extension}"
        path.write_bytes(artifact.data)
        paths.append(path)
    return paths


__all__ = [
    "FIGURE_BACKENDS",
    "FigureArtifact",
    "Heatmap",
    "LineChart",
    "MAX_HEATMAP_ROWS",
    "MAX_SERIES",
    "PALETTE",
    "accuracy_curves_chart",
    "build_charts",
    "delivery_heatmap_chart",
    "final_accuracy_chart",
    "late_heatmap_chart",
    "matplotlib_available",
    "render_chart_svg",
    "render_figures",
    "render_heatmap_svg",
    "render_line_chart_svg",
    "sequential_color",
    "write_figures",
]
