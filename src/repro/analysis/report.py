"""Self-contained static HTML reports for sweep analyses.

One call — :func:`render_html_report` — turns a
:class:`~repro.analysis.streaming.SweepAnalysis` plus its rendered
figures into a single HTML file with **no external references**: figures
are inlined as base64 ``data:`` URIs, styling is an embedded stylesheet,
and no script tags are emitted.  The file can be attached to a CI run,
mailed around, or opened from a USB stick years later and still render.

Output is deterministic for identical input (no timestamps, no random
ids), which lets CI pin report bytes alongside the merge byte-identity
check.
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analysis.figures import FigureArtifact
from repro.analysis.streaming import GroupStats, SweepAnalysis

PathLike = Union[str, Path]

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2rem auto;
       max-width: 72rem; padding: 0 1rem; color: #0b0b0b;
       background: #fcfcfb; }
h1 { font-size: 1.4rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
p.meta { color: #52514e; }
table { border-collapse: collapse; margin: 0.75rem 0; font-size: 0.85rem; }
th, td { padding: 0.3rem 0.7rem; text-align: right;
         border-bottom: 1px solid #e7e6e2; }
th { color: #52514e; font-weight: 600; }
th.label, td.label { text-align: left; font-family: ui-monospace,
                     SFMono-Regular, Menlo, monospace; }
td.bad { color: #e34948; font-weight: 600; }
figure { margin: 1.5rem 0; }
figure img { max-width: 100%; height: auto; border: 1px solid #e7e6e2; }
figcaption { color: #52514e; font-size: 0.85rem; margin-top: 0.25rem; }
code { background: #f1f0ec; padding: 0.1rem 0.3rem; border-radius: 3px; }
"""


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt_metric(value: float) -> str:
    return f"{value:.3f}" if math.isfinite(value) else "-"


def _fmt_percent(value: float) -> str:
    return f"{100.0 * value:.1f}%" if math.isfinite(value) else "-"


def _group_row(analysis: SweepAnalysis, group: GroupStats) -> str:
    final = group.metrics.get("final_accuracy")
    best = group.metrics.get("best_accuracy")

    def stat(moments, attribute: str) -> str:
        if moments is None or moments.count == 0:
            return "-"
        return _fmt_metric(getattr(moments, attribute))

    cells = [
        f'<td class="label">{_esc(analysis.group_label(group.key))}</td>',
        f"<td>{group.cells}</td>",
        f'<td class="bad">{group.failed}</td>' if group.failed
        else "<td>0</td>",
        f"<td>{stat(final, 'mean')}</td>",
        f"<td>{stat(final, 'std')}</td>",
        f"<td>{stat(final, 'minimum')}</td>",
        f"<td>{stat(final, 'maximum')}</td>",
        f"<td>{stat(best, 'mean')}</td>",
    ]
    if analysis.has_delivery:
        deliv = group.delivery.get("delivery_rate")
        worst = group.delivery.get("worst_deliv")
        late = group.delivery.get("late")
        cells.append(
            f"<td>{_fmt_percent(deliv.mean if deliv and deliv.count else float('nan'))}</td>"
        )
        cells.append(
            f"<td>{_fmt_percent(worst.minimum if worst and worst.count else float('nan'))}</td>"
        )
        cells.append(
            f"<td>{int(round(late.total)) if late and late.count else 0}</td>"
        )
    tally = " ".join(
        f"{name}:{count}"
        for name, count in sorted(group.classifications.items())
    )
    cells.append(f'<td class="label">{_esc(tally) if tally else "-"}</td>')
    return "<tr>" + "".join(cells) + "</tr>"


def _groups_table(analysis: SweepAnalysis) -> List[str]:
    head = [
        '<th class="label">group</th>', "<th>cells</th>", "<th>failed</th>",
        "<th>final</th>", "<th>±std</th>", "<th>min</th>", "<th>max</th>",
        "<th>best</th>",
    ]
    if analysis.has_delivery:
        head += ["<th>deliv%</th>", "<th>wrst%</th>", "<th>late</th>"]
    head.append('<th class="label">classes</th>')
    lines = ["<table>", "<thead><tr>" + "".join(head) + "</tr></thead>",
             "<tbody>"]
    for group in analysis.groups.values():
        lines.append(_group_row(analysis, group))
    lines += ["</tbody>", "</table>"]
    return lines


def _failures_section(analysis: SweepAnalysis) -> List[str]:
    if not analysis.failed:
        return []
    lines = ["<h2>Failed cells</h2>"]
    shown = len(analysis.failures)
    if analysis.failed > shown:
        lines.append(
            f'<p class="meta">{analysis.failed} cell(s) failed; the first '
            f"{shown} are listed.</p>"
        )
    lines.append("<table>")
    lines.append(
        '<thead><tr><th class="label">cell</th>'
        '<th class="label">exception</th></tr></thead>'
    )
    lines.append("<tbody>")
    for cell_id, exception in analysis.failures:
        lines.append(
            f'<tr><td class="label">{_esc(cell_id)}</td>'
            f'<td class="label">{_esc(exception)}</td></tr>'
        )
    lines += ["</tbody>", "</table>"]
    return lines


def render_html_report(
    analysis: SweepAnalysis,
    figures: Sequence[FigureArtifact] = (),
    *,
    title: str = "Sweep report",
    source: Optional[str] = None,
) -> str:
    """One self-contained HTML page for an analysed sweep.

    ``figures`` are embedded inline as base64 data URIs (any mix of the
    SVG and matplotlib backends); ``source`` names the row file in the
    header.  The output references nothing external and contains no
    scripts, and is byte-identical for identical input.
    """
    meta_bits = [
        f"{analysis.rows_read} row(s) read",
        f"{analysis.cells} cell(s)",
        f"{len(analysis.groups)} group(s)",
        f"{analysis.failed} failed",
    ]
    if analysis.stale_rows:
        meta_bits.append(f"{analysis.stale_rows} stale row(s) skipped")
    if analysis.group_by:
        meta_bits.append(
            "grouped by " + ", ".join(
                f"<code>{_esc(name)}</code>" for name in analysis.group_by
            )
        )
    lines = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8"/>',
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head>",
        "<body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if source:
        lines.append(f'<p class="meta">Source: <code>{_esc(source)}</code></p>')
    lines.append(f'<p class="meta">{" · ".join(meta_bits)}</p>')
    lines.append("<h2>Groups</h2>")
    if analysis.groups:
        lines.extend(_groups_table(analysis))
    else:
        lines.append('<p class="meta">No current-schema rows found.</p>')
    lines.extend(_failures_section(analysis))
    if figures:
        lines.append("<h2>Figures</h2>")
        for artifact in figures:
            lines.append("<figure>")
            lines.append(
                f'<img src="{artifact.data_uri()}" '
                f'alt="{_esc(artifact.title)}"/>'
            )
            lines.append(f"<figcaption>{_esc(artifact.title)}</figcaption>")
            lines.append("</figure>")
    lines += ["</body>", "</html>"]
    return "\n".join(lines)


def write_html_report(
    analysis: SweepAnalysis,
    figures: Sequence[FigureArtifact],
    path: PathLike,
    *,
    title: str = "Sweep report",
    source: Optional[str] = None,
) -> Path:
    """Render and write the report; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        render_html_report(analysis, figures, title=title, source=source),
        encoding="utf-8",
    )
    return target


__all__ = ["render_html_report", "write_html_report"]
