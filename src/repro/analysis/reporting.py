"""Tabular reporting of experiment results.

Turns a collection of :class:`~repro.learning.history.TrainingHistory`
objects into plain-text tables and serialisable records — the format
the benchmark harness prints and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.analysis.traces import summarize_history
from repro.learning.history import TrainingHistory


def histories_to_records(
    histories: Mapping[str, TrainingHistory], *, num_classes: int = 10
) -> List[Dict[str, object]]:
    """One serialisable record per labelled history (for JSON export)."""
    records: List[Dict[str, object]] = []
    for label, history in histories.items():
        summary = summarize_history(history, num_classes=num_classes)
        record = dict(history.summary())
        record.update(
            {
                "label": label,
                "smoothed_final_accuracy": summary.smoothed_final,
                "classification": summary.classification,
                "above_chance": summary.above_chance,
            }
        )
        records.append(record)
    return records


def comparison_table(
    histories: Mapping[str, TrainingHistory], *, num_classes: int = 10
) -> str:
    """Plain-text comparison table: one row per algorithm.

    Columns: final accuracy, best accuracy, smoothed final accuracy and
    the qualitative classification (converging / unstable / diverging /
    stagnant) used to compare against the paper's description.
    """
    header = (
        f"{'label':<14s} {'final':>7s} {'best':>7s} {'smoothed':>9s} {'verdict':>12s}"
    )
    lines = [header, "-" * len(header)]
    for record in histories_to_records(histories, num_classes=num_classes):
        lines.append(
            f"{str(record['label']):<14s} {record['final_accuracy']:>7.3f} "
            f"{record['best_accuracy']:>7.3f} {record['smoothed_final_accuracy']:>9.3f} "
            f"{str(record['classification']):>12s}"
        )
    return "\n".join(lines)
