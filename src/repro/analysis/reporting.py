"""Tabular reporting of experiment results.

Turns a collection of :class:`~repro.learning.history.TrainingHistory`
objects into plain-text tables and serialisable records — the format
the benchmark harness prints and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.traces import summarize_history
from repro.learning.history import TrainingHistory


def histories_to_records(
    histories: Mapping[str, TrainingHistory], *, num_classes: int = 10
) -> List[Dict[str, object]]:
    """One serialisable record per labelled history (for JSON export)."""
    records: List[Dict[str, object]] = []
    for label, history in histories.items():
        summary = summarize_history(history, num_classes=num_classes)
        record = dict(history.summary())
        record.update(
            {
                "label": label,
                "smoothed_final_accuracy": summary.smoothed_final,
                "classification": summary.classification,
                "above_chance": summary.above_chance,
            }
        )
        if history.network_stats:
            record["network_stats"] = dict(history.network_stats)
            record["delivery_rate"] = delivery_rate(history.network_stats)
        if history.delivery_trace:
            record["delivery_trace_summary"] = delivery_trace_summary(
                history.delivery_trace
            )
        if history.node_stats:
            record["node_stats_summary"] = node_stats_summary(history.node_stats)
        records.append(record)
    return records


def delivery_rate(stats: Mapping[str, object]) -> float:
    """Fraction of sent messages that were eventually delivered.

    ``stats`` is a round engine's counter mapping (``sent`` /
    ``delivered`` / ...).  Returns ``nan`` when nothing was sent.
    """
    sent = float(stats.get("sent", 0) or 0)
    if sent <= 0:
        return float("nan")
    return float(stats.get("delivered", 0) or 0) / sent


def delivery_trace_summary(trace: Sequence[Mapping[str, int]]) -> Dict[str, object]:
    """Compact reading of a per-round delivery trace.

    Returns ``rounds`` (trace length), ``worst_deliv`` (the worst
    per-round delivered/sent ratio over rounds that sent anything — the
    depth of the worst burst or crash window) and ``late`` (total
    messages that missed their send round).  This is what the sweep
    summary table renders next to the cumulative ``deliv%``.
    """
    per_round = [
        delivery_rate(row) for row in trace if int(row.get("sent", 0) or 0) > 0
    ]
    return {
        "rounds": len(trace),
        "worst_deliv": min(per_round) if per_round else float("nan"),
        "late": int(sum(int(row.get("delayed", 0) or 0) for row in trace)),
    }


def node_stats_summary(node_stats: Mapping[str, Sequence[int]]) -> Dict[str, object]:
    """Compact reading of per-node (receiver-attributed) delivery counters.

    ``node_stats`` maps counter name to an ``(n,)`` list — the batch
    message plane's per-node resolution of the aggregate counters.
    Returns the number of nodes, per-counter totals (these equal the
    aggregate ``network_stats`` by construction), and the identity and
    delivery rate of the worst-served node — the reading that matters
    when a crash window or biased link loss starves *one* receiver while
    the aggregate rate still looks healthy.
    """
    totals = {name: int(sum(values)) for name, values in node_stats.items()}
    nodes = max((len(values) for values in node_stats.values()), default=0)
    summary: Dict[str, object] = {"nodes": nodes, "totals": totals}
    sent = node_stats.get("sent")
    delivered = node_stats.get("delivered")
    if sent and delivered and len(sent) == len(delivered):
        rates = [
            (float(d) / float(s)) if s > 0 else float("nan")
            for s, d in zip(sent, delivered)
        ]
        finite = [(rate, node) for node, rate in enumerate(rates) if not math.isnan(rate)]
        if finite:
            worst_rate, worst_node = min(finite)
            summary["worst_node"] = int(worst_node)
            summary["worst_node_deliv"] = float(worst_rate)
    return summary


def topology_delivery_summary(
    topology, node_stats: Optional[Mapping[str, Sequence[int]]] = None
) -> Dict[str, object]:
    """Per-topology delivery reading for sweep rows and reports.

    ``topology`` is a :class:`repro.network.topology.Topology`; the
    returned dictionary starts from its structural ``summary()`` (name,
    edge count, degree statistics).  When the cell recorded per-node
    counters (``node_trace=True``), they are re-read *against the
    graph*: each node's delivered count is normalised by its closed
    degree (the number of links addressed to it per sub-round), so a
    starved low-degree node is visible even when the aggregate delivery
    rate looks healthy.
    """
    summary: Dict[str, object] = dict(topology.summary())
    if not node_stats:
        return summary
    delivered = node_stats.get("delivered")
    if delivered and len(delivered) == topology.n:
        closed = [int(d) + 1 for d in topology.degrees]
        per_link = [float(d) / c for d, c in zip(delivered, closed)]
        worst = min(range(topology.n), key=lambda node: per_link[node])
        summary["delivered_per_link"] = {
            "min": min(per_link),
            "mean": sum(per_link) / len(per_link),
            "max": max(per_link),
        }
        summary["worst_node"] = int(worst)
    return summary


def format_percent(value: object, width: int = 7) -> str:
    """Fixed-width rendering of a ``[0, 1]`` ratio as a percentage.

    The single NaN-aware formatter shared by the sweep summary table,
    the ``repro analyze`` tables and the CLI delivery summaries: ``None``
    (a non-finite value sanitised away by the strict-JSON writer) and
    ``NaN`` (nothing was sent, so no rate exists) render as ``-`` padded
    to the same width instead of the misaligned ``nan%``.
    """
    from repro.io.results import metric_from_json

    number = metric_from_json(value) if not isinstance(value, float) else value
    if math.isnan(number):
        return f"{'-':>{width}s}"
    return f"{100.0 * number:>{width - 1}.1f}%"


def comparison_table(
    histories: Mapping[str, TrainingHistory], *, num_classes: int = 10
) -> str:
    """Plain-text comparison table: one row per algorithm.

    Columns: final accuracy, best accuracy, smoothed final accuracy and
    the qualitative classification (converging / unstable / diverging /
    stagnant) used to compare against the paper's description.
    """
    header = (
        f"{'label':<14s} {'final':>7s} {'best':>7s} {'smoothed':>9s} {'verdict':>12s}"
    )
    lines = [header, "-" * len(header)]
    for record in histories_to_records(histories, num_classes=num_classes):
        lines.append(
            f"{str(record['label']):<14s} {record['final_accuracy']:>7.3f} "
            f"{record['best_accuracy']:>7.3f} {record['smoothed_final_accuracy']:>9.3f} "
            f"{str(record['classification']):>12s}"
        )
    return "\n".join(lines)


def _recover_axis_names(rows: Sequence[Mapping[str, object]]) -> List[str]:
    """Axis column names (and order) for a batch of sweep rows.

    The row's ``"axes"`` mapping is authoritative for the *names* —
    splitting the cell id would mis-parse legacy ids whose values embed
    raw ``/`` or ``=`` (values are escaped since the cell-id escaping
    fix, but archived rows predate it).  The cell id is only consulted
    to restore the grid's axis *order*, which a sorted-keys JSONL round
    trip loses, and only when it parses to exactly the axes mapping's
    names.
    """
    axes = next(
        (row["axes"] for row in rows if isinstance(row.get("axes"), Mapping)), None
    )
    cell_id = rows[0].get("cell_id")
    parsed: Optional[List[str]] = None
    if isinstance(cell_id, str) and "=" in cell_id:
        from repro.sweep.grid import parse_cell_id

        parsed = list(parse_cell_id(cell_id))
    if axes is None:
        return parsed or []
    if parsed is not None and set(parsed) == set(axes) and len(parsed) == len(axes):
        return parsed
    return list(axes)


def sweep_summary_table(
    rows: Sequence[Mapping[str, object]],
    *,
    axis_names: Optional[Sequence[str]] = None,
) -> str:
    """Plain-text summary of a sweep: one row per scenario cell.

    ``rows`` are the JSONL rows produced by
    :class:`repro.sweep.runner.SweepRunner` (or a subset of them); the
    axis columns come from each row's ``"axes"`` mapping, followed by
    the final/best accuracy of the cell.  ``axis_names`` pins the column
    order (pass the grid's ``axis_names()`` when the spec is at hand);
    otherwise the order is recovered from the first row's cell id where
    unambiguous, falling back to the ``"axes"`` mapping's sorted order.
    """
    if not rows:
        return "(no sweep rows)"
    axis_names = (
        list(axis_names) if axis_names is not None else _recover_axis_names(rows)
    )
    # Rows written before an axis existed render '-' (not an invisible
    # blank) in that column — e.g. pre-``rng_mode`` archives.
    widths = {
        name: max(len(name), *(len(str(row["axes"].get(name, "-"))) for row in rows))
        for name in axis_names
    }
    # Cells run on non-synchronous schedulers carry their delivery
    # counters; surface the delivery rate when any cell has one, and the
    # per-round trace columns (worst round, late messages) when any cell
    # recorded a trace.
    with_network = any(
        isinstance(row.get("summary", {}).get("network"), dict) for row in rows
    )
    with_trace = any(
        isinstance(row.get("summary", {}).get("trace"), dict) for row in rows
    )
    header = " ".join(f"{name:<{widths[name]}s}" for name in axis_names)
    header += f" {'final':>7s} {'best':>7s} {'rounds':>7s}"
    if with_network:
        header += f" {'deliv%':>7s}"
    if with_trace:
        header += f" {'wrst%':>7s} {'late':>6s}"
    lines = [header, "-" * len(header)]
    from repro.io.results import metric_from_json

    for row in sorted(rows, key=lambda r: r.get("index", 0)):
        summary = row.get("summary", {})
        cols = " ".join(
            f"{str(row['axes'].get(name, '-')):<{widths[name]}s}" for name in axis_names
        )
        if "error" in row:
            # A cell that kept raising streamed an error row in place of
            # a result; keep it visible instead of faking metrics (and
            # pad every optional column so the table stays aligned).
            error = row["error"] if isinstance(row["error"], dict) else {}
            line = f"{cols} {'-':>7s} {'-':>7s} {'-':>7s}"
            if with_network:
                line += f" {'-':>7s}"
            if with_trace:
                line += f" {'-':>7s} {'-':>6s}"
            lines.append(
                f"{line}  FAILED ({error.get('exception', 'unknown error')})"
            )
            continue
        line = (
            f"{cols} {metric_from_json(summary.get('final_accuracy')):>7.3f} "
            f"{metric_from_json(summary.get('best_accuracy')):>7.3f} "
            f"{int(summary.get('rounds', 0)):>7d}"
        )
        if with_network:
            network = summary.get("network")
            if isinstance(network, dict):
                line += f" {format_percent(delivery_rate(network))}"
            else:
                line += f" {'-':>7s}"
        if with_trace:
            trace = summary.get("trace")
            if isinstance(trace, dict):
                # A zero-sent cell has no rate: worst_deliv is NaN
                # (nulled by the strict-JSON writer), rendered '-'.
                line += (
                    f" {format_percent(trace.get('worst_deliv'))}"
                    f" {int(trace.get('late', 0)):>6d}"
                )
            else:
                line += f" {'-':>7s} {'-':>6s}"
        lines.append(line)
    return "\n".join(lines)
