"""Tabular reporting of experiment results.

Turns a collection of :class:`~repro.learning.history.TrainingHistory`
objects into plain-text tables and serialisable records — the format
the benchmark harness prints and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.analysis.traces import summarize_history
from repro.learning.history import TrainingHistory


def histories_to_records(
    histories: Mapping[str, TrainingHistory], *, num_classes: int = 10
) -> List[Dict[str, object]]:
    """One serialisable record per labelled history (for JSON export)."""
    records: List[Dict[str, object]] = []
    for label, history in histories.items():
        summary = summarize_history(history, num_classes=num_classes)
        record = dict(history.summary())
        record.update(
            {
                "label": label,
                "smoothed_final_accuracy": summary.smoothed_final,
                "classification": summary.classification,
                "above_chance": summary.above_chance,
            }
        )
        if history.network_stats:
            record["network_stats"] = dict(history.network_stats)
            record["delivery_rate"] = delivery_rate(history.network_stats)
        if history.delivery_trace:
            record["delivery_trace_summary"] = delivery_trace_summary(
                history.delivery_trace
            )
        records.append(record)
    return records


def delivery_rate(stats: Mapping[str, object]) -> float:
    """Fraction of sent messages that were eventually delivered.

    ``stats`` is a round engine's counter mapping (``sent`` /
    ``delivered`` / ...).  Returns ``nan`` when nothing was sent.
    """
    sent = float(stats.get("sent", 0) or 0)
    if sent <= 0:
        return float("nan")
    return float(stats.get("delivered", 0) or 0) / sent


def delivery_trace_summary(trace: Sequence[Mapping[str, int]]) -> Dict[str, object]:
    """Compact reading of a per-round delivery trace.

    Returns ``rounds`` (trace length), ``worst_deliv`` (the worst
    per-round delivered/sent ratio over rounds that sent anything — the
    depth of the worst burst or crash window) and ``late`` (total
    messages that missed their send round).  This is what the sweep
    summary table renders next to the cumulative ``deliv%``.
    """
    per_round = [
        delivery_rate(row) for row in trace if int(row.get("sent", 0) or 0) > 0
    ]
    return {
        "rounds": len(trace),
        "worst_deliv": min(per_round) if per_round else float("nan"),
        "late": int(sum(int(row.get("delayed", 0) or 0) for row in trace)),
    }


def comparison_table(
    histories: Mapping[str, TrainingHistory], *, num_classes: int = 10
) -> str:
    """Plain-text comparison table: one row per algorithm.

    Columns: final accuracy, best accuracy, smoothed final accuracy and
    the qualitative classification (converging / unstable / diverging /
    stagnant) used to compare against the paper's description.
    """
    header = (
        f"{'label':<14s} {'final':>7s} {'best':>7s} {'smoothed':>9s} {'verdict':>12s}"
    )
    lines = [header, "-" * len(header)]
    for record in histories_to_records(histories, num_classes=num_classes):
        lines.append(
            f"{str(record['label']):<14s} {record['final_accuracy']:>7.3f} "
            f"{record['best_accuracy']:>7.3f} {record['smoothed_final_accuracy']:>9.3f} "
            f"{str(record['classification']):>12s}"
        )
    return "\n".join(lines)


def sweep_summary_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Plain-text summary of a sweep: one row per scenario cell.

    ``rows`` are the JSONL rows produced by
    :class:`repro.sweep.runner.SweepRunner` (or a subset of them); the
    axis columns come from each row's ``"axes"`` mapping, followed by
    the final/best accuracy of the cell.
    """
    if not rows:
        return "(no sweep rows)"
    # Column order follows the grid's axis order.  The cell id encodes
    # it ("het=a/rule=b"); the axes mapping does not survive a JSONL
    # round trip order-intact (rows are dumped with sorted keys).
    cell_id = rows[0].get("cell_id")
    if isinstance(cell_id, str) and "=" in cell_id:
        axis_names = [part.split("=", 1)[0] for part in cell_id.split("/")]
    else:
        axis_names = list(rows[0].get("axes", {}))
    widths = {
        name: max(len(name), *(len(str(row["axes"].get(name, ""))) for row in rows))
        for name in axis_names
    }
    # Cells run on non-synchronous schedulers carry their delivery
    # counters; surface the delivery rate when any cell has one, and the
    # per-round trace columns (worst round, late messages) when any cell
    # recorded a trace.
    with_network = any(
        isinstance(row.get("summary", {}).get("network"), dict) for row in rows
    )
    with_trace = any(
        isinstance(row.get("summary", {}).get("trace"), dict) for row in rows
    )
    header = " ".join(f"{name:<{widths[name]}s}" for name in axis_names)
    header += f" {'final':>7s} {'best':>7s} {'rounds':>7s}"
    if with_network:
        header += f" {'deliv%':>7s}"
    if with_trace:
        header += f" {'wrst%':>7s} {'late':>6s}"
    lines = [header, "-" * len(header)]
    from repro.io.results import metric_from_json

    for row in sorted(rows, key=lambda r: r.get("index", 0)):
        summary = row.get("summary", {})
        cols = " ".join(
            f"{str(row['axes'].get(name, '')):<{widths[name]}s}" for name in axis_names
        )
        if "error" in row:
            # A cell that kept raising streamed an error row in place of
            # a result; keep it visible instead of faking metrics (and
            # pad every optional column so the table stays aligned).
            error = row["error"] if isinstance(row["error"], dict) else {}
            line = f"{cols} {'-':>7s} {'-':>7s} {'-':>7s}"
            if with_network:
                line += f" {'-':>7s}"
            if with_trace:
                line += f" {'-':>7s} {'-':>6s}"
            lines.append(
                f"{line}  FAILED ({error.get('exception', 'unknown error')})"
            )
            continue
        line = (
            f"{cols} {metric_from_json(summary.get('final_accuracy')):>7.3f} "
            f"{metric_from_json(summary.get('best_accuracy')):>7.3f} "
            f"{int(summary.get('rounds', 0)):>7d}"
        )
        if with_network:
            network = summary.get("network")
            if isinstance(network, dict):
                line += f" {100.0 * delivery_rate(network):>6.1f}%"
            else:
                line += f" {'-':>7s}"
        if with_trace:
            trace = summary.get("trace")
            if isinstance(trace, dict):
                worst = metric_from_json(trace.get("worst_deliv"))
                line += f" {100.0 * worst:>6.1f}% {int(trace.get('late', 0)):>6d}"
            else:
                line += f" {'-':>7s} {'-':>6s}"
        lines.append(line)
    return "\n".join(lines)
