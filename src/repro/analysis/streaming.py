"""Constant-memory streaming analysis of sweep row files.

The fleet machinery (``repro.sweep``) streams millions of JSONL rows;
this module is the consumer that never needs them resident at once.
:func:`analyze_sweep_rows` makes **one pass** over a row iterable (or a
path, streamed line by line through :func:`repro.io.jsonl.iter_jsonl`)
and folds every row into bounded state:

- **group-by** over axis columns with streaming Welford mean/variance
  plus min/max per metric (:class:`StreamingMoments` — the numerically
  stable single-pass recurrence, so a billion-row file needs no second
  pass and no sorting);
- **classification counts** per group (converging / unstable /
  diverging / stagnant via :func:`repro.analysis.traces.classify_trace`
  over each row's embedded accuracy trace);
- **per-round accuracy curves** and **delivery-trace heatmap cells**
  (round × group accumulators bounded by the round budget, the data
  behind the paper-figure reproductions in
  :mod:`repro.analysis.figures`);
- **error rows tallied, never trusted**: a failed cell contributes to
  its group's ``failed`` count and to the capped failure listing, and
  to nothing else.

Memory is O(groups × rounds + metrics), independent of the row count —
the property the slow-marked RSS test in
``tests/test_analysis_streaming.py`` pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.io.jsonl import iter_jsonl
from repro.io.results import metric_from_json
from repro.utils.logging import get_logger

_logger = get_logger("analysis.streaming")

PathLike = Union[str, Path]

#: Metrics folded into every group, in table-column order: the row
#: summary key they come from and how they render.
SUMMARY_METRICS: Tuple[str, ...] = (
    "final_accuracy",
    "best_accuracy",
    "final_loss",
    "rounds",
)

#: Hard ceiling on retained per-round accumulators (curves and delivery
#: heatmaps).  Rounds beyond it are *counted* (``truncated_rounds``) but
#: not retained, so a pathological million-round history cannot defeat
#: the constant-memory guarantee.  Generous next to any real round
#: budget in this repo.
MAX_TRACKED_ROUNDS = 2048

#: How many failed cells the analysis retains verbatim (id + exception);
#: the total is always exact, the listing is capped.
MAX_FAILURE_DETAILS = 50


class StreamingMoments:
    """Single-pass mean / variance / min / max (Welford's recurrence).

    Non-finite updates (``NaN`` from a zero-sent delivery rate, ``None``
    sanitised by the strict-JSON writer) are counted in ``skipped`` and
    excluded from the moments, so one diverged cell cannot poison a
    group mean.
    """

    __slots__ = ("count", "skipped", "mean", "_m2", "minimum", "maximum", "total")

    def __init__(self) -> None:
        self.count = 0
        self.skipped = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def update(self, value: object) -> None:
        number = metric_from_json(value) if not isinstance(value, float) else value
        if not math.isfinite(number):
            self.skipped += 1
            return
        self.count += 1
        self.total += number
        delta = number - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (number - self.mean)
        self.minimum = min(self.minimum, number)
        self.maximum = max(self.maximum, number)

    @property
    def variance(self) -> float:
        """Population variance (0 for a single observation, NaN when empty)."""
        if self.count == 0:
            return float("nan")
        return self._m2 / self.count

    @property
    def std(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if math.isfinite(variance) else float("nan")

    def to_json(self) -> dict:
        """JSON-safe summary (non-finite values appear as ``None``)."""

        def safe(number: float) -> Optional[float]:
            return number if math.isfinite(number) else None

        return {
            "count": self.count,
            "skipped": self.skipped,
            "mean": safe(self.mean) if self.count else None,
            "std": safe(self.std),
            "min": safe(self.minimum) if self.count else None,
            "max": safe(self.maximum) if self.count else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingMoments(count={self.count}, mean={self.mean:.4g}, "
            f"std={self.std:.4g})"
        )


class RoundAccumulator:
    """Per-round streaming stats, bounded by :data:`MAX_TRACKED_ROUNDS`.

    One :class:`StreamingMoments` per round index plus an optional
    per-round minimum tracker — the backing store for accuracy curves
    (mean accuracy per round across a group's cells) and delivery
    heatmaps (worst per-round delivery across a group's cells).
    """

    __slots__ = ("moments", "truncated_rounds")

    def __init__(self) -> None:
        self.moments: List[StreamingMoments] = []
        self.truncated_rounds = 0

    def update(self, round_index: int, value: object) -> None:
        if round_index < 0:
            return
        if round_index >= MAX_TRACKED_ROUNDS:
            self.truncated_rounds += 1
            return
        while len(self.moments) <= round_index:
            self.moments.append(StreamingMoments())
        self.moments[round_index].update(value)

    @property
    def rounds(self) -> int:
        return len(self.moments)

    def series(self, stat: str = "mean") -> List[float]:
        """One value per round: ``mean``, ``min`` or ``max``."""
        if stat == "mean":
            return [
                m.mean if m.count else float("nan") for m in self.moments
            ]
        if stat == "min":
            return [
                m.minimum if m.count else float("nan") for m in self.moments
            ]
        if stat == "max":
            return [
                m.maximum if m.count else float("nan") for m in self.moments
            ]
        raise ValueError(f"unknown series stat {stat!r}")


#: A group key: the group-by axis values rendered as strings, in
#: group-by order — hashable, deterministic, JSON-safe.
GroupKey = Tuple[str, ...]


@dataclass
class GroupStats:
    """Everything the analysis accumulates for one axis-value group."""

    key: GroupKey
    cells: int = 0
    failed: int = 0
    metrics: Dict[str, StreamingMoments] = field(default_factory=dict)
    #: delivery_rate / worst_deliv / late from summary.network + .trace.
    delivery: Dict[str, StreamingMoments] = field(default_factory=dict)
    classifications: Dict[str, int] = field(default_factory=dict)
    #: Mean accuracy per round across the group's cells.
    accuracy_curve: RoundAccumulator = field(default_factory=RoundAccumulator)
    #: Worst per-round delivery rate across the group's cells (heatmap).
    round_delivery: RoundAccumulator = field(default_factory=RoundAccumulator)
    #: Late (delayed) messages per round, summed across cells (heatmap).
    round_late: RoundAccumulator = field(default_factory=RoundAccumulator)

    def metric(self, name: str) -> StreamingMoments:
        if name not in self.metrics:
            self.metrics[name] = StreamingMoments()
        return self.metrics[name]

    def delivery_metric(self, name: str) -> StreamingMoments:
        if name not in self.delivery:
            self.delivery[name] = StreamingMoments()
        return self.delivery[name]

    def to_json(self) -> dict:
        data = {
            "key": list(self.key),
            "cells": self.cells,
            "failed": self.failed,
            "metrics": {
                name: moments.to_json() for name, moments in self.metrics.items()
            },
        }
        if self.delivery:
            data["delivery"] = {
                name: moments.to_json() for name, moments in self.delivery.items()
            }
        if self.classifications:
            data["classifications"] = dict(sorted(self.classifications.items()))
        return data


@dataclass
class SweepAnalysis:
    """The bounded result of one streaming pass over a sweep file."""

    group_by: List[str]
    axis_names: List[str]
    rows_read: int = 0
    cells: int = 0
    failed: int = 0
    stale_rows: int = 0
    #: Insertion-ordered (first-seen == grid order for canonical files).
    groups: Dict[GroupKey, GroupStats] = field(default_factory=dict)
    #: Capped listing of (cell_id, exception) pairs; ``failed`` is exact.
    failures: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def has_delivery(self) -> bool:
        return any(group.delivery for group in self.groups.values())

    @property
    def has_trace(self) -> bool:
        return any(group.round_delivery.rounds for group in self.groups.values())

    def group_label(self, key: GroupKey) -> str:
        return "/".join(
            f"{name}={value}" for name, value in zip(self.group_by, key)
        ) or "(all)"

    def to_json(self) -> dict:
        """Deterministic JSON-safe form (the ``--format json`` payload)."""
        return {
            "group_by": list(self.group_by),
            "axis_names": list(self.axis_names),
            "rows_read": self.rows_read,
            "cells": self.cells,
            "failed": self.failed,
            "stale_rows": self.stale_rows,
            "groups": [group.to_json() for group in self.groups.values()],
            "failures": [
                {"cell_id": cell_id, "exception": exception}
                for cell_id, exception in self.failures
            ],
        }


def _row_schema_current(row: Mapping[str, object]) -> bool:
    from repro.sweep.executors import ROW_SCHEMA_VERSION

    return row.get("schema") == ROW_SCHEMA_VERSION


def _group_key(
    axes: Mapping[str, object], group_by: Sequence[str]
) -> GroupKey:
    # A row written before an axis existed (e.g. pre-``rng_mode`` rows)
    # has no value for it; render '-' rather than an invisible blank so
    # the group label stays readable.
    return tuple(str(axes[name]) if name in axes else "-" for name in group_by)


def _classify_row(history: Mapping[str, object]) -> Optional[str]:
    """Classification of a row's embedded accuracy trace, if readable."""
    from repro.analysis.traces import classify_trace

    records = history.get("records")
    if not isinstance(records, list) or not records:
        return None
    accuracies = [
        metric_from_json(record.get("accuracy"))
        for record in records
        if isinstance(record, Mapping)
    ]
    accuracies = [a for a in accuracies if math.isfinite(a)]
    if not accuracies:
        return None
    return classify_trace(accuracies)


def analyze_sweep_rows(
    rows: Union[PathLike, Iterable[dict]],
    *,
    group_by: Optional[Sequence[str]] = None,
    axis_names: Optional[Sequence[str]] = None,
    classify: bool = True,
    curves: bool = True,
) -> SweepAnalysis:
    """One streaming pass over sweep rows → a bounded :class:`SweepAnalysis`.

    Parameters
    ----------
    rows:
        A path to a JSONL file (streamed one line at a time; ``.gz``
        transparently decompressed) or any iterable of row dicts.
    group_by:
        Axis names to aggregate over.  Defaults to every axis (each
        group is then one cell — still bounded by the grid size, not the
        row count, since duplicate/stale rows collapse).
    axis_names:
        The grid's axis order, when the spec is at hand
        (``ScenarioGrid.axis_names()``); otherwise recovered from the
        first row (cell-id order where unambiguous, sorted otherwise).
    classify:
        Label each cell's accuracy trace (converging / unstable /
        diverging / stagnant) from its embedded history.  Costs one
        O(rounds) pass per row; disable for metric-only scans.
    curves:
        Accumulate per-round accuracy curves and delivery heatmap cells
        from the embedded history (bounded by
        :data:`MAX_TRACKED_ROUNDS`); disable for summary-only scans.

    Rows from another schema version are counted in ``stale_rows`` and
    skipped (their metrics cannot be trusted); error rows are tallied
    per group and listed (capped) but contribute to no metric.
    """
    if isinstance(rows, (str, Path)):
        rows = iter_jsonl(rows)

    analysis = SweepAnalysis(
        group_by=list(group_by) if group_by is not None else [],
        axis_names=list(axis_names) if axis_names is not None else [],
    )
    resolved_group_by = list(group_by) if group_by is not None else None

    for row in rows:
        analysis.rows_read += 1
        if not isinstance(row, Mapping) or not _row_schema_current(row):
            analysis.stale_rows += 1
            continue
        axes = row.get("axes")
        if not isinstance(axes, Mapping):
            analysis.stale_rows += 1
            continue
        if not analysis.axis_names:
            analysis.axis_names = _first_row_axis_order(row, axes)
        if resolved_group_by is None:
            resolved_group_by = list(analysis.axis_names)
            analysis.group_by = list(resolved_group_by)
        # A group-by name absent from this row's axes is only an error
        # when it is not a config field at all — a row written before an
        # axis existed (a sweep predating ``rng_mode``, say) groups
        # under the '-' placeholder instead of aborting the whole pass.
        unknown = [name for name in resolved_group_by if name not in axes]
        if unknown:
            from repro.sweep.grid import CONFIG_FIELDS

            bogus = [name for name in unknown if name not in CONFIG_FIELDS]
            if bogus:
                raise ValueError(
                    f"group-by axis {bogus[0]!r} is not an axis of row "
                    f"{row.get('cell_id')!r}; available: {sorted(axes)}"
                )

        key = _group_key(axes, resolved_group_by)
        group = analysis.groups.get(key)
        if group is None:
            group = analysis.groups[key] = GroupStats(key=key)
        analysis.cells += 1
        group.cells += 1

        if "error" in row:
            analysis.failed += 1
            group.failed += 1
            error = row["error"] if isinstance(row["error"], Mapping) else {}
            if len(analysis.failures) < MAX_FAILURE_DETAILS:
                analysis.failures.append(
                    (
                        str(row.get("cell_id", "?")),
                        str(error.get("exception", "unknown error")),
                    )
                )
            continue

        summary = row.get("summary")
        summary = summary if isinstance(summary, Mapping) else {}
        for name in SUMMARY_METRICS:
            if name in summary:
                group.metric(name).update(summary.get(name))
        network = summary.get("network")
        if isinstance(network, Mapping):
            from repro.analysis.reporting import delivery_rate

            group.delivery_metric("delivery_rate").update(delivery_rate(network))
        trace = summary.get("trace")
        if isinstance(trace, Mapping):
            group.delivery_metric("worst_deliv").update(trace.get("worst_deliv"))
            group.delivery_metric("late").update(float(trace.get("late", 0) or 0))

        history = row.get("history")
        history = history if isinstance(history, Mapping) else {}
        if classify:
            label = _classify_row(history)
            if label is not None:
                group.classifications[label] = (
                    group.classifications.get(label, 0) + 1
                )
        if curves:
            _accumulate_curves(group, history)

    if resolved_group_by is not None:
        analysis.group_by = list(resolved_group_by)
    _warn_on_truncation(analysis)
    return analysis


def _first_row_axis_order(
    row: Mapping[str, object], axes: Mapping[str, object]
) -> List[str]:
    """Grid axis order recovered from the first row (see reporting)."""
    from repro.analysis.reporting import _recover_axis_names

    return _recover_axis_names([dict(row, axes=dict(axes))])


def _accumulate_curves(group: GroupStats, history: Mapping[str, object]) -> None:
    records = history.get("records")
    if isinstance(records, list):
        for position, record in enumerate(records):
            if not isinstance(record, Mapping):
                continue
            index = record.get("round_index")
            index = index if isinstance(index, int) else position
            group.accuracy_curve.update(index, record.get("accuracy"))
    trace = history.get("delivery_trace")
    if isinstance(trace, list):
        # Engine trace rounds are a monotone wall-clock count across
        # exchanges; re-base on the first entry so heatmap columns line
        # up with training rounds.
        base: Optional[int] = None
        for position, entry in enumerate(trace):
            if not isinstance(entry, Mapping):
                continue
            round_index = entry.get("round")
            round_index = round_index if isinstance(round_index, int) else position
            if base is None:
                base = round_index
            column = round_index - base
            sent = int(entry.get("sent", 0) or 0)
            if sent > 0:
                delivered = int(entry.get("delivered", 0) or 0)
                group.round_delivery.update(column, delivered / sent)
            group.round_late.update(
                column, float(int(entry.get("delayed", 0) or 0))
            )


def _warn_on_truncation(analysis: SweepAnalysis) -> None:
    truncated = sum(
        accumulator.truncated_rounds
        for group in analysis.groups.values()
        for accumulator in (
            group.accuracy_curve, group.round_delivery, group.round_late,
        )
    )
    if truncated:
        # No silent caps: per-round accumulators stop at
        # MAX_TRACKED_ROUNDS, so a longer history is partially rendered.
        _logger.warning(
            "per-round accumulation truncated %d update(s) beyond round %d; "
            "curves and heatmaps cover the first %d rounds only",
            truncated, MAX_TRACKED_ROUNDS, MAX_TRACKED_ROUNDS,
        )


def analysis_table(analysis: SweepAnalysis) -> str:
    """Plain-text group summary of a :class:`SweepAnalysis`.

    One row per group: cell/failure counts, final-accuracy moments,
    best-accuracy mean, delivery columns when any cell carried them
    (rendered through the shared NaN-aware
    :func:`repro.analysis.reporting.format_percent`) and the
    classification tally.
    """
    from repro.analysis.reporting import format_percent

    if not analysis.groups:
        return "(no sweep rows)"
    labels = {key: analysis.group_label(key) for key in analysis.groups}
    label_width = max(len("group"), *(len(label) for label in labels.values()))
    header = (
        f"{'group':<{label_width}s} {'cells':>5s} {'fail':>4s} "
        f"{'final':>7s} {'±std':>7s} {'min':>7s} {'max':>7s} {'best':>7s}"
    )
    if analysis.has_delivery:
        header += f" {'deliv%':>7s} {'wrst%':>7s} {'late':>6s}"
    header += "  classes"
    lines = [header, "-" * len(header)]

    def fmt(moments: Optional[StreamingMoments], attribute: str) -> str:
        if moments is None or moments.count == 0:
            return f"{'-':>7s}"
        return f"{getattr(moments, attribute):>7.3f}"

    for key, group in analysis.groups.items():
        final = group.metrics.get("final_accuracy")
        best = group.metrics.get("best_accuracy")
        line = (
            f"{labels[key]:<{label_width}s} {group.cells:>5d} {group.failed:>4d} "
            f"{fmt(final, 'mean')} {fmt(final, 'std')} {fmt(final, 'minimum')} "
            f"{fmt(final, 'maximum')} {fmt(best, 'mean')}"
        )
        if analysis.has_delivery:
            deliv = group.delivery.get("delivery_rate")
            worst = group.delivery.get("worst_deliv")
            late = group.delivery.get("late")
            line += " " + format_percent(
                deliv.mean if deliv and deliv.count else float("nan")
            )
            line += " " + format_percent(
                worst.minimum if worst and worst.count else float("nan")
            )
            late_total = int(round(late.total)) if late and late.count else 0
            line += f" {late_total:>6d}"
        tally = " ".join(
            f"{name}:{count}"
            for name, count in sorted(group.classifications.items())
        )
        line += f"  {tally}" if tally else "  -"
        lines.append(line)
    summary = (
        f"{analysis.cells} cell(s) in {len(analysis.groups)} group(s); "
        f"{analysis.failed} failed"
    )
    if analysis.stale_rows:
        summary += f"; {analysis.stale_rows} stale row(s) skipped"
    lines.append("")
    lines.append(summary)
    return "\n".join(lines)


__all__ = [
    "GroupStats",
    "MAX_FAILURE_DETAILS",
    "MAX_TRACKED_ROUNDS",
    "RoundAccumulator",
    "StreamingMoments",
    "SUMMARY_METRICS",
    "SweepAnalysis",
    "analysis_table",
    "analyze_sweep_rows",
]
