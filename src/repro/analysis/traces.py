"""Accuracy/loss trace statistics.

These functions formalise how we read a training curve:

- :func:`moving_average` smooths the per-round accuracy (single-batch
  stochastic gradients make raw curves noisy),
- :func:`classify_trace` labels a smoothed curve as ``"converging"``,
  ``"diverging"``, ``"stagnant"`` or ``"unstable"``, matching the
  vocabulary the paper uses when describing Figures 2a and 3, and
- :func:`summarize_history` bundles the numbers EXPERIMENTS.md reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.learning.history import TrainingHistory


def moving_average(values: Sequence[float], window: int = 5) -> List[float]:
    """Centered-tail moving average with a warm-up (same length as input)."""
    if window < 1:
        raise ValueError("window must be positive")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return []
    out = np.empty_like(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        out[i] = arr[lo : i + 1].mean()
    return out.tolist()


def relative_gap(a: float, b: float) -> float:
    """Relative difference ``(a - b) / max(|a|, |b|, eps)`` in [-1, 1]-ish."""
    denom = max(abs(a), abs(b), 1e-12)
    return (a - b) / denom


@dataclass(frozen=True)
class TraceSummary:
    """Summary statistics of one accuracy trace."""

    final: float
    best: float
    smoothed_final: float
    chance_level: float
    classification: str

    @property
    def above_chance(self) -> bool:
        """Whether the smoothed final accuracy clearly beats random guessing."""
        return self.smoothed_final > 1.5 * self.chance_level


def classify_trace(
    accuracies: Sequence[float],
    *,
    chance_level: float = 0.1,
    window: int = 5,
    stability_tolerance: float = 0.15,
) -> str:
    """Classify an accuracy trace.

    Returns one of:

    - ``"converging"`` — the smoothed accuracy ends above chance and its
      last quarter does not drop much below its own maximum,
    - ``"unstable"`` — ends above chance but with large swings late in
      training (the paper's description of MD-GEOM in Figures 2a/3b),
    - ``"stagnant"`` — never clearly exceeds chance level,
    - ``"diverging"`` — exceeded chance at some point but ends close to
      (or below) chance again, i.e. the model was destroyed by the
      attack (the paper's description of the mean-based rules under the
      sign flip).
    """
    accs = list(accuracies)
    if not accs:
        raise ValueError("cannot classify an empty trace")
    smooth = moving_average(accs, window=window)
    peak = max(smooth)
    final = smooth[-1]
    above = 1.5 * chance_level
    if peak <= above:
        return "stagnant"
    if final <= above:
        return "diverging"
    # Instability = the curve ends noticeably below its own (recent) peak;
    # a monotone rise is never flagged, no matter how steep.
    tail = smooth[max(0, len(smooth) - max(3, len(smooth) // 4)) :]
    drop_from_recent_peak = (max(tail) - final) / max(peak, 1e-12)
    drop_from_global_peak = (peak - final) / max(peak, 1e-12)
    if drop_from_recent_peak > stability_tolerance or drop_from_global_peak > 2 * stability_tolerance:
        return "unstable"
    return "converging"


def summarize_history(
    history: TrainingHistory, *, num_classes: int = 10, window: int = 5
) -> TraceSummary:
    """Summary of a :class:`TrainingHistory` accuracy trace."""
    accs = history.accuracies()
    if not accs:
        raise ValueError("history has no recorded rounds")
    chance = 1.0 / num_classes
    smooth = moving_average(accs, window=window)
    return TraceSummary(
        final=accs[-1],
        best=max(accs),
        smoothed_final=smooth[-1],
        chance_level=chance,
        classification=classify_trace(accs, chance_level=chance, window=window),
    )
