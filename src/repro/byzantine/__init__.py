"""Byzantine attack models.

Attacks come in two flavours:

- *parameter attacks* (:class:`GradientAttack`): a Byzantine client
  replaces the gradient/vector it shares.  The paper's main attack is
  the sign flip; crash, random noise, magnitude inflation and the
  omniscient "opposite of the honest mean" attack (Blanchard et al.)
  are included for the ablation benchmarks.
- *data poisoning* (:class:`LabelFlipAttack`): the Byzantine client's
  labels are permuted before training, so its *honestly computed*
  gradients are misleading.

Every gradient attack can additionally restrict the recipients of its
broadcast (selective omission), which is the extra power the adversary
uses in the Lemma 4.2 non-convergence construction.  Under schedulers
with a nonzero delivery horizon (see :mod:`repro.engine`) attacks may
also shape *when* their messages arrive via :meth:`GradientAttack.
send_delays` — the timing attacks in :mod:`repro.byzantine.timing`
(withhold-then-rush, selective delay) are built on that hook.
"""

from repro.byzantine.base import AttackContext, GradientAttack
from repro.byzantine.sign_flip import SignFlipAttack
from repro.byzantine.crash import CrashAttack
from repro.byzantine.random_noise import GaussianNoiseAttack, RandomVectorAttack
from repro.byzantine.magnitude import MagnitudeAttack
from repro.byzantine.omniscient import OppositeOfMeanAttack
from repro.byzantine.label_flip import LabelFlipAttack, flip_labels
from repro.byzantine.partition import PartitionAttack, TopologyPartition, partition_cut
from repro.byzantine.timing import (
    AdaptiveDelayAttack,
    SelectiveDelayAttack,
    WithholdThenRushAttack,
)
from repro.byzantine.registry import available_attacks, make_attack, register_attack

__all__ = [
    "AdaptiveDelayAttack",
    "AttackContext",
    "CrashAttack",
    "GaussianNoiseAttack",
    "GradientAttack",
    "LabelFlipAttack",
    "MagnitudeAttack",
    "OppositeOfMeanAttack",
    "PartitionAttack",
    "TopologyPartition",
    "partition_cut",
    "RandomVectorAttack",
    "SelectiveDelayAttack",
    "SignFlipAttack",
    "WithholdThenRushAttack",
    "available_attacks",
    "flip_labels",
    "make_attack",
    "register_attack",
]
