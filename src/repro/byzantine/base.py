"""Attack interface shared by all parameter (gradient) attacks."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

#: How many trailing per-round delivery-trace rows the engine exposes to
#: a rushing adversary through :attr:`AttackContext.delivery_trace`.
#: Adaptive attacks must size their observation windows within it.
DELIVERY_TRACE_WINDOW = 8


@dataclass
class AttackContext:
    """Everything a (rushing) Byzantine node may observe before acting.

    Attributes
    ----------
    node:
        Id of the attacking node.
    round_index:
        Current synchronous round (or learning iteration for the
        centralized setting, where there is a single exchange per round).
    own_vector:
        The gradient the Byzantine node would have sent had it been
        honest (computed from its local data).  ``None`` if the node has
        no local computation (pure injector).
    honest_vectors:
        Mapping from honest node id to the vector it broadcasts this
        round.  The standard Byzantine model allows a rushing adversary
        to see these before choosing its message.
    rng:
        Generator dedicated to the adversary, so attack randomness does
        not perturb the honest nodes' streams.
    horizon:
        The scheduler's delivery horizon: the largest number of rounds a
        message may lag behind its send round.  ``0`` under the
        synchronous scheduler — timing attacks inspect this to know how
        much slack the network gives them.
    delivery_trace:
        Tail of the engine's per-round delivery trace (most recent
        last, at most :data:`DELIVERY_TRACE_WINDOW` rows): sparse
        ``{"round", "sent", "delivered", "delayed", ...}`` counter
        deltas.  Empty under schedulers that record no stats.  This is
        what *adaptive* timing attacks observe — how well fed the
        honest inboxes have recently been.
    """

    node: int
    round_index: int
    own_vector: Optional[np.ndarray]
    honest_vectors: Dict[int, np.ndarray] = field(default_factory=dict)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    horizon: int = 0
    delivery_trace: Tuple[Mapping[str, int], ...] = ()

    @property
    def dimension(self) -> int:
        """Dimension of the exchanged vectors."""
        if self.own_vector is not None:
            return int(np.asarray(self.own_vector).reshape(-1).shape[0])
        for vec in self.honest_vectors.values():
            return int(np.asarray(vec).reshape(-1).shape[0])
        raise ValueError("attack context has no vectors to infer the dimension from")

    def honest_matrix(self) -> np.ndarray:
        """Honest vectors stacked as an ``(h, d)`` matrix (sorted by node id)."""
        if not self.honest_vectors:
            raise ValueError("no honest vectors available in this context")
        return np.stack(
            [np.asarray(self.honest_vectors[i], dtype=np.float64).reshape(-1)
             for i in sorted(self.honest_vectors)],
            axis=0,
        )


class GradientAttack(abc.ABC):
    """A parameter-modification attack.

    Sub-classes override :meth:`corrupt`; returning ``None`` means the
    Byzantine node stays silent this round (crash / omission).  The
    optional :meth:`recipients` hook restricts which nodes deliver the
    message (``None`` = everyone), enabling split-brain constructions.
    """

    #: Registry / reporting name.
    name: str = "attack"

    @abc.abstractmethod
    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        """Return the vector to broadcast, or ``None`` to stay silent."""
        raise NotImplementedError

    def recipients(self, context: AttackContext) -> Optional[frozenset[int]]:
        """Which nodes deliver the Byzantine message (``None`` = all)."""
        return None

    def send_delays(self, context: AttackContext) -> Optional[Dict[int, int]]:
        """Per-receiver extra rounds to hold this message back.

        ``None`` (default) leaves timing to the scheduler.  Only honoured
        by schedulers with a nonzero delivery horizon
        (``context.horizon``); requested lags are capped there.  This is
        the hook timing attacks (withhold-then-rush, selective delay)
        use to turn asynchrony into adversarial power.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
