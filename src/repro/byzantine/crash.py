"""Crash-failure attack: the faulty node stops sending messages."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack


class CrashAttack(GradientAttack):
    """Silent failure from a configurable round onwards.

    ``crash_round=0`` (default) means the node never sends anything; a
    positive value lets it behave honestly for the first rounds and then
    disappear, which exercises the ``m_i >= n - t`` handling of the
    agreement algorithms with *varying* message counts.
    """

    name = "crash"

    def __init__(self, crash_round: int = 0) -> None:
        if crash_round < 0:
            raise ValueError(f"crash_round must be non-negative, got {crash_round}")
        self.crash_round = int(crash_round)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if context.round_index >= self.crash_round:
            return None
        if context.own_vector is None:
            return None
        return np.asarray(context.own_vector, dtype=np.float64).reshape(-1)
