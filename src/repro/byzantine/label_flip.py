"""Label-flipping data-poisoning attack."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack


def flip_labels(labels: np.ndarray, num_classes: int, *, offset: int = 1) -> np.ndarray:
    """Map every label ``y`` to ``(y + offset) mod num_classes``.

    ``offset=1`` is the classic rotation flip; ``offset=num_classes-1``
    reverses the rotation.  The input array is not modified.
    """
    arr = np.asarray(labels)
    if num_classes < 2:
        raise ValueError("num_classes must be at least 2")
    if offset % num_classes == 0:
        raise ValueError("offset must not be a multiple of num_classes (no-op flip)")
    return (arr + offset) % num_classes


class LabelFlipAttack(GradientAttack):
    """Data-poisoning attack: gradients are computed on flipped labels.

    In the gradient-exchange protocol this attack behaves *honestly* —
    it broadcasts whatever gradient the poisoned local dataset produced —
    so :meth:`corrupt` simply forwards the attacker's own vector.  The
    actual poisoning happens when the experiment builder passes the
    client's labels through :func:`flip_labels` (see
    :meth:`repro.learning.experiment.build_clients`).
    """

    name = "label-flip"

    def __init__(self, offset: int = 1) -> None:
        if offset == 0:
            raise ValueError("offset must be non-zero")
        self.offset = int(offset)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if context.own_vector is None:
            return None
        return np.asarray(context.own_vector, dtype=np.float64).reshape(-1)
