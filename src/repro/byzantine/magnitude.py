"""Magnitude-inflation attack."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack


class MagnitudeAttack(GradientAttack):
    """Scale the honest gradient by a large factor without changing its
    direction.

    Listed in the paper's introduction as one of the non-random
    parameter-modification attacks ("increasing the magnitudes").  It is
    devastating for the plain mean but easy prey for trimming- and
    median-based rules, which makes it a useful ablation point.
    """

    name = "magnitude"

    def __init__(self, factor: float = 100.0) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.factor = float(factor)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if context.own_vector is not None:
            base = np.asarray(context.own_vector, dtype=np.float64).reshape(-1)
        else:
            base = context.honest_matrix().mean(axis=0)
        return self.factor * base
