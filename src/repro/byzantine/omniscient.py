"""Omniscient "opposite of the honest aggregate" attack."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack


class OppositeOfMeanAttack(GradientAttack):
    """Send a large vector opposite to the honest mean.

    Blanchard et al. showed that a single such attacker defeats every
    aggregation rule expressible as a fixed linear combination of the
    inputs: the attacker observes all honest gradients (rushing
    adversary) and proposes ``-lambda * mean(honest)``, dragging the
    linear aggregate to the opposite of the useful direction.
    """

    name = "opposite-mean"

    def __init__(self, strength: float = 10.0) -> None:
        if strength <= 0:
            raise ValueError(f"strength must be positive, got {strength}")
        self.strength = float(strength)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        honest_mean = context.honest_matrix().mean(axis=0)
        return -self.strength * honest_mean
