"""Split-brain / partition attack with selective omission.

This is the adversary of Lemma 4.2: Byzantine nodes echo one of two
honest "poles" and deliver their message only to one half of the honest
nodes, keeping the two halves pinned to different vectors forever and
preventing the MD-GEOM agreement routine from converging.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack


class PartitionAttack(GradientAttack):
    """Echo an extreme honest vector towards a chosen half of the nodes.

    Parameters
    ----------
    group_a, group_b:
        The two sets of honest node ids the adversary tries to keep
        apart.  Byzantine nodes with an even id echo the vector common to
        ``group_a`` and deliver it only to ``group_a`` (and all Byzantine
        nodes); odd-id attackers mirror this for ``group_b``.
    """

    name = "partition"

    def __init__(self, group_a: Sequence[int], group_b: Sequence[int]) -> None:
        if not group_a or not group_b:
            raise ValueError("both partition groups must be non-empty")
        overlap = set(group_a) & set(group_b)
        if overlap:
            raise ValueError(f"partition groups overlap: {sorted(overlap)}")
        self.group_a = tuple(sorted(int(i) for i in group_a))
        self.group_b = tuple(sorted(int(i) for i in group_b))

    def _target_group(self, context: AttackContext) -> tuple[int, ...]:
        return self.group_a if context.node % 2 == 0 else self.group_b

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        group = self._target_group(context)
        vectors = [
            np.asarray(context.honest_vectors[i], dtype=np.float64).reshape(-1)
            for i in group
            if i in context.honest_vectors
        ]
        if not vectors:
            return None
        # Echo the group's common vector (they are identical in the
        # Lemma 4.2 construction; otherwise use their mean).
        return np.mean(np.stack(vectors, axis=0), axis=0)

    def recipients(self, context: AttackContext) -> Optional[frozenset[int]]:
        group = self._target_group(context)
        # Deliver to the target group and to the attacker itself; other
        # honest nodes never see the message this round.
        return frozenset(set(group) | {context.node})
