"""Split-brain / partition attacks: selective omission and edge cuts.

Two compositions of the same idea live here:

- :class:`PartitionAttack` — the adversary of Lemma 4.2: Byzantine
  nodes echo one of two honest "poles" and deliver their message only
  to one half of the honest nodes, keeping the two halves pinned to
  different vectors forever and preventing the MD-GEOM agreement
  routine from converging.
- :class:`TopologyPartition` — the *network-level* partition that
  composes with a sparse :class:`~repro.network.topology.Topology`:
  partitioning is edge removal (cut every link crossing the two
  groups), healing is restoring the original topology.  Applied via
  :meth:`~repro.engine.base.RoundEngine.set_topology`, it works under
  every scheduler and both message planes, and it stacks with the
  Byzantine :class:`PartitionAttack` above (the adversary exploits the
  cut instead of having to manufacture one through omission).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack
from repro.network.topology import Topology


class PartitionAttack(GradientAttack):
    """Echo an extreme honest vector towards a chosen half of the nodes.

    Parameters
    ----------
    group_a, group_b:
        The two sets of honest node ids the adversary tries to keep
        apart.  Byzantine nodes with an even id echo the vector common to
        ``group_a`` and deliver it only to ``group_a`` (and all Byzantine
        nodes); odd-id attackers mirror this for ``group_b``.
    """

    name = "partition"

    def __init__(self, group_a: Sequence[int], group_b: Sequence[int]) -> None:
        if not group_a or not group_b:
            raise ValueError("both partition groups must be non-empty")
        overlap = set(group_a) & set(group_b)
        if overlap:
            raise ValueError(f"partition groups overlap: {sorted(overlap)}")
        self.group_a = tuple(sorted(int(i) for i in group_a))
        self.group_b = tuple(sorted(int(i) for i in group_b))

    def _target_group(self, context: AttackContext) -> tuple[int, ...]:
        return self.group_a if context.node % 2 == 0 else self.group_b

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        group = self._target_group(context)
        vectors = [
            np.asarray(context.honest_vectors[i], dtype=np.float64).reshape(-1)
            for i in group
            if i in context.honest_vectors
        ]
        if not vectors:
            return None
        # Echo the group's common vector (they are identical in the
        # Lemma 4.2 construction; otherwise use their mean).
        return np.mean(np.stack(vectors, axis=0), axis=0)

    def recipients(self, context: AttackContext) -> Optional[frozenset[int]]:
        group = self._target_group(context)
        # Deliver to the target group and to the attacker itself; other
        # honest nodes never see the message this round.
        return frozenset(set(group) | {context.node})


def partition_cut(
    topology: Topology, group_a: Sequence[int], group_b: Sequence[int]
) -> List[Tuple[int, int]]:
    """The edges of ``topology`` crossing ``group_a`` × ``group_b``.

    These are exactly the edges a network partition between the two
    groups removes; nodes in neither group keep all their links.
    """
    a = {int(i) for i in group_a}
    b = {int(i) for i in group_b}
    overlap = a & b
    if overlap:
        raise ValueError(f"partition groups overlap: {sorted(overlap)}")
    for node in a | b:
        if not 0 <= node < topology.n:
            raise ValueError(f"node {node} out of range for n={topology.n}")
    return [
        (u, v)
        for u, v in topology.edges()
        if (u in a and v in b) or (u in b and v in a)
    ]


class TopologyPartition:
    """Network-level partition/heal acting on an engine's topology.

    ``apply`` installs a copy of the engine's current topology with
    every edge between ``group_a`` and ``group_b`` removed; ``heal``
    restores the topology the engine had when the partition was
    applied.  An engine running all-to-all (no topology installed)
    partitions from the complete graph.  The object is reusable:
    apply/heal may be called repeatedly, e.g. from a sweep scenario
    that cuts the network for a window of rounds.
    """

    def __init__(self, group_a: Sequence[int], group_b: Sequence[int]) -> None:
        self.group_a = tuple(sorted({int(i) for i in group_a}))
        self.group_b = tuple(sorted({int(i) for i in group_b}))
        if not self.group_a or not self.group_b:
            raise ValueError("both partition groups must be non-empty")
        if set(self.group_a) & set(self.group_b):
            raise ValueError(
                f"partition groups overlap: {sorted(set(self.group_a) & set(self.group_b))}"
            )
        self._healed: Optional[Topology] = None
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def apply(self, engine) -> Topology:
        """Cut the cross-group edges on ``engine``; returns the cut topology."""
        if self._active:
            raise RuntimeError("partition is already applied; heal it first")
        from repro.network.topology import make_topology

        base = engine.topology
        if base is None:
            base = make_topology("complete", engine.n)
        cut = base.without_edges(partition_cut(base, self.group_a, self.group_b))
        self._healed = engine.topology
        engine.set_topology(cut)
        self._active = True
        return cut

    def heal(self, engine) -> None:
        """Restore the topology the engine had before :meth:`apply`."""
        if not self._active:
            raise RuntimeError("partition is not applied; nothing to heal")
        engine.set_topology(self._healed)
        self._healed = None
        self._active = False
