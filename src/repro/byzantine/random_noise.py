"""Random parameter-modification attacks."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack


class GaussianNoiseAttack(GradientAttack):
    """Add large zero-mean Gaussian noise to the honest gradient.

    ``sigma`` controls the noise scale relative to the norm of the
    attacker's honest gradient (or of the honest mean when the attacker
    has no local gradient), so the attack automatically matches the
    magnitude of real gradients rather than relying on absolute units.
    """

    name = "gaussian-noise"

    def __init__(self, sigma: float = 10.0) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if context.own_vector is not None:
            base = np.asarray(context.own_vector, dtype=np.float64).reshape(-1)
        else:
            base = context.honest_matrix().mean(axis=0)
        scale = self.sigma * max(float(np.linalg.norm(base)), 1e-12) / np.sqrt(base.size)
        return base + context.rng.normal(0.0, scale, size=base.shape)


class RandomVectorAttack(GradientAttack):
    """Replace the gradient by a completely random vector.

    This is the "random modification" attack from the paper's
    introduction: the Byzantine client samples each coordinate uniformly
    in ``[-amplitude, amplitude]``, ignoring its data entirely.
    """

    name = "random-vector"

    def __init__(self, amplitude: float = 1.0) -> None:
        if amplitude <= 0:
            raise ValueError(f"amplitude must be positive, got {amplitude}")
        self.amplitude = float(amplitude)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        d = context.dimension
        return context.rng.uniform(-self.amplitude, self.amplitude, size=d)
