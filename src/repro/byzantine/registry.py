"""Name-based registry of attack models."""

from __future__ import annotations

from typing import Dict, Type

from repro.byzantine.base import GradientAttack
from repro.byzantine.crash import CrashAttack
from repro.byzantine.label_flip import LabelFlipAttack
from repro.byzantine.magnitude import MagnitudeAttack
from repro.byzantine.omniscient import OppositeOfMeanAttack
from repro.byzantine.random_noise import GaussianNoiseAttack, RandomVectorAttack
from repro.byzantine.sign_flip import SignFlipAttack
from repro.byzantine.timing import (
    AdaptiveDelayAttack,
    SelectiveDelayAttack,
    WithholdThenRushAttack,
)

_REGISTRY: Dict[str, Type[GradientAttack]] = {}


def register_attack(name: str, cls: Type[GradientAttack], *, overwrite: bool = False) -> None:
    """Register an attack class under ``name``."""
    key = name.strip().lower()
    if not key:
        raise ValueError("attack name must be non-empty")
    if not overwrite and key in _REGISTRY:
        raise ValueError(f"attack {key!r} is already registered")
    _REGISTRY[key] = cls


def available_attacks() -> list[str]:
    """Sorted list of registered attack names."""
    return sorted(_REGISTRY)


def make_attack(name: str, **kwargs) -> GradientAttack:
    """Instantiate the attack registered under ``name``."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown attack {name!r}; available: {available_attacks()}")
    return _REGISTRY[key](**kwargs)


for _name, _cls in [
    ("sign-flip", SignFlipAttack),
    ("crash", CrashAttack),
    ("gaussian-noise", GaussianNoiseAttack),
    ("random-vector", RandomVectorAttack),
    ("magnitude", MagnitudeAttack),
    ("opposite-mean", OppositeOfMeanAttack),
    ("label-flip", LabelFlipAttack),
    ("withhold-rush", WithholdThenRushAttack),
    ("selective-delay", SelectiveDelayAttack),
    ("adaptive-delay", AdaptiveDelayAttack),
]:
    register_attack(_name, _cls)
