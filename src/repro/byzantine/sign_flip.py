"""Sign-flip attack (the paper's primary attack)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack


class SignFlipAttack(GradientAttack):
    """Send the negated (optionally scaled) local gradient.

    The Byzantine client computes its gradient honestly from its local
    data and then flips the sign before broadcasting, i.e. it pushes the
    model in the ascent direction of its local loss.  El-Mhamdi et al.
    additionally scale the flipped gradient by a multiplicative factor;
    ``scale=1.0`` reproduces the paper's plain sign flip.

    When the attacker has no local gradient (e.g. a pure injector node)
    it falls back to flipping the mean of the honest vectors it observed.
    """

    name = "sign-flip"

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if context.own_vector is not None:
            base = np.asarray(context.own_vector, dtype=np.float64).reshape(-1)
        else:
            base = context.honest_matrix().mean(axis=0)
        return -self.scale * base
