"""Timing-based attacks: adversaries that exploit the scheduler.

Under the synchronous scheduler the adversary's only temporal freedom is
selective omission.  Once the round engine models delays
(:class:`~repro.engine.partial.PartiallySynchronousScheduler`) the
classical asynchronous attacks become expressible:

- :class:`WithholdThenRushAttack` — stay silent while honest nodes
  spread their values, then inject an outlier in the late rounds of the
  exchange, when fewer rounds remain to contract it away;
- :class:`SelectiveDelayAttack` — send a corrupted value *now* to half
  the honest nodes and maximally delayed to the other half, so the two
  halves apply the Byzantine pull in different rounds and their views
  are driven apart.

Both degrade gracefully under the synchronous scheduler (where
``context.horizon == 0``): withhold-then-rush reduces to a crash-then-
sign-flip pattern, selective delay to a plain sign flip.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack


def _honest_mean(context: AttackContext) -> np.ndarray:
    return context.honest_matrix().mean(axis=0)


class WithholdThenRushAttack(GradientAttack):
    """Silence for the opening rounds, then rush an amplified outlier.

    Parameters
    ----------
    withhold_rounds:
        Sub-rounds at the start of every exchange during which the node
        sends nothing (it still observes the honest values).
    scale:
        Magnitude of the late injection: the attack broadcasts
        ``-scale * mean(honest values)``.
    """

    name = "withhold-rush"

    def __init__(self, withhold_rounds: int = 1, scale: float = 4.0) -> None:
        if withhold_rounds < 0:
            raise ValueError(f"withhold_rounds must be non-negative, got {withhold_rounds}")
        self.withhold_rounds = int(withhold_rounds)
        self.scale = float(scale)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if context.round_index < self.withhold_rounds:
            return None
        if not context.honest_vectors:
            return None
        return -self.scale * _honest_mean(context)


class SelectiveDelayAttack(GradientAttack):
    """Split honest views by delivering a corrupted value at two times.

    The higher-id half of the honest nodes receives the message delayed
    by ``min(delay, horizon)`` rounds; the lower half immediately.  With
    ``horizon == 0`` (synchronous scheduler) every delivery is immediate
    and the attack reduces to its payload, a sign-flipped honest mean.
    """

    name = "selective-delay"

    def __init__(self, delay: int = 1, scale: float = 1.0) -> None:
        if delay < 1:
            raise ValueError(f"delay must be positive, got {delay}")
        self.delay = int(delay)
        self.scale = float(scale)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if not context.honest_vectors:
            return None
        return -self.scale * _honest_mean(context)

    def send_delays(self, context: AttackContext) -> Optional[Dict[int, int]]:
        lag = min(self.delay, context.horizon)
        if lag <= 0:
            return None
        honest = sorted(context.honest_vectors)
        half = len(honest) // 2
        # Pin both halves: lag 0 keeps the early half out of the
        # scheduler's own delay lottery, so the two-time split is exact.
        delays = {node: 0 for node in honest[:half]}
        delays.update({node: lag for node in honest[half:]})
        return delays
