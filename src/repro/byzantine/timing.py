"""Timing-based attacks: adversaries that exploit the scheduler.

Under the synchronous scheduler the adversary's only temporal freedom is
selective omission.  Once the round engine models delays
(:class:`~repro.engine.partial.PartiallySynchronousScheduler`) the
classical asynchronous attacks become expressible:

- :class:`WithholdThenRushAttack` — stay silent while honest nodes
  spread their values, then inject an outlier in the late rounds of the
  exchange, when fewer rounds remain to contract it away;
- :class:`SelectiveDelayAttack` — send a corrupted value *now* to half
  the honest nodes and maximally delayed to the other half, so the two
  halves apply the Byzantine pull in different rounds and their views
  are driven apart.
- :class:`AdaptiveDelayAttack` — reacts to the *observed* network: it
  reads the engine's recent per-round delivery trace
  (:attr:`AttackContext.delivery_trace`) and scales its lag with how
  well fed the honest inboxes have been.  A healthy network can absorb
  (and therefore deserves) the maximal delay; an already-starving one is
  attacked immediately so the corrupted value lands in sparse inboxes
  where its relative weight is largest.

All degrade gracefully under the synchronous scheduler (where
``context.horizon == 0``): withhold-then-rush reduces to a crash-then-
sign-flip pattern, the delay attacks to a plain sign flip.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.byzantine.base import (
    DELIVERY_TRACE_WINDOW,
    AttackContext,
    GradientAttack,
)


def _honest_mean(context: AttackContext) -> np.ndarray:
    return context.honest_matrix().mean(axis=0)


class WithholdThenRushAttack(GradientAttack):
    """Silence for the opening rounds, then rush an amplified outlier.

    Parameters
    ----------
    withhold_rounds:
        Sub-rounds at the start of every exchange during which the node
        sends nothing (it still observes the honest values).
    scale:
        Magnitude of the late injection: the attack broadcasts
        ``-scale * mean(honest values)``.
    """

    name = "withhold-rush"

    def __init__(self, withhold_rounds: int = 1, scale: float = 4.0) -> None:
        if withhold_rounds < 0:
            raise ValueError(f"withhold_rounds must be non-negative, got {withhold_rounds}")
        self.withhold_rounds = int(withhold_rounds)
        self.scale = float(scale)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if context.round_index < self.withhold_rounds:
            return None
        if not context.honest_vectors:
            return None
        return -self.scale * _honest_mean(context)


class SelectiveDelayAttack(GradientAttack):
    """Split honest views by delivering a corrupted value at two times.

    The higher-id half of the honest nodes receives the message delayed
    by ``min(delay, horizon)`` rounds; the lower half immediately.  With
    ``horizon == 0`` (synchronous scheduler) every delivery is immediate
    and the attack reduces to its payload, a sign-flipped honest mean.
    """

    name = "selective-delay"

    def __init__(self, delay: int = 1, scale: float = 1.0) -> None:
        if delay < 1:
            raise ValueError(f"delay must be positive, got {delay}")
        self.delay = int(delay)
        self.scale = float(scale)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if not context.honest_vectors:
            return None
        return -self.scale * _honest_mean(context)

    def send_delays(self, context: AttackContext) -> Optional[Dict[int, int]]:
        lag = min(self.delay, context.horizon)
        if lag <= 0:
            return None
        honest = sorted(context.honest_vectors)
        half = len(honest) // 2
        # Pin both halves: lag 0 keeps the early half out of the
        # scheduler's own delay lottery, so the two-time split is exact.
        delays = {node: 0 for node in honest[:half]}
        delays.update({node: lag for node in honest[half:]})
        return delays


class AdaptiveDelayAttack(GradientAttack):
    """Pick the lag from the observed delivery history.

    The attack watches the recent per-round delivery trace the engine
    exposes to rushing adversaries (:attr:`AttackContext.delivery_trace`)
    and estimates the mean honest inbox fill — delivered messages per
    round relative to what was sent.  The healthier the network has
    recently been, the longer the attack holds its corrupted value back
    (up to ``min(max_lag, horizon)``); when inboxes are already starving
    it sends immediately, maximising the corrupted value's relative
    weight in the sparse inboxes.  With no trace yet (round 0, or a
    stats-less scheduler) it falls back to the maximal lag.

    Parameters
    ----------
    max_lag:
        Largest lag the attack ever requests (capped at the horizon).
    window:
        Number of trailing trace rounds the estimate averages over.
        Bounded by :data:`~repro.byzantine.base.DELIVERY_TRACE_WINDOW`,
        the most the engine exposes — a larger window would silently
        behave like the bound, so it is rejected instead.
    scale:
        Payload magnitude: the attack broadcasts
        ``-scale * mean(honest values)``.
    """

    name = "adaptive-delay"

    def __init__(self, max_lag: int = 3, window: int = 4, scale: float = 1.0) -> None:
        if max_lag < 1:
            raise ValueError(f"max_lag must be positive, got {max_lag}")
        if not 1 <= window <= DELIVERY_TRACE_WINDOW:
            raise ValueError(
                f"window must be in [1, {DELIVERY_TRACE_WINDOW}] (the engine exposes "
                f"at most {DELIVERY_TRACE_WINDOW} trace rounds), got {window}"
            )
        self.max_lag = int(max_lag)
        self.window = int(window)
        self.scale = float(scale)

    def corrupt(self, context: AttackContext) -> Optional[np.ndarray]:
        if not context.honest_vectors:
            return None
        return -self.scale * _honest_mean(context)

    def observed_fill(self, context: AttackContext) -> float:
        """Mean delivered/sent ratio over the trailing trace window."""
        recent = context.delivery_trace[-self.window:]
        sent = sum(row.get("sent", 0) for row in recent)
        if sent <= 0:
            return 1.0
        return min(1.0, sum(row.get("delivered", 0) for row in recent) / sent)

    def send_delays(self, context: AttackContext) -> Optional[Dict[int, int]]:
        ceiling = min(self.max_lag, context.horizon)
        if ceiling <= 0:
            return None
        lag = int(round(self.observed_fill(context) * ceiling))
        if lag <= 0:
            return None
        return {node: lag for node in sorted(context.honest_vectors)}
