"""Command-line interface.

Four sub-commands cover the common workflows:

- ``run`` — run one collaborative-learning experiment described by flags
  (setting, aggregation rule, attack, heterogeneity, ...), print the
  accuracy trace and optionally save the history to JSON.
- ``compare`` — run the same experiment for several aggregation rules
  and print the comparison table (final / best / smoothed accuracy and
  the converging / diverging verdict).
- ``sweep`` — expand a JSON scenario-grid spec into experiment cells and
  run them on a worker pool, streaming JSONL rows with resume support
  (see ``docs/sweeps.md``).
- ``theory`` — print the Section 4 report: measured approximation ratios
  on the adversarial constructions and the BOX-GEOM convergence trace.

Examples
--------
::

    python -m repro.cli run --setting centralized --aggregation box-geom --rounds 20
    python -m repro.cli compare --setting decentralized --rules md-geom box-geom --rounds 10
    python -m repro.cli sweep spec.json --output results.jsonl --workers 4
    python -m repro.cli theory
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.aggregation.registry import available_rules
from repro.agreement.registry import available_algorithms
from repro.analysis.reporting import (
    comparison_table,
    delivery_trace_summary,
    sweep_summary_table,
)
from repro.byzantine.registry import available_attacks
from repro.engine import SCHEDULER_NAMES
from repro.io.results import metric_from_json, save_histories
from repro.learning.experiment import ExperimentConfig, run_experiment
from repro.learning.history import TrainingHistory


def _experiment_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--setting", choices=("centralized", "decentralized"), default="centralized")
    parser.add_argument("--dataset", choices=("mnist", "cifar10"), default="mnist")
    parser.add_argument("--heterogeneity", choices=("uniform", "mild", "extreme"), default="mild")
    parser.add_argument("--attack", default="sign-flip",
                        help=f"attack name or 'none' (available: {', '.join(available_attacks())})")
    parser.add_argument("--clients", type=int, default=10)
    parser.add_argument("--byzantine", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--samples", type=int, default=800)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--learning-rate", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scheduler", choices=SCHEDULER_NAMES, default="synchronous",
                        help="timing model of the communication rounds (see docs/architecture.md)")
    parser.add_argument("--delay", type=int, default=0,
                        help="delivery horizon in rounds (scheduler=partial only)")
    parser.add_argument("--drop-rate", type=float, default=0.0,
                        help="per-link message loss probability (scheduler=lossy only)")
    parser.add_argument("--wait-timeout", type=float, default=0.0,
                        help="wait window in virtual rounds (scheduler=asynchronous "
                             "only; required > 0 there)")
    parser.add_argument("--wait-count", type=int, default=0,
                        help="explicit per-round message target (scheduler="
                             "asynchronous only; 0 = the consumer's quorum)")
    parser.add_argument("--burstiness", type=float, default=0.0,
                        help="probability of entering the bursty delay regime per "
                             "round (scheduler=asynchronous only)")
    parser.add_argument("--save", type=str, default=None, help="write the histories to this JSON file")


def _build_config(args: argparse.Namespace, aggregation: str) -> ExperimentConfig:
    attack: Optional[str] = None if args.attack in ("none", "None", "") else args.attack
    return ExperimentConfig(
        setting=args.setting,
        dataset=args.dataset,
        heterogeneity=args.heterogeneity,
        aggregation=aggregation,
        attack=attack,
        num_clients=args.clients,
        num_byzantine=args.byzantine if attack is not None else 0,
        byzantine_tolerance=max(1, args.byzantine),
        rounds=args.rounds,
        num_samples=args.samples,
        batch_size=args.batch_size,
        learning_rate=args.learning_rate,
        mlp_hidden=(32, 16),
        seed=args.seed,
        scheduler=args.scheduler,
        delay=args.delay,
        drop_rate=args.drop_rate,
        wait_count=args.wait_count,
        wait_timeout=args.wait_timeout,
        burstiness=args.burstiness,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    config = _build_config(args, args.aggregation)
    history = run_experiment(config)
    trace = "  ".join(f"{acc:.3f}" for acc in history.accuracies())
    print(f"accuracy per round: {trace}")
    print(f"final accuracy: {history.final_accuracy():.3f}  best: {history.best_accuracy():.3f}")
    if history.network_stats:
        counters = "  ".join(f"{k}={v}" for k, v in sorted(history.network_stats.items()))
        print(f"network delivery: {counters}")
    if history.delivery_trace:
        trace = delivery_trace_summary(history.delivery_trace)
        print(
            f"delivery trace: {trace['rounds']} rounds, "
            f"worst round deliv {100.0 * trace['worst_deliv']:.1f}%, "
            f"{trace['late']} late messages"
        )
    if args.save:
        path = save_histories({args.aggregation: history}, args.save)
        print(f"history written to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    histories: Dict[str, TrainingHistory] = {}
    for rule in args.rules:
        config = _build_config(args, rule)
        histories[rule] = run_experiment(config)
    print(comparison_table(histories))
    if args.save:
        path = save_histories(histories, args.save)
        print(f"histories written to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import ScenarioGrid, SweepRunner

    spec_path = Path(args.spec)
    try:
        spec = json.loads(spec_path.read_text())
    except FileNotFoundError:
        print(f"sweep spec not found: {spec_path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"sweep spec is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        grid = ScenarioGrid.from_spec(spec)
        total = len(grid)
        print(f"sweep: {total} cells over axes {', '.join(grid.axis_names())}")
        if args.dry_run:
            # A real run validates inside SweepRunner.run(); doing it
            # here too would expand the grid twice.
            for cell in grid.validate():
                print(f"  [{cell.index:>3d}] {cell.cell_id} (seed={cell.config.seed})")
            return 0
    except ValueError as exc:
        print(f"invalid sweep spec: {exc}", file=sys.stderr)
        return 2

    def progress(cell, row, reused):
        tag = "cached" if reused else "done"
        # Resumed rows come back through JSON, where non-finite metrics
        # are sanitised to null.
        acc = metric_from_json(row["summary"]["final_accuracy"])
        print(f"  [{cell.index + 1:>3d}/{total}] {tag:<6s} {cell.cell_id} "
              f"final_acc={acc:.3f}")

    try:
        runner = SweepRunner(
            grid,
            workers=args.workers,
            output_path=args.output,
            resume=not args.no_resume,
            on_cell=progress,
        )
        rows = runner.run()
    except ValueError as exc:
        # Bad --workers, or a corrupt (non-interrupt-shaped) resume file.
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    print()
    print(sweep_summary_table(rows))
    if args.output:
        print(f"\nrows streamed to {args.output}")
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.theory.bounds import (
        hyperbox_approximation_ratio_experiment,
        hyperbox_contraction_experiment,
    )
    from repro.theory.counterexamples import (
        krum_unbounded_instance,
        md_geom_non_convergence_instance,
        safe_area_unbounded_instance,
    )

    safe = safe_area_unbounded_instance(epsilon=args.epsilon)
    krum = krum_unbounded_instance()
    md = md_geom_non_convergence_instance(rounds=args.rounds)
    box = hyperbox_approximation_ratio_experiment(trials=args.trials, d=args.dimension)
    conv = hyperbox_contraction_experiment(rounds=args.rounds, d=args.dimension)

    print(f"safe-area measured ratio (eps={args.epsilon:g}): {safe.measured_ratio:.3g} (paper: unbounded)")
    print(f"krum measured ratio: {krum.measured_ratio} (paper: unbounded)")
    print(f"md-geom adversarial execution converged: {md['converged']} (paper: may not converge)")
    print(
        f"box-geom max measured ratio: {box.max_ratio:.3f} <= bound 2*sqrt(d) = {box.bound:.3f}: "
        f"{box.within_bound}"
    )
    diameters = ", ".join(f"{v:.2e}" for v in conv["diameters"])
    print(f"box-geom honest-diameter trace under sign flip: [{diameters}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    _experiment_flags(run_parser)
    run_parser.add_argument(
        "--aggregation", default="box-geom",
        help=f"aggregation rule / agreement algorithm (available: {', '.join(available_rules())})",
    )
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = subparsers.add_parser("compare", help="run several rules on the same workload")
    _experiment_flags(compare_parser)
    compare_parser.add_argument(
        "--rules", nargs="+", default=["md-geom", "box-geom", "md-mean", "box-mean"],
        help=f"rules to compare (centralized: {', '.join(available_rules())}; "
             f"decentralized: {', '.join(available_algorithms())})",
    )
    compare_parser.set_defaults(func=_cmd_compare)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a scenario grid described by a JSON spec file"
    )
    sweep_parser.add_argument("spec", help="path to the sweep spec JSON (base + axes)")
    sweep_parser.add_argument("--output", type=str, default=None,
                              help="stream result rows to this JSONL file (enables resume)")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = run in-process)")
    sweep_parser.add_argument("--no-resume", action="store_true",
                              help="re-run every cell, overwriting the existing output file")
    sweep_parser.add_argument("--dry-run", action="store_true",
                              help="list the expanded cells without running them")
    sweep_parser.set_defaults(func=_cmd_sweep)

    theory_parser = subparsers.add_parser("theory", help="print the Section 4 theory report")
    theory_parser.add_argument("--epsilon", type=float, default=1e-4)
    theory_parser.add_argument("--rounds", type=int, default=8)
    theory_parser.add_argument("--trials", type=int, default=20)
    theory_parser.add_argument("--dimension", type=int, default=6)
    theory_parser.set_defaults(func=_cmd_theory)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (also exposed as ``python -m repro.cli``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
