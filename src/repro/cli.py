"""Command-line interface.

The sub-commands cover the common workflows:

- ``run`` — run one collaborative-learning experiment described by flags
  (setting, aggregation rule, attack, heterogeneity, ...), print the
  accuracy trace and optionally save the history to JSON.
- ``compare`` — run the same experiment for several aggregation rules
  and print the comparison table (final / best / smoothed accuracy and
  the converging / diverging verdict).
- ``sweep run`` — expand a JSON scenario-grid spec into experiment cells
  and run them through an execution backend (serial, process pool, or
  one shard of a multi-host run), streaming JSONL rows with resume
  support (see ``docs/sweeps.md``).  Plain ``sweep spec.json`` still
  works — ``run`` is inserted for you.
- ``sweep merge`` — fold per-shard JSONL files from a multi-host sweep
  into the canonical grid-order stream, byte-identical to a single-host
  run.
- ``sweep status`` — aggregate per-shard progress (claimed / done /
  stale leases, per-owner breakdown) from a lease directory, optionally
  vetted against a spec for unclaimed-cell counts.
- ``analyze`` — stream a sweep row file (arbitrarily large; ``.gz``
  transparently decompressed) through the constant-memory aggregator
  and emit a group-by table, deterministic JSON, or a self-contained
  HTML report with inlined figures (see ``docs/analysis.md``).
- ``theory`` — print the Section 4 report: measured approximation ratios
  on the adversarial constructions and the BOX-GEOM convergence trace.

Examples
--------
::

    python -m repro.cli run --setting centralized --aggregation box-geom --rounds 20
    python -m repro.cli compare --setting decentralized --rules md-geom box-geom --rounds 10
    python -m repro.cli sweep spec.json --output results.jsonl --workers 4
    python -m repro.cli sweep run spec.json --backend shard --shard 0/2 --output shard0.jsonl
    python -m repro.cli sweep merge shard0.jsonl shard1.jsonl --output merged.jsonl --spec spec.json
    python -m repro.cli sweep status --lease-dir leases/ --spec spec.json
    python -m repro.cli analyze results.jsonl --group-by aggregation --format table
    python -m repro.cli analyze results.jsonl --format html --output report.html --figures figs/
    python -m repro.cli theory
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.aggregation.registry import available_rules
from repro.agreement.registry import available_algorithms
from repro.analysis.reporting import (
    comparison_table,
    delivery_trace_summary,
    format_percent,
    node_stats_summary,
    sweep_summary_table,
)
from repro.byzantine.registry import available_attacks
from repro.engine import RNG_MODES, SCHEDULER_NAMES
from repro.io.results import metric_from_json, save_histories
from repro.learning.experiment import ExperimentConfig, run_experiment
from repro.learning.history import TrainingHistory
from repro.linalg.precision import SUPPORTED_DTYPES
from repro.network.topology import TOPOLOGY_NAMES
from repro.sweep.executors import BACKEND_NAMES


def _json_object(text: str) -> dict:
    """argparse ``type=`` for flags that take a JSON object literal."""
    try:
        value = json.loads(text)
    except json.JSONDecodeError as exc:
        raise argparse.ArgumentTypeError(f"not valid JSON: {exc}")
    if not isinstance(value, dict):
        raise argparse.ArgumentTypeError(
            f"must be a JSON object like '{{\"degree\": 4}}', got {text!r}"
        )
    return value


def _experiment_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--setting", choices=("centralized", "decentralized"), default="centralized")
    parser.add_argument("--dataset", choices=("mnist", "cifar10"), default="mnist")
    parser.add_argument("--heterogeneity", choices=("uniform", "mild", "extreme"), default="mild")
    parser.add_argument("--attack", default="sign-flip",
                        help=f"attack name or 'none' (available: {', '.join(available_attacks())})")
    parser.add_argument("--clients", type=int, default=10)
    parser.add_argument("--byzantine", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--samples", type=int, default=800)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--learning-rate", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dtype", choices=SUPPORTED_DTYPES, default="float64",
                        help="precision tier of the aggregation kernels "
                             "(float64 = bitwise reference, float32 = fast tier; "
                             "see docs/performance.md)")
    parser.add_argument("--scheduler", choices=SCHEDULER_NAMES, default="synchronous",
                        help="timing model of the communication rounds (see docs/architecture.md)")
    parser.add_argument("--topology", default="complete",
                        help="communication graph restricting which links exist "
                             f"(available: {', '.join(TOPOLOGY_NAMES)}; "
                             "'expander' is an alias for random-regular; "
                             "non-complete topologies need --setting decentralized)")
    parser.add_argument("--topology-kwargs", type=_json_object, default=None,
                        metavar="JSON",
                        help="generator parameters as a JSON object, e.g. "
                             "'{\"degree\": 6}' for random-regular or "
                             "'{\"clusters\": 4, \"bridges\": 2}' for clusters")
    parser.add_argument("--exchange", choices=("agreement", "gossip"), default="agreement",
                        help="decentralized exchange mode: full approximate "
                             "agreement (default) or neighbourhood gossip "
                             "averaging (degree-weighted mean)")
    parser.add_argument("--delay", type=int, default=0,
                        help="delivery horizon in rounds (scheduler=partial only)")
    parser.add_argument("--drop-rate", type=float, default=0.0,
                        help="per-link message loss probability (scheduler=lossy only)")
    parser.add_argument("--wait-timeout", type=float, default=0.0,
                        help="wait window in virtual rounds (scheduler=asynchronous "
                             "only; required > 0 there)")
    parser.add_argument("--wait-count", type=int, default=0,
                        help="explicit per-round message target (scheduler="
                             "asynchronous only; 0 = the consumer's quorum)")
    parser.add_argument("--burstiness", type=float, default=0.0,
                        help="probability of entering the bursty delay regime per "
                             "round (scheduler=asynchronous only)")
    parser.add_argument("--rng-mode", choices=RNG_MODES, default="scalar",
                        help="RNG draw strategy of the stochastic schedulers: "
                             "'scalar' (bitwise-pinned reference) or "
                             "'vectorized' (batched whole-round draws, "
                             "statistically equivalent; scheduler=partial/"
                             "asynchronous only — see docs/performance.md)")
    parser.add_argument("--node-trace", action="store_true",
                        help="record per-node delivery counters (batch message "
                             "plane; non-synchronous schedulers only)")
    parser.add_argument("--save", type=str, default=None, help="write the histories to this JSON file")


def _build_config(args: argparse.Namespace, aggregation: str) -> ExperimentConfig:
    attack: Optional[str] = None if args.attack in ("none", "None", "") else args.attack
    return ExperimentConfig(
        setting=args.setting,
        dataset=args.dataset,
        heterogeneity=args.heterogeneity,
        aggregation=aggregation,
        attack=attack,
        num_clients=args.clients,
        num_byzantine=args.byzantine if attack is not None else 0,
        byzantine_tolerance=max(1, args.byzantine),
        rounds=args.rounds,
        num_samples=args.samples,
        batch_size=args.batch_size,
        learning_rate=args.learning_rate,
        mlp_hidden=(32, 16),
        seed=args.seed,
        dtype=args.dtype,
        scheduler=args.scheduler,
        delay=args.delay,
        drop_rate=args.drop_rate,
        wait_count=args.wait_count,
        wait_timeout=args.wait_timeout,
        burstiness=args.burstiness,
        rng_mode=getattr(args, "rng_mode", "scalar"),
        node_trace=getattr(args, "node_trace", False),
        topology=getattr(args, "topology", "complete"),
        topology_kwargs=getattr(args, "topology_kwargs", None) or {},
        exchange=getattr(args, "exchange", "agreement"),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    config = _build_config(args, args.aggregation)
    history = run_experiment(config)
    if config.topology != "complete":
        from repro.network.topology import make_topology
        from repro.utils.rng import stable_component_seed

        shape = make_topology(
            config.topology,
            config.num_clients,
            seed=stable_component_seed(config.seed, "topology", config.topology),
            **config.topology_kwargs,
        ).summary()
        print(
            f"topology: {shape['name']} with {shape['edges']} edges, "
            f"degree {shape['min_degree']}..{shape['max_degree']}, "
            f"exchange={config.exchange}"
        )
    trace = "  ".join(f"{acc:.3f}" for acc in history.accuracies())
    print(f"accuracy per round: {trace}")
    print(f"final accuracy: {history.final_accuracy():.3f}  best: {history.best_accuracy():.3f}")
    if history.network_stats:
        counters = "  ".join(f"{k}={v}" for k, v in sorted(history.network_stats.items()))
        print(f"network delivery: {counters}")
    if history.delivery_trace:
        trace = delivery_trace_summary(history.delivery_trace)
        # A zero-sent trace has no worst-round rate (NaN): render '-'.
        worst = format_percent(trace["worst_deliv"]).strip()
        print(
            f"delivery trace: {trace['rounds']} rounds, "
            f"worst round deliv {worst}, "
            f"{trace['late']} late messages"
        )
    if history.node_stats:
        node = node_stats_summary(history.node_stats)
        worst = node.get("worst_node")
        if worst is not None:
            rate = format_percent(node["worst_node_deliv"]).strip()
            print(
                f"per-node delivery: {node['nodes']} nodes, "
                f"worst node {worst} at {rate}"
            )
        else:
            print(f"per-node delivery: {node['nodes']} nodes")
    if args.save:
        path = save_histories({args.aggregation: history}, args.save)
        print(f"history written to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    histories: Dict[str, TrainingHistory] = {}
    for rule in args.rules:
        config = _build_config(args, rule)
        histories[rule] = run_experiment(config)
    print(comparison_table(histories))
    if args.save:
        path = save_histories(histories, args.save)
        print(f"histories written to {path}")
    return 0


#: Keys the optional ``"execution"`` spec section may set (CLI flags
#: override them; host-specific choices like --shard stay CLI-only).
EXECUTION_SPEC_KEYS = ("backend", "workers", "max_retries", "lease_timeout")


def _load_sweep_spec(path_str: str):
    """Load a spec file; returns ``(grid, execution_defaults)`` or an
    error message string."""
    from repro.sweep import ScenarioGrid

    spec_path = Path(path_str)
    try:
        spec = json.loads(spec_path.read_text())
    except FileNotFoundError:
        return f"sweep spec not found: {spec_path}"
    except json.JSONDecodeError as exc:
        return f"sweep spec is not valid JSON: {exc}"
    execution = {}
    if isinstance(spec, dict):
        execution = spec.pop("execution", {})
        if not isinstance(execution, dict):
            return 'sweep spec "execution" must be an object'
        unknown = sorted(set(execution) - set(EXECUTION_SPEC_KEYS))
        if unknown:
            return (
                f"unknown execution keys: {unknown}; "
                f"valid: {sorted(EXECUTION_SPEC_KEYS)}"
            )
        for key, kind, label in (
            ("backend", str, "a backend name"),
            ("workers", int, "an integer"),
            ("max_retries", int, "an integer"),
            ("lease_timeout", (int, float), "a number"),
        ):
            value = execution.get(key)
            # bool is an int subclass but never a sane count/timeout.
            if value is not None and (
                not isinstance(value, kind) or isinstance(value, bool)
            ):
                return f'execution "{key}" must be {label}, got {value!r}'
        if execution.get("backend") is not None and (
            execution["backend"] not in BACKEND_NAMES
        ):
            return (
                f'execution "backend" must be one of {list(BACKEND_NAMES)}, '
                f'got {execution["backend"]!r}'
            )
        # A JSON null means "unset": drop it so downstream defaulting
        # (`execution.get(key, default)`) sees the key as absent.
        execution = {k: v for k, v in execution.items() if v is not None}
    try:
        grid = ScenarioGrid.from_spec(spec)
    except ValueError as exc:
        return f"invalid sweep spec: {exc}"
    return grid, execution


def _parse_shard(text: str):
    """Parse ``--shard i/M`` into ``(index, count)``."""
    try:
        index_str, count_str = text.split("/", 1)
        index, count = int(index_str), int(count_str)
    except ValueError:
        raise ValueError(f"--shard must look like i/M (e.g. 0/4), got {text!r}")
    if not 0 <= index < count:
        raise ValueError(f"--shard index must be in [0, {count}), got {index}")
    return index, count


def _build_backend(args: argparse.Namespace, execution: dict):
    """Resolve CLI flags + the spec's execution section into a backend.

    Returns ``(backend, workers)``; raises ``ValueError`` on conflicting
    or incomplete settings.
    """
    from repro.sweep import make_backend

    workers = args.workers if args.workers is not None else execution.get("workers", 1)
    max_retries = (
        args.max_retries
        if args.max_retries is not None
        else execution.get("max_retries", 0)
    )
    lease_timeout = (
        args.lease_timeout
        if args.lease_timeout is not None
        else execution.get("lease_timeout", 300.0)
    )
    sharded = args.shard is not None or args.lease_dir is not None
    if args.backend is not None and args.backend != "shard" and sharded:
        raise ValueError("--shard/--lease-dir require --backend shard")
    if sharded:
        # Host-specific shard flags take precedence over a spec-level
        # backend default — the same spec serves every worker.
        name = "shard"
    elif args.backend is not None:
        name = args.backend
    elif execution.get("backend") is not None:
        name = execution["backend"]
    else:
        name = "serial" if workers == 1 else "process"
    if args.lease_timeout is not None and args.lease_dir is None:
        raise ValueError("--lease-timeout only applies with --lease-dir")
    shard_index = shard_count = None
    if args.shard is not None:
        if args.lease_dir is not None:
            raise ValueError("--shard (static) and --lease-dir (dynamic) are exclusive")
        shard_index, shard_count = _parse_shard(args.shard)
    if name == "shard" and not sharded:
        raise ValueError("--backend shard needs --shard i/M or --lease-dir DIR")
    if name == "shard" and args.workers is not None and args.workers > 1:
        # A spec-level workers default is simply ignored for shard hosts
        # (same spec serves the fleet), but an explicit flag deserves a
        # loud answer rather than a silently serial run.
        raise ValueError(
            "--workers does not apply to the shard backend (each worker "
            "runs its cells one at a time); launch more shard workers "
            "for parallelism"
        )
    if name == "serial" and workers > 1:
        if args.workers is not None:
            raise ValueError(
                f"--workers {workers} needs the process backend, but the "
                f"backend resolved to 'serial'; drop the serial override "
                f"or use --backend process"
            )
        # Only the spec's single-host workers default conflicts: an
        # explicit serial choice simply ignores it, like the shard path.
        workers = 1
    backend = make_backend(
        name,
        workers=workers,
        max_retries=max_retries,
        shard_index=shard_index,
        shard_count=shard_count,
        lease_dir=args.lease_dir,
        lease_timeout=lease_timeout,
    )
    return backend, workers


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600:d}:{seconds // 60 % 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60:d}:{seconds % 60:02d}"


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    from repro.sweep import SweepRunner, failed_rows

    loaded = _load_sweep_spec(args.spec)
    if isinstance(loaded, str):
        print(loaded, file=sys.stderr)
        return 2
    grid, execution = loaded
    try:
        # Vet the fleet flags before the dry-run early return, so a
        # --dry-run pre-flight of a launch script catches a bad --shard
        # or --lease-dir combination instead of green-lighting it.
        # Construction is side-effect free (the lease dir is only
        # touched on submit).
        backend, workers = _build_backend(args, execution)
    except ValueError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    try:
        total = len(grid)
        print(f"sweep: {total} cells over axes {', '.join(grid.axis_names())}")
        if args.dry_run:
            # A real run validates inside SweepRunner.run(); doing it
            # here too would expand the grid twice.
            for cell in grid.validate():
                print(f"  [{cell.index:>3d}] {cell.cell_id} (seed={cell.config.seed})")
            return 0
    except ValueError as exc:
        print(f"invalid sweep spec: {exc}", file=sys.stderr)
        return 2

    state = {"start": time.monotonic(), "fresh": 0}

    def progress(cell, row, reused):
        # `runner` is assigned below, before run() fires any callback.
        if not reused:
            state["fresh"] += 1
        if args.quiet:
            return
        prefix = f"  [{cell.index + 1:>3d}/{total}]"
        if "error" in row:
            print(f"{prefix} {'failed':<6s} {cell.cell_id} "
                  f"{row['error']['exception']}")
            return
        tag = "cached" if reused else "done"
        # Resumed rows come back through JSON, where non-finite metrics
        # are sanitised to null.
        acc = metric_from_json(row["summary"]["final_accuracy"])
        line = f"{prefix} {tag:<6s} {cell.cell_id} final_acc={acc:.3f}"
        if not reused:
            # Throughput over the cells executed by this worker.
            elapsed = time.monotonic() - state["start"]
            if elapsed > 0:
                rate = state["fresh"] / elapsed
                line += f"  ({rate:.2f} cells/s"
                # run() publishes pending_count from its one resume-file
                # read, so only non-cached cells are priced into the ETA.
                pending = runner.pending_count
                if backend.exhaustive and pending is not None:
                    # A shard worker cannot know its share up front
                    # (lease claims are dynamic), so no ETA there.
                    remaining = max(0, pending - state["fresh"])
                    line += f", eta {_format_eta(remaining / rate)}"
                line += ")"
        print(line)

    try:
        runner = SweepRunner(
            grid,
            workers=workers,
            backend=backend,
            output_path=args.output,
            resume=not args.no_resume,
            on_cell=progress,
        )
        rows = runner.run()
    except ValueError as exc:
        # Bad flags, or a corrupt (non-interrupt-shaped) resume file.
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    print()
    # The spec is at hand here, so pin the axis-column order to the grid
    # instead of recovering it from the rows.
    print(sweep_summary_table(rows, axis_names=grid.axis_names()))
    stats = backend.stats()
    if stats.get("skipped"):
        # Lease-mode skips are cells some worker durably completed;
        # static-mode skips are merely assigned elsewhere and may not
        # have run at all yet.
        verb = (
            "completed by other workers"
            if args.lease_dir is not None
            else "assigned to other shards"
        )
        print(f"\n{stats['skipped']} cell(s) {verb} "
              f"(merge the shard files for the full grid)")
    failures = failed_rows(rows)
    if failures:
        print(f"\n{len(failures)} cell(s) FAILED after "
              f"{backend.max_retries + 1} attempt(s) each; error rows were "
              f"streamed in their place.  Re-run the same command to retry "
              f"just the failed cells.")
        for row in failures:
            print(f"  {row['cell_id']}: {row['error']['exception']}")
    if args.output:
        print(f"\nrows streamed to {args.output}")
    return 1 if failures else 0


def _cmd_sweep_merge(args: argparse.Namespace) -> int:
    from repro.sweep import merge_shards

    grid = None
    if args.spec is not None:
        loaded = _load_sweep_spec(args.spec)
        if isinstance(loaded, str):
            print(loaded, file=sys.stderr)
            return 2
        grid, _ = loaded
    try:
        report = merge_shards(
            args.shards,
            args.output,
            grid=grid,
            require_complete=not args.allow_incomplete,
        )
    except FileNotFoundError as exc:
        print(f"merge failed: shard file not found: {exc.filename}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 2
    print(f"merged {report.cells} cell(s) from {len(args.shards)} shard file(s) "
          f"into {args.output}")
    if grid is None:
        # Index contiguity cannot see a truncated tail: only a spec
        # knows how many cells the grid has.
        print("  note: completeness beyond the highest observed index is "
              "not verifiable without --spec")
    if report.duplicates:
        print(f"  {report.duplicates} duplicate row(s) collapsed")
    if report.stale:
        print(f"  {report.stale} stale row(s) dropped")
    if report.renumbered:
        print(f"  {report.renumbered} row(s) renumbered to the spec's "
              f"cell order")
    if report.missing:
        print(f"  {len(report.missing)} cell(s) still missing")
    if report.failed:
        print(f"  {report.failed} cell(s) carry error rows — re-run their "
              f"shards to retry")
    # Missing cells only reach here when the operator opted in with
    # --allow-incomplete, so they do not fail the command; error rows do.
    return 1 if report.failed else 0


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    from repro.sweep.executors import lease_keys_for_cells, scan_lease_dir

    try:
        status = scan_lease_dir(args.lease_dir, timeout=args.lease_timeout)
    except FileNotFoundError as exc:
        print(f"sweep status failed: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"sweep status failed: {exc}", file=sys.stderr)
        return 2
    claimed_fresh = status["in_progress"] - status["stale"]
    print(f"lease dir: {status['lease_dir']} "
          f"(staleness timeout {status['timeout']:g}s)")
    line = (f"  done: {status['done_ok']}  failed: {status['done_failed']}  "
            f"in progress: {claimed_fresh}  stale: {status['stale']}")
    if args.spec is not None:
        loaded = _load_sweep_spec(args.spec)
        if isinstance(loaded, str):
            print(loaded, file=sys.stderr)
            return 2
        grid, _ = loaded
        try:
            keys = lease_keys_for_cells(list(grid.validate()))
        except ValueError as exc:
            print(f"invalid sweep spec: {exc}", file=sys.stderr)
            return 2
        known = status["keys"]
        spec_keys = set(keys.values())
        if known and not (spec_keys & set(known)):
            # Lease keys are namespaced by the grid fingerprint, so a
            # spec whose axes differ from the one the fleet ran (wrong
            # file, edited grid, older schema) matches *nothing* — every
            # cell would count as unclaimed and every lease as done-
            # elsewhere, both misleading.  Name the mismatch instead.
            line += (f"  total: {len(keys)}  (foreign spec: none of the "
                     f"{len(known)} lease(s) here match this spec's grid "
                     f"fingerprint — unclaimed counts would be meaningless)")
        else:
            unclaimed = sum(1 for key in keys.values() if key not in known)
            line += f"  unclaimed: {unclaimed}  total: {len(keys)}"
            foreign = sorted(set(known) - spec_keys)
            if foreign:
                # Markers from another spec (or schema version) in the
                # same directory are invisible to this sweep's workers —
                # but the operator pointing `status` at the wrong spec
                # should see them.
                line += f"  (+{len(foreign)} lease(s) from a different spec)"
    print(line)
    if status["owners"]:
        print("  per owner:")
        for owner, row in status["owners"].items():
            print(f"    {owner}: claimed={row['claimed']} stale={row['stale']} "
                  f"done_ok={row['done_ok']} done_failed={row['done_failed']}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.figures import render_figures, write_figures
    from repro.analysis.report import render_html_report
    from repro.analysis.streaming import analysis_table, analyze_sweep_rows

    rows_path = Path(args.rows)
    if not rows_path.exists():
        print(f"row file not found: {rows_path}", file=sys.stderr)
        return 2
    axis_names = None
    if args.spec is not None:
        loaded = _load_sweep_spec(args.spec)
        if isinstance(loaded, str):
            print(loaded, file=sys.stderr)
            return 2
        grid, _ = loaded
        axis_names = grid.axis_names()
    try:
        analysis = analyze_sweep_rows(
            rows_path,
            group_by=args.group_by,
            axis_names=axis_names,
            classify=not args.no_classify,
            curves=True,
        )
    except ValueError as exc:
        # Unknown group-by axis, or a malformed JSONL line.
        print(f"analyze failed: {exc}", file=sys.stderr)
        return 2

    # Figures are rendered once and shared between --figures and the
    # HTML report; table/json output skips rendering unless asked.
    figures = []
    if args.figures is not None or args.format == "html":
        try:
            figures = render_figures(analysis, backend=args.figure_backend)
        except ValueError as exc:
            print(f"analyze failed: {exc}", file=sys.stderr)
            return 2
    if args.figures is not None:
        paths = write_figures(figures, args.figures)
        for path in paths:
            print(f"figure written to {path}", file=sys.stderr)

    if args.format == "table":
        output = analysis_table(analysis)
    elif args.format == "json":
        output = json.dumps(analysis.to_json(), indent=2, sort_keys=True)
    else:
        output = render_html_report(
            analysis, figures, source=str(rows_path)
        )
    if args.output:
        target = Path(args.output)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(output + "\n", encoding="utf-8")
        print(f"report written to {target}", file=sys.stderr)
    else:
        print(output)
    if analysis.stale_rows:
        print(
            f"note: {analysis.stale_rows} stale row(s) skipped "
            f"(older schema or missing axes)",
            file=sys.stderr,
        )
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.theory.bounds import (
        hyperbox_approximation_ratio_experiment,
        hyperbox_contraction_experiment,
    )
    from repro.theory.counterexamples import (
        krum_unbounded_instance,
        md_geom_non_convergence_instance,
        safe_area_unbounded_instance,
    )

    safe = safe_area_unbounded_instance(epsilon=args.epsilon)
    krum = krum_unbounded_instance()
    md = md_geom_non_convergence_instance(rounds=args.rounds)
    box = hyperbox_approximation_ratio_experiment(trials=args.trials, d=args.dimension)
    conv = hyperbox_contraction_experiment(rounds=args.rounds, d=args.dimension)

    print(f"safe-area measured ratio (eps={args.epsilon:g}): {safe.measured_ratio:.3g} (paper: unbounded)")
    print(f"krum measured ratio: {krum.measured_ratio} (paper: unbounded)")
    print(f"md-geom adversarial execution converged: {md['converged']} (paper: may not converge)")
    print(
        f"box-geom max measured ratio: {box.max_ratio:.3f} <= bound 2*sqrt(d) = {box.bound:.3f}: "
        f"{box.within_bound}"
    )
    diameters = ", ".join(f"{v:.2e}" for v in conv["diameters"])
    print(f"box-geom honest-diameter trace under sign flip: [{diameters}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    _experiment_flags(run_parser)
    run_parser.add_argument(
        "--aggregation", default="box-geom",
        help=f"aggregation rule / agreement algorithm (available: {', '.join(available_rules())})",
    )
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = subparsers.add_parser("compare", help="run several rules on the same workload")
    _experiment_flags(compare_parser)
    compare_parser.add_argument(
        "--rules", nargs="+", default=["md-geom", "box-geom", "md-mean", "box-mean"],
        help=f"rules to compare (centralized: {', '.join(available_rules())}; "
             f"decentralized: {', '.join(available_algorithms())})",
    )
    compare_parser.set_defaults(func=_cmd_compare)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run or merge scenario grids described by JSON spec files"
    )
    sweep_sub = sweep_parser.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser(
        "run", help="run a scenario grid (plain `sweep spec.json` implies `run`)"
    )
    sweep_run.add_argument("spec", help="path to the sweep spec JSON (base + axes)")
    sweep_run.add_argument("--output", type=str, default=None,
                           help="stream result rows to this JSONL file (enables resume)")
    sweep_run.add_argument("--workers", type=int, default=None,
                           help="worker processes (default 1 = run in-process)")
    sweep_run.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                           help="execution backend (default: serial, or process "
                                "when --workers > 1; shard for multi-host runs)")
    sweep_run.add_argument("--shard", type=str, default=None, metavar="I/M",
                           help="static shard assignment: run shard I of M "
                                "(backend=shard; cells are assigned round-robin "
                                "by grid index)")
    sweep_run.add_argument("--lease-dir", type=str, default=None,
                           help="shared directory of atomic lease files for "
                                "dynamic cell claiming (backend=shard)")
    sweep_run.add_argument("--lease-timeout", type=float, default=None,
                           help="seconds before an unfinished lease counts as "
                                "stale and is reclaimed (default 300; must "
                                "exceed the slowest cell)")
    sweep_run.add_argument("--max-retries", type=int, default=None,
                           help="re-attempts for a raising cell before an error "
                                "row is emitted in its place (default 0)")
    sweep_run.add_argument("--no-resume", action="store_true",
                           help="re-run every cell, overwriting the existing output file")
    sweep_run.add_argument("--quiet", action="store_true",
                           help="suppress per-cell progress lines (CI logs)")
    sweep_run.add_argument("--dry-run", action="store_true",
                           help="list the expanded cells without running them")
    sweep_run.set_defaults(func=_cmd_sweep_run)

    sweep_merge = sweep_sub.add_parser(
        "merge", help="fold per-shard JSONL files into the canonical grid-order stream"
    )
    sweep_merge.add_argument("shards", nargs="+",
                             help="the per-shard JSONL files to merge")
    sweep_merge.add_argument("--output", type=str, required=True,
                             help="write the merged grid-order JSONL here")
    sweep_merge.add_argument("--spec", type=str, default=None,
                             help="sweep spec to vet rows against (schema + "
                                  "config match, completeness over the grid)")
    sweep_merge.add_argument("--allow-incomplete", action="store_true",
                             help="merge even when cells are missing")
    sweep_merge.set_defaults(func=_cmd_sweep_merge)

    sweep_status = sweep_sub.add_parser(
        "status", help="aggregate fleet progress from a lease directory"
    )
    sweep_status.add_argument("--lease-dir", type=str, required=True,
                              help="the shared lease directory the fleet writes to")
    sweep_status.add_argument("--lease-timeout", type=float, default=300.0,
                              help="seconds before an unfinished lease counts as "
                                   "stale (match the fleet's --lease-timeout)")
    sweep_status.add_argument("--spec", type=str, default=None,
                              help="sweep spec JSON; adds unclaimed/total counts "
                                   "and flags leases from a different spec")
    sweep_status.set_defaults(func=_cmd_sweep_status)

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="stream a sweep row file into tables, figures and HTML reports",
    )
    analyze_parser.add_argument(
        "rows",
        help="sweep JSONL row file (as streamed by `sweep run` or written "
             "by `sweep merge`; `.gz` is decompressed transparently)",
    )
    analyze_parser.add_argument(
        "--format", choices=("table", "json", "html"), default="table",
        help="output format: plain-text group table (default), "
             "deterministic JSON, or a self-contained HTML report with "
             "inlined figures",
    )
    analyze_parser.add_argument(
        "--group-by", nargs="+", default=None, metavar="AXIS",
        help="axis names to aggregate over (default: every axis, i.e. one "
             "group per cell)",
    )
    analyze_parser.add_argument(
        "--spec", type=str, default=None,
        help="sweep spec JSON; pins the axis-column order to the grid "
             "instead of recovering it from the rows",
    )
    analyze_parser.add_argument(
        "--output", type=str, default=None,
        help="write the table/JSON/HTML here instead of stdout",
    )
    analyze_parser.add_argument(
        "--figures", type=str, default=None, metavar="DIR",
        help="also write one figure file per chart into this directory",
    )
    analyze_parser.add_argument(
        "--figure-backend", choices=("auto", "svg", "mpl"), default="auto",
        help="figure renderer: builtin deterministic SVG, matplotlib/Agg "
             "PNG, or auto (matplotlib when installed, SVG otherwise)",
    )
    analyze_parser.add_argument(
        "--no-classify", action="store_true",
        help="skip per-cell trace classification (faster metric-only scan)",
    )
    analyze_parser.set_defaults(func=_cmd_analyze)

    theory_parser = subparsers.add_parser("theory", help="print the Section 4 theory report")
    theory_parser.add_argument("--epsilon", type=float, default=1e-4)
    theory_parser.add_argument("--rounds", type=int, default=8)
    theory_parser.add_argument("--trials", type=int, default=20)
    theory_parser.add_argument("--dimension", type=int, default=6)
    theory_parser.set_defaults(func=_cmd_theory)
    return parser


def _normalize_argv(argv: Sequence[str]) -> List[str]:
    """Insert the implicit ``run`` sweep sub-command for back-compat.

    ``repro sweep spec.json`` (spec-first *or* flag-first, as argparse
    always allowed) predates the run/merge split, so unless the operator
    named a sub-command — or asked for ``sweep``'s own help — ``run`` is
    spliced in.
    """
    argv = list(argv)
    if argv and argv[0] == "sweep" and len(argv) > 1:
        if argv[1] not in ("run", "merge", "status", "-h", "--help"):
            argv.insert(1, "run")
    return argv


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (also exposed as ``python -m repro.cli``)."""
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    args = parser.parse_args(_normalize_argv(argv))
    try:
        return int(args.func(args))
    except BrokenPipeError:
        # `repro analyze ... | head` closes stdout early; that is not an
        # error.  Detach stdout so interpreter shutdown does not re-raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
