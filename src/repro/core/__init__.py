"""The paper's primary contribution, re-exported for convenient access.

``repro.core`` groups the pieces that constitute the SPAA 2025 paper's
contribution proper:

- the hyperbox agreement algorithm for the geometric median
  (Algorithm 2, :class:`HyperboxGeometricMedianAgreement`) and its
  one-shot form (:class:`HyperboxGeometricMedian`),
- the geometric-median approximation framework of Section 3
  (``S_geo``, the covering ball, :func:`approximation_ratio`), and
- the protocol runner that executes agreement algorithms against a
  Byzantine adversary.

Everything here is also importable from its home subpackage; the alias
exists so downstream users can start from a single import.
"""

from repro.aggregation.hyperbox_rules import HyperboxGeometricMedian, HyperboxMean
from repro.agreement.algorithms import (
    HyperboxGeometricMedianAgreement,
    HyperboxMeanAgreement,
    MinimumDiameterGeometricMedianAgreement,
    MinimumDiameterMeanAgreement,
)
from repro.agreement.base import AgreementProtocol, AgreementResult
from repro.agreement.metrics import (
    approximation_ratio,
    covering_ball_of_sgeo,
    geometric_median_candidates,
    true_geometric_median,
)
from repro.linalg.geometric_median import geometric_median
from repro.linalg.hyperbox import Hyperbox, bounding_hyperbox, trimmed_hyperbox

__all__ = [
    "AgreementProtocol",
    "AgreementResult",
    "Hyperbox",
    "HyperboxGeometricMedian",
    "HyperboxGeometricMedianAgreement",
    "HyperboxMean",
    "HyperboxMeanAgreement",
    "MinimumDiameterGeometricMedianAgreement",
    "MinimumDiameterMeanAgreement",
    "approximation_ratio",
    "bounding_hyperbox",
    "covering_ball_of_sgeo",
    "geometric_median",
    "geometric_median_candidates",
    "trimmed_hyperbox",
    "true_geometric_median",
]
