"""Dataset substrate: synthetic image datasets and heterogeneity splits.

The paper evaluates on MNIST and CIFAR10.  Neither dataset can be
downloaded in this offline reproduction, so :mod:`repro.data.datasets`
generates *synthetic class-structured image data* with the same shapes
(28×28 grey, 32×32×3 colour, 10 classes): each class has a smooth random
template and samples are noisy, shifted copies of it.  The resulting
classification tasks are learnable by the same architectures the paper
uses, which is what the robustness comparison needs.

:mod:`repro.data.partition` implements the paper's three heterogeneity
regimes (uniform, mild, extreme 2-class) and
:mod:`repro.data.batching` provides the stochastic-gradient batch
sampling clients use.
"""

from repro.data.datasets import (
    Dataset,
    make_synthetic_cifar10,
    make_synthetic_mnist,
    train_test_split,
)
from repro.data.partition import (
    Heterogeneity,
    partition_dataset,
    partition_extreme,
    partition_mild,
    partition_uniform,
)
from repro.data.batching import BatchSampler

__all__ = [
    "BatchSampler",
    "Dataset",
    "Heterogeneity",
    "make_synthetic_cifar10",
    "make_synthetic_mnist",
    "partition_dataset",
    "partition_extreme",
    "partition_mild",
    "partition_uniform",
    "train_test_split",
]
