"""Stochastic mini-batch sampling for gradient estimation."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import as_generator
from repro.utils.validation import require


class BatchSampler:
    """Draws random mini-batches from a client's local dataset.

    Each call to :meth:`sample` draws ``batch_size`` indices uniformly
    with replacement when the dataset is smaller than the batch, without
    replacement otherwise — matching the "draw a random batch from the
    local data-generating distribution" gradient estimator (Equation 2).
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32, *, seed=0) -> None:
        require(batch_size >= 1, "batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self._rng = as_generator(seed)

    def sample(self) -> Tuple[np.ndarray, np.ndarray]:
        """One mini-batch ``(images, labels)``."""
        n = len(self.dataset)
        replace = n < self.batch_size
        idx = self._rng.choice(n, size=min(self.batch_size, n) if not replace else self.batch_size,
                               replace=replace)
        return self.dataset.images[idx], self.dataset.labels[idx]

    def epoch(self, *, shuffle: bool = True) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over the dataset once in batches (for evaluation loops)."""
        n = len(self.dataset)
        order = self._rng.permutation(n) if shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]
