"""Synthetic image classification datasets.

Substitution note (see DESIGN.md): the paper trains on MNIST and CIFAR10,
which are unavailable offline.  These generators produce datasets with
the same tensor shapes and class count whose classes are separable but
overlapping — each class ``c`` owns a smooth random template image and a
sample is ``clip(template + structured noise + small translation)``.
The MLP / CifarNet architectures learn them the same way they learn the
real datasets, so the *relative* behaviour of aggregation rules under
attack (the quantity the paper studies) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import require


@dataclass(frozen=True)
class Dataset:
    """An in-memory labelled dataset.

    Attributes
    ----------
    images:
        Float array of shape ``(num_samples, *image_shape)`` in [0, 1].
    labels:
        Integer class labels of shape ``(num_samples,)``.
    num_classes:
        Number of distinct classes (labels are ``0 .. num_classes - 1``).
    name:
        Human-readable dataset name for reports.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        images = np.asarray(self.images, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        require(images.ndim >= 2, "images must have at least 2 dimensions")
        require(images.shape[0] == labels.shape[0],
                f"images ({images.shape[0]}) and labels ({labels.shape[0]}) count mismatch")
        require(self.num_classes >= 2, "num_classes must be at least 2")
        require(labels.size == 0 or (labels.min() >= 0 and labels.max() < self.num_classes),
                "labels out of range for num_classes")
        object.__setattr__(self, "images", images)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_shape(self) -> Tuple[int, ...]:
        """Shape of one image (without the sample axis)."""
        return tuple(self.images.shape[1:])

    @property
    def feature_dim(self) -> int:
        """Number of features when the image is flattened."""
        return int(np.prod(self.image_shape))

    def flattened(self) -> np.ndarray:
        """Images reshaped to ``(num_samples, feature_dim)``."""
        return self.images.reshape(len(self), -1)

    def subset(self, indices: np.ndarray, name_suffix: str = "") -> "Dataset":
        """New dataset restricted to the given sample indices."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        return Dataset(
            images=self.images[idx],
            labels=self.labels[idx],
            num_classes=self.num_classes,
            name=self.name + name_suffix,
        )

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, shape ``(num_classes,)``."""
        return np.bincount(self.labels, minlength=self.num_classes)


def _smooth_random_image(rng: np.random.Generator, shape: Tuple[int, ...], smoothness: int = 3) -> np.ndarray:
    """Random low-frequency image in [0, 1] (repeated box blur of noise)."""
    img = rng.random(shape)
    # Separable box blur along the two spatial axes, repeated `smoothness` times.
    for _ in range(smoothness):
        for axis in (0, 1):
            img = (np.roll(img, 1, axis=axis) + img + np.roll(img, -1, axis=axis)) / 3.0
    img -= img.min()
    peak = img.max()
    if peak > 0:
        img /= peak
    return img


def _generate_class_dataset(
    *,
    num_samples: int,
    image_shape: Tuple[int, ...],
    num_classes: int,
    noise: float,
    shift: int,
    seed,
    name: str,
) -> Dataset:
    """Shared generator behind the MNIST- and CIFAR-like datasets."""
    require(num_samples >= num_classes, "need at least one sample per class")
    rng = as_generator(seed)
    templates = np.stack(
        [_smooth_random_image(rng, image_shape) for _ in range(num_classes)], axis=0
    )
    # Balanced labels, then shuffled so contiguous slices are class-mixed.
    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)
    images = np.empty((num_samples, *image_shape), dtype=np.float64)
    for i, label in enumerate(labels):
        base = templates[label]
        if shift > 0:
            dy, dx = rng.integers(-shift, shift + 1, size=2)
            base = np.roll(np.roll(base, int(dy), axis=0), int(dx), axis=1)
        sample = base + rng.normal(0.0, noise, size=image_shape)
        images[i] = np.clip(sample, 0.0, 1.0)
    return Dataset(images=images, labels=labels, num_classes=num_classes, name=name)


def make_synthetic_mnist(
    num_samples: int = 2000,
    *,
    num_classes: int = 10,
    noise: float = 0.15,
    shift: int = 2,
    seed=0,
) -> Dataset:
    """MNIST-like dataset: ``(num_samples, 28, 28)`` grey images, 10 classes."""
    return _generate_class_dataset(
        num_samples=num_samples,
        image_shape=(28, 28),
        num_classes=num_classes,
        noise=noise,
        shift=shift,
        seed=seed,
        name="synthetic-mnist",
    )


def make_synthetic_cifar10(
    num_samples: int = 2000,
    *,
    num_classes: int = 10,
    noise: float = 0.12,
    shift: int = 2,
    seed=0,
) -> Dataset:
    """CIFAR10-like dataset: ``(num_samples, 32, 32, 3)`` colour images."""
    return _generate_class_dataset(
        num_samples=num_samples,
        image_shape=(32, 32, 3),
        num_classes=num_classes,
        noise=noise,
        shift=shift,
        seed=seed,
        name="synthetic-cifar10",
    )


def train_test_split(
    dataset: Dataset, *, test_fraction: float = 0.1, seed=0
) -> Tuple[Dataset, Dataset]:
    """Split into train/test subsets (paper uses a 9:1 MNIST split)."""
    require(0.0 < test_fraction < 1.0, "test_fraction must be in (0, 1)")
    rng = as_generator(seed)
    order = rng.permutation(len(dataset))
    num_test = max(1, int(round(len(dataset) * test_fraction)))
    test_idx, train_idx = order[:num_test], order[num_test:]
    require(train_idx.size > 0, "train split would be empty; reduce test_fraction")
    return dataset.subset(train_idx, "-train"), dataset.subset(test_idx, "-test")
