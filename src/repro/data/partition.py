"""Client data partitioning: the paper's three heterogeneity regimes.

- *uniform*: every class is split evenly across the clients.
- *mild heterogeneity*: each class is split into 10 parts where 8 parts
  hold 10% of the class, one part 5% and one part 15%; the 5%/15% parts
  rotate across clients so every client is slightly over- and
  under-represented in some classes.
- *extreme (2-class) heterogeneity*: the dataset is sorted by label and
  cut into ``2 * num_clients`` shards; each client receives two shards,
  so it sees at most two classes.

All partitions keep the per-client dataset sizes as equal as possible —
the paper explicitly excludes unequal sizes because Byzantine clients
could exploit them.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import as_generator
from repro.utils.validation import require


class Heterogeneity(str, enum.Enum):
    """Data heterogeneity regimes used in the paper's evaluation."""

    UNIFORM = "uniform"
    MILD = "mild"
    EXTREME = "extreme"


def _split_class_by_fractions(
    indices: np.ndarray, fractions: Sequence[float], rng: np.random.Generator
) -> List[np.ndarray]:
    """Split an index array into chunks of the given fractional sizes."""
    shuffled = rng.permutation(indices)
    total = shuffled.shape[0]
    raw = np.array(fractions, dtype=np.float64)
    raw = raw / raw.sum()
    counts = np.floor(raw * total).astype(int)
    # Distribute the remainder to the largest fractional parts.
    remainder = total - counts.sum()
    if remainder > 0:
        order = np.argsort(-(raw * total - counts))
        counts[order[:remainder]] += 1
    chunks: List[np.ndarray] = []
    start = 0
    for count in counts:
        chunks.append(shuffled[start : start + count])
        start += count
    return chunks


def partition_uniform(dataset: Dataset, num_clients: int, *, seed=0) -> List[Dataset]:
    """Uniform split: every class divided evenly across clients."""
    require(num_clients >= 1, "num_clients must be positive")
    rng = as_generator(seed)
    per_client: List[List[np.ndarray]] = [[] for _ in range(num_clients)]
    for cls in range(dataset.num_classes):
        cls_idx = np.flatnonzero(dataset.labels == cls)
        if cls_idx.size == 0:
            continue
        chunks = _split_class_by_fractions(cls_idx, [1.0 / num_clients] * num_clients, rng)
        for client, chunk in enumerate(chunks):
            per_client[client].append(chunk)
    return _finalise(dataset, per_client, "uniform")


def partition_mild(dataset: Dataset, num_clients: int = 10, *, seed=0) -> List[Dataset]:
    """Mild heterogeneity: per class, 8×10% + one 5% + one 15% shares.

    The positions of the 5% and 15% shares rotate with the class index so
    the imbalance spreads across clients.  For ``num_clients != 10`` the
    same idea generalises: two clients get half/one-and-a-half of the
    even share, the rest get the even share.
    """
    require(num_clients >= 2, "mild heterogeneity needs at least 2 clients")
    rng = as_generator(seed)
    even = 1.0 / num_clients
    per_client: List[List[np.ndarray]] = [[] for _ in range(num_clients)]
    for cls in range(dataset.num_classes):
        cls_idx = np.flatnonzero(dataset.labels == cls)
        if cls_idx.size == 0:
            continue
        fractions = np.full(num_clients, even)
        small = cls % num_clients
        large = (cls + 1) % num_clients
        fractions[small] = even * 0.5
        fractions[large] = even * 1.5
        chunks = _split_class_by_fractions(cls_idx, fractions.tolist(), rng)
        for client, chunk in enumerate(chunks):
            per_client[client].append(chunk)
    return _finalise(dataset, per_client, "mild")


def partition_extreme(dataset: Dataset, num_clients: int = 10, *, seed=0) -> List[Dataset]:
    """Extreme (2-class) heterogeneity: sort by label, shard, deal 2 shards each."""
    require(num_clients >= 1, "num_clients must be positive")
    require(len(dataset) >= 2 * num_clients, "dataset too small for 2 shards per client")
    rng = as_generator(seed)
    order = np.argsort(dataset.labels, kind="stable")
    shards = np.array_split(order, 2 * num_clients)
    shard_ids = rng.permutation(2 * num_clients)
    per_client: List[List[np.ndarray]] = [[] for _ in range(num_clients)]
    for position, shard_id in enumerate(shard_ids):
        per_client[position % num_clients].append(shards[shard_id])
    return _finalise(dataset, per_client, "extreme")


def partition_dataset(
    dataset: Dataset,
    num_clients: int,
    heterogeneity: Heterogeneity | str = Heterogeneity.UNIFORM,
    *,
    seed=0,
) -> List[Dataset]:
    """Partition ``dataset`` across clients under the requested regime."""
    regime = Heterogeneity(heterogeneity)
    if regime is Heterogeneity.UNIFORM:
        return partition_uniform(dataset, num_clients, seed=seed)
    if regime is Heterogeneity.MILD:
        return partition_mild(dataset, num_clients, seed=seed)
    return partition_extreme(dataset, num_clients, seed=seed)


def _finalise(
    dataset: Dataset, per_client: List[List[np.ndarray]], tag: str
) -> List[Dataset]:
    out: List[Dataset] = []
    for client, chunks in enumerate(per_client):
        if chunks:
            idx = np.concatenate(chunks)
        else:  # pragma: no cover - only possible with pathological inputs
            idx = np.empty(0, dtype=np.int64)
        require(idx.size > 0, f"client {client} received no data under the {tag} split")
        out.append(dataset.subset(idx, f"-{tag}-client{client}"))
    return out
