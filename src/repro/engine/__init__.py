"""Scheduler-pluggable round engine.

The paper specifies lock-step rounds; this package makes that timing
model one pluggable axis instead of a hard-coded assumption.  A
:class:`RoundEngine` turns per-node broadcast plans into per-node
inboxes; the scheduler decides *when* (and whether) each link delivers:

========================================  =================================
Scheduler                                  Timing model
========================================  =================================
:class:`SynchronousScheduler`              lock-step (the paper; bitwise-
                                           identical to the historical
                                           ``SynchronousNetwork``)
:class:`PartiallySynchronousScheduler`     per-link random delays bounded
                                           by a delivery horizon
:class:`LossyScheduler`                    seeded per-link loss plus
                                           transient crash windows
:class:`AsynchronousScheduler`             event-driven, no horizon:
                                           heavy-tailed regime-modulated
                                           delays + explicit wait
                                           conditions
========================================  =================================

Agreement, centralized and decentralized learning all run on this one
engine (see :func:`repro.engine.rounds.run_exchange`); experiment
configurations select a scheduler by name through
:func:`make_scheduler`, which is what the ``scheduler`` / ``delay`` /
``drop_rate`` / ``crash_schedule`` / ``wait_count`` / ``wait_timeout`` /
``burstiness`` / ``rng_mode`` sweep axes feed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.engine.asynchronous import AsynchronousScheduler
from repro.engine.base import RNG_MODES, RoundEngine, WaitCondition, resolve_rng_mode
from repro.engine.lossy import LossyScheduler, normalise_crash_schedule
from repro.engine.partial import PartiallySynchronousScheduler
from repro.engine.rounds import attack_adversary_plan, run_exchange
from repro.engine.synchronous import SynchronousScheduler
from repro.network.batch import MESSAGE_PLANES, resolve_message_plane
from repro.network.topology import Topology
from repro.utils.rng import SeedLike

#: Scheduler names accepted by :func:`make_scheduler` (and the
#: ``ExperimentConfig.scheduler`` field / sweep axis).
SCHEDULER_NAMES = ("synchronous", "partial", "lossy", "asynchronous")


def make_scheduler(
    name: str,
    n: int,
    byzantine: Iterable[int] = (),
    *,
    delay: int = 0,
    delay_prob: float = 0.5,
    drop_rate: float = 0.0,
    crash_schedule: Iterable[Sequence[int]] = (),
    wait_count: int = 0,
    wait_timeout: float = 0.0,
    burstiness: float = 0.0,
    seed: SeedLike = 0,
    keep_history: bool = True,
    max_history: Optional[int] = None,
    require_full_broadcast: bool = True,
    message_plane: Optional[str] = None,
    node_trace: bool = False,
    topology: Optional[Topology] = None,
    rng_mode: Optional[str] = None,
) -> RoundEngine:
    """Instantiate a scheduler by name.

    ``delay`` is the delivery horizon of the partially synchronous
    scheduler (required >= 1 there, meaningless elsewhere);
    ``drop_rate`` and ``crash_schedule`` configure the lossy scheduler;
    ``wait_count`` / ``wait_timeout`` / ``burstiness`` configure the
    event-driven asynchronous scheduler (``wait_timeout`` required > 0
    there — it has no delivery horizon, so the wait window must be
    explicit).  Passing a knob to a scheduler that cannot honour it is
    an error — a sweep axis that silently did nothing would corrupt
    conclusions.  ``require_full_broadcast=False`` builds the engine in
    star mode (honest senders may address a single receiver — the
    centralized trainer's client -> server exchange).  ``message_plane``
    / ``node_trace`` select the delivery representation and per-node
    trace recording (see :class:`RoundEngine`); ``topology`` installs a
    sparse communication graph every scheduler intersects with its own
    delivery decisions (``None`` = all-to-all).  ``rng_mode`` selects
    the draw strategy of the stochastic schedulers (``"scalar"`` =
    bitwise reference, ``"vectorized"`` = batched whole-round draws with
    a statistical contract; ``None`` reads ``REPRO_RNG_MODE``) — the
    deterministic synchronous scheduler and the lossy scheduler have no
    vectorizable delay stream, so ``"vectorized"`` is an error there.
    """
    key = str(name).strip().lower()
    mode = resolve_rng_mode(rng_mode)
    common = dict(
        keep_history=keep_history,
        max_history=max_history,
        require_full_broadcast=require_full_broadcast,
        message_plane=message_plane,
        node_trace=node_trace,
        topology=topology,
    )
    if key != "asynchronous" and (wait_count or wait_timeout or burstiness):
        raise ValueError(
            "wait_count/wait_timeout/burstiness are only meaningful for "
            "scheduler='asynchronous'"
        )
    if key not in ("partial", "asynchronous") and rng_mode is not None and mode != "scalar":
        raise ValueError(
            "rng_mode='vectorized' is only meaningful for the stochastic-delay "
            "schedulers ('partial', 'asynchronous')"
        )
    if key == "synchronous":
        if delay or drop_rate or tuple(crash_schedule):
            raise ValueError(
                "the synchronous scheduler takes no delay/drop_rate/crash_schedule"
            )
        return SynchronousScheduler(n, byzantine, **common)
    if key == "partial":
        if drop_rate or tuple(crash_schedule):
            raise ValueError(
                "the partial scheduler models delays; use scheduler='lossy' "
                "for drop_rate/crash_schedule"
            )
        if delay < 1:
            raise ValueError("scheduler='partial' needs a delivery horizon delay >= 1")
        return PartiallySynchronousScheduler(
            n, byzantine, max_delay=delay, delay_prob=delay_prob, seed=seed,
            rng_mode=mode, **common,
        )
    if key == "lossy":
        if delay:
            raise ValueError(
                "the lossy scheduler models loss/crashes; use scheduler='partial' for delays"
            )
        return LossyScheduler(
            n, byzantine, drop_rate=drop_rate, crash_schedule=crash_schedule,
            seed=seed, **common,
        )
    if key == "asynchronous":
        if delay or drop_rate or tuple(crash_schedule):
            raise ValueError(
                "the asynchronous scheduler draws its own delays; it takes no "
                "delay/drop_rate/crash_schedule"
            )
        if wait_timeout <= 0.0:
            raise ValueError(
                "scheduler='asynchronous' needs wait_timeout > 0 (there is no "
                "delivery horizon; the wait window must be explicit)"
            )
        return AsynchronousScheduler(
            n, byzantine, wait_count=wait_count, timeout_rounds=wait_timeout,
            burstiness=burstiness, seed=seed, rng_mode=mode, **common,
        )
    raise ValueError(f"unknown scheduler {name!r}; available: {SCHEDULER_NAMES}")


__all__ = [
    "AsynchronousScheduler",
    "LossyScheduler",
    "MESSAGE_PLANES",
    "PartiallySynchronousScheduler",
    "RNG_MODES",
    "RoundEngine",
    "SCHEDULER_NAMES",
    "SynchronousScheduler",
    "WaitCondition",
    "attack_adversary_plan",
    "make_scheduler",
    "normalise_crash_schedule",
    "resolve_message_plane",
    "resolve_rng_mode",
    "run_exchange",
]
