"""Event-driven asynchronous scheduler: no delivery horizon.

The partially synchronous scheduler bounds every lag by a known horizon;
real asynchronous message processes have no such bound and are bursty
rather than uniformly delayed (MMPP-style traffic has a squared
coefficient of variation above one).  This scheduler models that
directly:

- **Arrival times, not lags.**  Every (sender, receiver) link draws a
  continuous delay from a seeded heavy-tailed (Pareto) distribution and
  the message is booked at ``send_time + delay`` on the engine's
  monotone round clock.  There is no cap: a message may arrive many
  rounds late.
- **Regime modulation.**  A two-state Markov chain (calm / bursty,
  advanced once per round) multiplies the drawn delays by
  ``burst_factor`` while the network is in the bursty regime — the
  MMPP-flavoured burstiness knob, exposed as the ``burstiness`` config
  field.
- **Wait conditions instead of a full inbox.**  With no horizon a node
  cannot know when "everything" has arrived, so consumers must state an
  explicit :class:`~repro.engine.base.WaitCondition` via
  :meth:`~repro.engine.base.RoundEngine.wait_for`: the node processes
  its round once ``count`` (or the quorum) messages have arrived, or
  after ``timeout_rounds`` of virtual waiting, whichever comes first —
  delivering *everything* arrived by that decision time.  Submitting a
  round without a wait condition is an error by design.

Common random numbers: the per-link delay variate is drawn for every
link of every round in a fixed order, whether or not an adversary pins
that link's lag through ``BroadcastPlan.delays``, so paired-seed
scenarios stay comparable across attack and wait-condition changes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.base import RoundEngine
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan
from repro.utils.rng import SeedLike, as_generator

#: (arrival_time, send_round, sender, message) — the sort key order is
#: the delivery order, which keeps executions deterministic per seed.
_InFlight = Tuple[float, int, int, Message]


class AsynchronousScheduler(RoundEngine):
    """Event-driven delivery with heavy-tailed, regime-modulated delays.

    Parameters
    ----------
    delay_scale:
        Scale of the Pareto delay (in rounds) while the network is calm.
    tail_index:
        Pareto tail exponent ``alpha > 1`` (smaller = heavier tail).
    burstiness:
        Per-round probability of entering the bursty regime, in
        ``[0, 1)``.  ``0`` disables modulation entirely.
    burst_factor:
        Delay multiplier while bursty.
    calm_prob:
        Per-round probability of leaving the bursty regime.
    timeout_rounds:
        Default wait timeout (virtual rounds past the round start) used
        when the wait condition does not pin its own.
    wait_count:
        Optional explicit message target installed as the initial wait
        condition (``0`` leaves it unset for consumers to fill in).
    seed:
        Seed of the scheduler's delay/regime generator.
    """

    records_stats = True

    def __init__(
        self,
        n: int,
        byzantine: Iterable[int] = (),
        *,
        delay_scale: float = 0.5,
        tail_index: float = 2.5,
        burstiness: float = 0.0,
        burst_factor: float = 6.0,
        calm_prob: float = 0.5,
        timeout_rounds: float = 4.0,
        wait_count: int = 0,
        seed: SeedLike = 0,
        keep_history: bool = True,
        max_history: Optional[int] = None,
        require_full_broadcast: bool = True,
    ) -> None:
        super().__init__(
            n, byzantine, keep_history=keep_history, max_history=max_history,
            require_full_broadcast=require_full_broadcast,
        )
        if delay_scale < 0.0:
            raise ValueError(f"delay_scale must be non-negative, got {delay_scale}")
        if tail_index <= 1.0:
            raise ValueError(
                f"tail_index must exceed 1 (finite-mean Pareto), got {tail_index}"
            )
        if not 0.0 <= burstiness < 1.0:
            raise ValueError(f"burstiness must be in [0, 1), got {burstiness}")
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
        if not 0.0 < calm_prob <= 1.0:
            raise ValueError(f"calm_prob must be in (0, 1], got {calm_prob}")
        if timeout_rounds <= 0.0:
            raise ValueError(f"timeout_rounds must be positive, got {timeout_rounds}")
        if wait_count < 0:
            raise ValueError(f"wait_count must be non-negative, got {wait_count}")
        self.delay_scale = float(delay_scale)
        self.tail_index = float(tail_index)
        self.burstiness = float(burstiness)
        self.burst_factor = float(burst_factor)
        self.calm_prob = float(calm_prob)
        self.timeout_rounds = float(timeout_rounds)
        if wait_count:
            self.wait_for(count=wait_count)
        #: Timing attacks read the default wait window as their slack.
        self.horizon = max(1, int(math.ceil(self.timeout_rounds)))
        self.stats["expired_at_reset"] = 0
        self._rng = as_generator(seed)
        self._bursty = False
        self._pending: Dict[int, List[_InFlight]] = {node: [] for node in range(self.n)}

    # -- delay model -----------------------------------------------------------
    def _advance_regime(self) -> None:
        """One step of the calm/bursty modulating chain (drawn every round)."""
        u = self._rng.random()
        if self._bursty:
            self._bursty = u >= self.calm_prob
        else:
            self._bursty = u < self.burstiness

    def _draw_delay(self) -> float:
        """One heavy-tailed link delay in rounds (Pareto, regime-scaled)."""
        u = self._rng.random()
        delay = self.delay_scale * ((1.0 - u) ** (-1.0 / self.tail_index) - 1.0)
        return delay * self.burst_factor if self._bursty else delay

    # -- wait-condition resolution --------------------------------------------
    def _wait_target(self) -> int:
        if self.wait.count is not None:
            return self.wait.count
        if self.wait.quorum:
            return self._min_honest_messages
        raise RuntimeError(
            "the asynchronous scheduler has no delivery horizon; consumers must "
            "state an explicit wait condition via wait_for(count=... | quorum=True) "
            "before submitting a round"
        )

    def _decision_time(self, arrivals: List[float], t0: float, target: int) -> float:
        """When a node stops waiting: ``target`` arrivals or the timeout.

        ``arrivals`` must be sorted ascending.  The node never decides
        before the round starts (messages already queued count) and
        never waits past ``t0 + timeout``.
        """
        timeout = (
            self.wait.timeout_rounds
            if self.wait.timeout_rounds is not None
            else self.timeout_rounds
        )
        deadline = t0 + timeout
        if 0 < target <= len(arrivals):
            return min(deadline, max(t0, arrivals[target - 1]))
        return deadline

    # -- delivery --------------------------------------------------------------
    def _deliver(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        target = self._wait_target()  # fail fast, before any RNG draw
        t0 = float(self.rounds_executed)
        self._advance_regime()
        fresh: List[Tuple[int, _InFlight]] = []
        for plan, message in self._validated_messages(plans, round_index):
            for receiver in range(self.n):
                if not plan.delivers_to(receiver):
                    continue
                # Draw unconditionally (common random numbers), then let
                # self-delivery / pinned adversary lags override.
                drawn = self._draw_delay()
                if receiver == plan.sender:
                    lag = 0.0
                elif plan.delays is not None and receiver in plan.delays:
                    lag = float(plan.delay_to(receiver))  # uncapped: no horizon
                else:
                    lag = drawn
                self.stats["sent"] += 1
                entry = (t0 + lag, round_index, plan.sender, message)
                self._pending[receiver].append(entry)
                fresh.append((receiver, entry))

        inboxes: Dict[int, List[Message]] = {node: [] for node in range(self.n)}
        decisions: Dict[int, float] = {}
        for receiver in range(self.n):
            queue = sorted(self._pending[receiver], key=lambda e: e[:3])
            decision = self._decision_time([e[0] for e in queue], t0, target)
            decisions[receiver] = decision
            arrived = [e for e in queue if e[0] <= decision]
            self._pending[receiver] = [e for e in queue if e[0] > decision]
            for _arrival, _send_round, _sender, message in arrived:
                inboxes[receiver].append(message)
                self.stats["delivered"] += 1
        # A message sent this round but not delivered in it was late.
        self.stats["delayed"] += sum(
            1 for receiver, entry in fresh if entry[0] > decisions[receiver]
        )
        return inboxes

    # -- lifecycle -------------------------------------------------------------
    def pending_count(self) -> int:
        """Messages currently in flight (sent but not yet delivered)."""
        return sum(len(queue) for queue in self._pending.values())

    def reset(self) -> None:
        """Drop history and expire in-flight messages at the exchange boundary.

        Asynchrony never loses messages; ones still in flight when an
        exchange ends simply arrive too late to matter and are counted
        under ``expired_at_reset`` (never ``dropped``).
        """
        self.stats["expired_at_reset"] += self.pending_count()
        for queue in self._pending.values():
            queue.clear()
        super().reset()
