"""Event-driven asynchronous scheduler: no delivery horizon.

The partially synchronous scheduler bounds every lag by a known horizon;
real asynchronous message processes have no such bound and are bursty
rather than uniformly delayed (MMPP-style traffic has a squared
coefficient of variation above one).  This scheduler models that
directly:

- **Arrival times, not lags.**  Every (sender, receiver) link draws a
  continuous delay from a seeded heavy-tailed (Pareto) distribution and
  the message is booked at ``send_time + delay`` on the engine's
  monotone round clock.  There is no cap: a message may arrive many
  rounds late.
- **Regime modulation.**  A two-state Markov chain (calm / bursty,
  advanced once per round) multiplies the drawn delays by
  ``burst_factor`` while the network is in the bursty regime — the
  MMPP-flavoured burstiness knob, exposed as the ``burstiness`` config
  field.
- **Wait conditions instead of a full inbox.**  With no horizon a node
  cannot know when "everything" has arrived, so consumers must state an
  explicit :class:`~repro.engine.base.WaitCondition` via
  :meth:`~repro.engine.base.RoundEngine.wait_for`: the node processes
  its round once ``count`` (or the quorum) messages have arrived, or
  after ``timeout_rounds`` of virtual waiting, whichever comes first —
  delivering *everything* arrived by that decision time.  Submitting a
  round without a wait condition is an error by design.

Common random numbers: the per-link delay variate is drawn for every
link of every round in a fixed order, whether or not an adversary pins
that link's lag through ``BroadcastPlan.delays``, so paired-seed
scenarios stay comparable across attack and wait-condition changes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.base import RoundEngine, resolve_rng_mode
from repro.network.batch import BatchInbox, RoundBatch
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan
from repro.utils.rng import SeedLike, as_generator

#: (arrival_time, send_round, sender, message) — the sort key order is
#: the delivery order, which keeps executions deterministic per seed.
_InFlight = Tuple[float, int, int, Message]


def _empty_links() -> Tuple[np.ndarray, ...]:
    """The batch plane's in-flight store: six parallel link arrays.

    ``(arrival, send_round, sender, receiver, batch_id, row)`` — one
    entry per undelivered link, with ``batch_id`` indexing the engine's
    in-flight batch registry and ``row`` the link's row in that batch.
    """
    return (
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )


class AsynchronousScheduler(RoundEngine):
    """Event-driven delivery with heavy-tailed, regime-modulated delays.

    Parameters
    ----------
    delay_scale:
        Scale of the Pareto delay (in rounds) while the network is calm.
    tail_index:
        Pareto tail exponent ``alpha > 1`` (smaller = heavier tail).
    burstiness:
        Per-round probability of entering the bursty regime, in
        ``[0, 1)``.  ``0`` disables modulation entirely.
    burst_factor:
        Delay multiplier while bursty.
    calm_prob:
        Per-round probability of leaving the bursty regime.
    timeout_rounds:
        Default wait timeout (virtual rounds past the round start) used
        when the wait condition does not pin its own.
    wait_count:
        Optional explicit message target installed as the initial wait
        condition (``0`` leaves it unset for consumers to fill in).
    seed:
        Seed of the scheduler's delay/regime generator.
    rng_mode:
        ``"scalar"`` (default) applies the Pareto transform through
        Python-float arithmetic, bitwise-identical to the pinned
        per-message reference.  ``"vectorized"`` runs the transform as
        one numpy expression over the whole round's uniforms — same
        draw count and order, but numpy's SIMD ``pow`` differs from
        scalar ``pow`` by an ulp on a few percent of inputs, so the
        mode is validated statistically (``tests/test_rng_modes.py``)
        and requires the batch message plane.  ``None`` reads
        ``REPRO_RNG_MODE``.
    """

    records_stats = True

    def __init__(
        self,
        n: int,
        byzantine: Iterable[int] = (),
        *,
        delay_scale: float = 0.5,
        tail_index: float = 2.5,
        burstiness: float = 0.0,
        burst_factor: float = 6.0,
        calm_prob: float = 0.5,
        timeout_rounds: float = 4.0,
        wait_count: int = 0,
        seed: SeedLike = 0,
        keep_history: bool = True,
        max_history: Optional[int] = None,
        require_full_broadcast: bool = True,
        message_plane: Optional[str] = None,
        node_trace: bool = False,
        topology=None,
        rng_mode: Optional[str] = None,
    ) -> None:
        super().__init__(
            n, byzantine, keep_history=keep_history, max_history=max_history,
            require_full_broadcast=require_full_broadcast,
            message_plane=message_plane, node_trace=node_trace,
            topology=topology,
        )
        self.rng_mode = resolve_rng_mode(rng_mode)
        if self.rng_mode == "vectorized" and self.message_plane != "batch":
            raise ValueError(
                "rng_mode='vectorized' requires the batch message plane "
                "(the object plane is the per-message bitwise reference)"
            )
        if delay_scale < 0.0:
            raise ValueError(f"delay_scale must be non-negative, got {delay_scale}")
        if tail_index <= 1.0:
            raise ValueError(
                f"tail_index must exceed 1 (finite-mean Pareto), got {tail_index}"
            )
        if not 0.0 <= burstiness < 1.0:
            raise ValueError(f"burstiness must be in [0, 1), got {burstiness}")
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
        if not 0.0 < calm_prob <= 1.0:
            raise ValueError(f"calm_prob must be in (0, 1], got {calm_prob}")
        if timeout_rounds <= 0.0:
            raise ValueError(f"timeout_rounds must be positive, got {timeout_rounds}")
        if wait_count < 0:
            raise ValueError(f"wait_count must be non-negative, got {wait_count}")
        self.delay_scale = float(delay_scale)
        self.tail_index = float(tail_index)
        self.burstiness = float(burstiness)
        self.burst_factor = float(burst_factor)
        self.calm_prob = float(calm_prob)
        self.timeout_rounds = float(timeout_rounds)
        if wait_count:
            self.wait_for(count=wait_count)
        #: Timing attacks read the default wait window as their slack.
        self.horizon = max(1, int(math.ceil(self.timeout_rounds)))
        self.stats["expired_at_reset"] = 0
        self._rng = as_generator(seed)
        self._bursty = False
        self._pending: Dict[int, List[_InFlight]] = {node: [] for node in range(self.n)}
        # Batch-plane analogue of ``_pending``: parallel link arrays plus
        # a registry of the batches those links reference (pruned as
        # their last link delivers).
        self._pending_links: Tuple[np.ndarray, ...] = _empty_links()
        self._batches_in_flight: Dict[int, RoundBatch] = {}
        self._batch_seq = 0

    # -- delay model -----------------------------------------------------------
    def _advance_regime(self) -> None:
        """One step of the calm/bursty modulating chain (drawn every round)."""
        u = self._rng.random()
        if self._bursty:
            self._bursty = u >= self.calm_prob
        else:
            self._bursty = u < self.burstiness

    def _draw_delay(self) -> float:
        """One heavy-tailed link delay in rounds (Pareto, regime-scaled)."""
        u = self._rng.random()
        delay = self.delay_scale * ((1.0 - u) ** (-1.0 / self.tail_index) - 1.0)
        return delay * self.burst_factor if self._bursty else delay

    # -- wait-condition resolution --------------------------------------------
    def _wait_target(self) -> int:
        if self.wait.count is not None:
            return self.wait.count
        if self.wait.quorum:
            return self._min_honest_messages
        raise RuntimeError(
            "the asynchronous scheduler has no delivery horizon; consumers must "
            "state an explicit wait condition via wait_for(count=... | quorum=True) "
            "before submitting a round"
        )

    def _decision_time(self, arrivals: List[float], t0: float, target: int) -> float:
        """When a node stops waiting: ``target`` arrivals or the timeout.

        ``arrivals`` must be sorted ascending.  The node never decides
        before the round starts (messages already queued count) and
        never waits past ``t0 + timeout``.
        """
        timeout = (
            self.wait.timeout_rounds
            if self.wait.timeout_rounds is not None
            else self.timeout_rounds
        )
        deadline = t0 + timeout
        if 0 < target <= len(arrivals):
            return min(deadline, max(t0, arrivals[target - 1]))
        return deadline

    # -- delivery --------------------------------------------------------------
    def _deliver_object(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        target = self._wait_target()  # fail fast, before any RNG draw
        t0 = float(self.rounds_executed)
        self._advance_regime()
        fresh: List[Tuple[int, _InFlight]] = []
        for plan, message in self._validated_messages(plans, round_index):
            for receiver in range(self.n):
                if not self._delivers_to(plan, receiver):
                    continue
                # Draw unconditionally (common random numbers), then let
                # self-delivery / pinned adversary lags override.
                drawn = self._draw_delay()
                if receiver == plan.sender:
                    lag = 0.0
                elif plan.delays is not None and receiver in plan.delays:
                    lag = float(plan.delay_to(receiver))  # uncapped: no horizon
                else:
                    lag = drawn
                self.stats["sent"] += 1
                entry = (t0 + lag, round_index, plan.sender, message)
                self._pending[receiver].append(entry)
                fresh.append((receiver, entry))

        inboxes: Dict[int, List[Message]] = {node: [] for node in range(self.n)}
        decisions: Dict[int, float] = {}
        for receiver in range(self.n):
            queue = sorted(self._pending[receiver], key=lambda e: e[:3])
            decision = self._decision_time([e[0] for e in queue], t0, target)
            decisions[receiver] = decision
            arrived = [e for e in queue if e[0] <= decision]
            self._pending[receiver] = [e for e in queue if e[0] > decision]
            for _arrival, _send_round, _sender, message in arrived:
                inboxes[receiver].append(message)
                self.stats["delivered"] += 1
        # A message sent this round but not delivered in it was late.
        self.stats["delayed"] += sum(
            1 for receiver, entry in fresh if entry[0] > decisions[receiver]
        )
        return inboxes

    def _deliver_batch(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, BatchInbox]:
        target = self._wait_target()  # fail fast, before any RNG draw
        n = self.n
        t0 = float(self.rounds_executed)
        batch = self._validated_batch(plans, round_index)
        self._advance_regime()

        arrival, send_round, sender, receiver, bid, row = self._pending_links
        fresh_arrival = np.empty(0, dtype=np.float64)
        fresh_recv = np.empty(0, dtype=np.int64)
        if batch is not None:
            num_senders = batch.num_senders
            if batch.delivers is None:
                row_idx = np.repeat(batch.full_rows(), n)
                recv_idx = np.tile(np.arange(n, dtype=np.int64), num_senders)
            else:
                coords = np.argwhere(batch.delivers)
                row_idx = coords[:, 0]
                recv_idx = coords[:, 1]
            k = int(row_idx.shape[0])
            # Common random numbers: one stream-identical vectorized fill
            # for the k delivering links in the object plane's C-order
            # walk (sender asc, receiver asc).
            variates = self._rng.random(size=k)
            scale = self.delay_scale
            power = -1.0 / self.tail_index
            if self.rng_mode == "vectorized":
                # Whole-round Pareto transform as one numpy expression.
                # Same uniforms, but SIMD pow differs from scalar pow by
                # an ulp on a few percent of inputs — the statistical
                # (not bitwise) contract of vectorized mode.
                lags = scale * ((1.0 - variates) ** power - 1.0)
            else:
                # Scalar mode keeps Python-float arithmetic because
                # numpy's SIMD pow kernel differs from scalar pow by an
                # ulp on ~5% of inputs; the subsequent burst/shift
                # arithmetic is elementwise and therefore
                # bitwise-identical either way.
                lags = np.fromiter(
                    (scale * ((1.0 - u) ** power - 1.0) for u in variates.tolist()),
                    dtype=np.float64,
                    count=k,
                )
            if self._bursty:
                lags *= self.burst_factor
            link_senders = batch.senders[row_idx]
            lags[link_senders == recv_idx] = 0.0
            if any(delay_map for delay_map in batch.delays):
                keys = row_idx * n + recv_idx  # ascending (C-order coords)
                for i, delay_map in enumerate(batch.delays):
                    if delay_map:
                        for recv, pinned in delay_map.items():
                            if int(batch.senders[i]) == recv:
                                continue  # self-delivery wins over a pin
                            pos = int(np.searchsorted(keys, i * n + recv))
                            if pos < k and keys[pos] == i * n + recv:
                                lags[pos] = float(pinned)  # uncapped
            self.stats["sent"] += k
            self._node_counter("sent")[:] += np.bincount(recv_idx, minlength=n)
            fresh_arrival = t0 + lags
            fresh_recv = recv_idx
            batch_id = self._batch_seq
            self._batch_seq += 1
            self._batches_in_flight[batch_id] = batch
            arrival = np.concatenate([arrival, fresh_arrival])
            send_round = np.concatenate(
                [send_round, np.full(k, round_index, dtype=np.int64)]
            )
            sender = np.concatenate([sender, link_senders])
            receiver = np.concatenate([receiver, recv_idx])
            bid = np.concatenate([bid, np.full(k, batch_id, dtype=np.int64)])
            row = np.concatenate([row, row_idx])

        # Per receiver, deliver everything arrived by its decision time,
        # in (arrival, send_round, sender) order — one global lexsort
        # with the receiver as outermost key replaces the per-receiver
        # Python sorts of the object plane.
        order = np.lexsort((sender, send_round, arrival, receiver))
        arr_sorted = arrival[order]
        recv_sorted = receiver[order]
        starts = np.searchsorted(recv_sorted, np.arange(n), side="left")
        ends = np.searchsorted(recv_sorted, np.arange(n), side="right")
        timeout = (
            self.wait.timeout_rounds
            if self.wait.timeout_rounds is not None
            else self.timeout_rounds
        )
        deadline = t0 + timeout
        decisions = np.full(n, deadline, dtype=np.float64)
        if target > 0:
            reached = (ends - starts) >= target
            decisions[reached] = np.minimum(
                deadline, np.maximum(t0, arr_sorted[starts[reached] + target - 1])
            )
        counts = np.empty(n, dtype=np.int64)
        for node in range(n):
            counts[node] = np.searchsorted(
                arr_sorted[starts[node] : ends[node]], decisions[node], side="right"
            )
        positions = np.arange(arr_sorted.shape[0], dtype=np.int64)
        arrived = (positions - starts[recv_sorted]) < counts[recv_sorted]

        num_delivered = int(np.count_nonzero(arrived))
        self.stats["delivered"] += num_delivered
        if num_delivered:
            self._node_counter("delivered")[:] += np.bincount(
                recv_sorted[arrived], minlength=n
            )
        if fresh_recv.size:
            late = fresh_arrival > decisions[fresh_recv]
            num_late = int(np.count_nonzero(late))
            if num_late:
                self.stats["delayed"] += num_late
                self._node_counter("delayed")[:] += np.bincount(
                    fresh_recv[late], minlength=n
                )

        bid_sorted = bid[order]
        row_sorted = row[order]
        keep = order[~arrived]
        self._pending_links = (
            arrival[keep], send_round[keep], sender[keep],
            receiver[keep], bid[keep], row[keep],
        )
        bids_present = np.unique(bid_sorted[arrived]) if num_delivered else bid_sorted[:0]
        local = np.searchsorted(bids_present, bid_sorted) if num_delivered else bid_sorted
        batches_tuple = tuple(
            self._batches_in_flight[int(key)] for key in bids_present
        )
        # Prune the registry to batches that still have links in flight
        # (the inboxes built below hold their own references).
        live = set(np.unique(self._pending_links[4]).tolist())
        self._batches_in_flight = {
            key: value for key, value in self._batches_in_flight.items() if key in live
        }
        empty = BatchInbox.empty()
        inboxes: Dict[int, BatchInbox] = {}
        for node in range(n):
            count = int(counts[node])
            if count == 0:
                inboxes[node] = empty
                continue
            segment = slice(starts[node], starts[node] + count)
            local_bids = local[segment]
            rows = row_sorted[segment]
            if local_bids[0] == local_bids[-1] and (
                count <= 2 or (local_bids == local_bids[0]).all()
            ):
                inboxes[node] = BatchInbox.single(
                    batches_tuple[int(local_bids[0])], rows
                )
            else:
                inboxes[node] = BatchInbox(batches_tuple, rows, local_bids)
        return inboxes

    # -- lifecycle -------------------------------------------------------------
    def pending_count(self) -> int:
        """Messages currently in flight (sent but not yet delivered)."""
        return sum(len(queue) for queue in self._pending.values()) + int(
            self._pending_links[0].shape[0]
        )

    def pending_count_per_node(self) -> np.ndarray:
        counts = np.zeros(self.n, dtype=np.int64)
        for node, queue in self._pending.items():
            counts[node] += len(queue)
        counts += np.bincount(self._pending_links[3], minlength=self.n)
        return counts

    def reset(self) -> None:
        """Drop history and expire in-flight messages at the exchange boundary.

        Asynchrony never loses messages; ones still in flight when an
        exchange ends simply arrive too late to matter and are counted
        under ``expired_at_reset`` (never ``dropped``).
        """
        expired = self.pending_count()
        self.stats["expired_at_reset"] += expired
        if expired and self.message_plane == "batch":
            self._node_counter("expired_at_reset")[:] += self.pending_count_per_node()
        for queue in self._pending.values():
            queue.clear()
        self._pending_links = _empty_links()
        self._batches_in_flight.clear()
        super().reset()
