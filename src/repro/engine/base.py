"""The :class:`RoundEngine` protocol every scheduler implements.

A round engine owns the *timing model* of a multi-round protocol: per
round it collects one :class:`~repro.network.reliable_broadcast.BroadcastPlan`
per node, decides which (sender, receiver) links deliver *now* and which
deliver later (or never), and hands each node its inbox as a
:class:`~repro.network.delivery.RoundResult`.  Consumers — the agreement
protocol, both trainers — submit plans and consume inboxes; they never
reimplement delivery.

Concrete schedulers:

- :class:`~repro.engine.synchronous.SynchronousScheduler` — lock-step
  delivery, bitwise-identical to the original ``SynchronousNetwork``;
- :class:`~repro.engine.partial.PartiallySynchronousScheduler` —
  per-link random delays bounded by a delivery horizon;
- :class:`~repro.engine.lossy.LossyScheduler` — seeded per-link message
  loss plus transient crash/recovery windows;
- :class:`~repro.engine.asynchronous.AsynchronousScheduler` —
  event-driven delivery with no horizon: heavy-tailed regime-modulated
  arrival times and explicit per-node :class:`WaitCondition`s.
"""

from __future__ import annotations

import abc
import os
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.batch import (
    BatchInbox,
    RoundBatch,
    build_round_batch,
    resolve_message_plane,
)
from repro.network.delivery import (
    AdversaryPlanFn,
    HonestPlanFn,
    RoundResult,
    collect_plans,
    enforce_quorum,
)
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan, ReliableBroadcast
from repro.network.topology import Topology

#: RNG draw strategies of the stochastic schedulers.  ``"scalar"`` is
#: the pinned reference: per-link draws in the exact order the bitwise
#: equivalence fixtures were generated with.  ``"vectorized"`` draws
#: whole-round vectors instead — a different (but identically
#: distributed) stream, validated statistically in
#: ``tests/test_rng_modes.py`` rather than bitwise.
RNG_MODES = ("scalar", "vectorized")


def resolve_rng_mode(mode: Optional[str]) -> str:
    """Normalise an ``rng_mode`` selector to a canonical mode name.

    ``None`` reads the ``REPRO_RNG_MODE`` environment variable and
    falls back to ``"scalar"`` — the bitwise-pinned default, mirroring
    how ``message_plane=None`` resolves through ``REPRO_MESSAGE_PLANE``.
    """
    if mode is None:
        mode = os.environ.get("REPRO_RNG_MODE") or None
    if mode is None:
        return "scalar"
    key = str(mode).strip().lower()
    if key not in RNG_MODES:
        raise ValueError(f"unknown rng_mode {mode!r}; available: {RNG_MODES}")
    return key


@dataclass(frozen=True)
class WaitCondition:
    """When a node stops waiting for its round inbox.

    Horizon-based schedulers (synchronous, partial, lossy) decide
    delivery on their own and ignore this; the event-driven
    :class:`~repro.engine.asynchronous.AsynchronousScheduler` has no
    delivery horizon, so every consumer must state explicitly how long a
    node waits before processing whatever has arrived:

    - ``count`` — wait until this many messages (own delivery included)
      have arrived for the round;
    - ``quorum`` — wait until the engine's configured quorum
      (:meth:`RoundEngine.require_quorum`) has arrived;
    - ``timeout_rounds`` — never wait longer than this many rounds of
      virtual time past the round start, whether or not the target was
      reached (``None`` falls back to the scheduler's default).

    ``count`` wins over ``quorum`` when both are set, which lets an
    experiment config pin an explicit count while consumers request the
    quorum reading as their default.
    """

    count: Optional[int] = None
    quorum: bool = False
    timeout_rounds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.count is not None and self.count < 0:
            raise ValueError(f"wait count must be non-negative, got {self.count}")
        if self.timeout_rounds is not None and self.timeout_rounds <= 0:
            raise ValueError(
                f"wait timeout_rounds must be positive, got {self.timeout_rounds}"
            )

    @property
    def explicit(self) -> bool:
        """Whether the condition names a message target at all."""
        return self.count is not None or self.quorum


class RoundEngine(abc.ABC):
    """Scheduler-pluggable round executor for ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes.
    byzantine:
        Ids of Byzantine nodes.
    keep_history:
        Whether completed :class:`RoundResult` objects (with their full
        inboxes) are retained on :attr:`history`.  Trainers run thousands
        of rounds and disable this; interactive / test use keeps it on.
    max_history:
        Upper bound on retained round results (oldest dropped first);
        ``None`` means unbounded.
    require_full_broadcast:
        Forwarded to :class:`ReliableBroadcast`: ``True`` (default)
        enforces the agreement protocols' full-broadcast contract on
        honest senders; ``False`` admits star-shaped exchanges where an
        honest plan addresses a single receiver.
    message_plane:
        ``"batch"`` (default) routes delivery through the array-backed
        batch plane (:mod:`repro.network.batch`); ``"object"`` keeps the
        per-message reference plane the pinned fixtures were generated
        on.  Both planes are bitwise-equivalent; ``None`` reads the
        ``REPRO_MESSAGE_PLANE`` environment variable.
    node_trace:
        When true, the engine additionally records one *per-node* delta
        row per round (see :meth:`node_trace_snapshot`) on top of the
        cumulative per-node counters it always maintains on the batch
        plane.  Requires the batch plane.
    topology:
        Optional :class:`~repro.network.topology.Topology` restricting
        which (sender, receiver) links exist at all.  ``None`` (and the
        complete topology — detected, so ``topology="complete"`` stays
        bitwise-identical to no topology) means all-to-all.  A sparse
        topology's mask is intersected with each round's delivery mask
        *before* the scheduler's own drop/crash/delay decisions, so
        drop-rate and delay RNG draws only cover links that exist — the
        topology cut composes with, never replaces, the timing model.
    """

    #: Extra rounds a message may lag behind its send round (0 = lock-step).
    horizon: int = 0
    #: Whether this scheduler produces delivery statistics worth reporting.
    records_stats: bool = False
    #: RNG draw strategy (see :data:`RNG_MODES`).  Deterministic
    #: schedulers are trivially ``"scalar"``; the stochastic ones accept
    #: an ``rng_mode`` parameter and override this per instance.
    rng_mode: str = "scalar"

    def __init__(
        self,
        n: int,
        byzantine: Iterable[int] = (),
        *,
        keep_history: bool = True,
        max_history: Optional[int] = None,
        require_full_broadcast: bool = True,
        message_plane: Optional[str] = None,
        node_trace: bool = False,
        topology: Optional[Topology] = None,
    ) -> None:
        self.broadcast = ReliableBroadcast(
            n, byzantine, require_full_broadcast=require_full_broadcast
        )
        if message_plane is None:
            message_plane = os.environ.get("REPRO_MESSAGE_PLANE") or None
        self.message_plane = resolve_message_plane(message_plane)
        self.node_trace = bool(node_trace)
        if self.node_trace and self.message_plane != "batch":
            raise ValueError(
                "per-node delivery traces require the batch message plane "
                "(the object plane only maintains aggregate counters)"
            )
        self.n = self.broadcast.n
        self.byzantine = self.broadcast.byzantine
        self.honest = tuple(sorted(set(range(self.n)) - set(self.byzantine)))
        self._min_honest_messages = 0
        self._quorum_policy = "raise"
        self.keep_history = bool(keep_history)
        if max_history is not None and max_history < 0:
            raise ValueError("max_history must be non-negative")
        self.max_history = max_history
        self.history: Sequence[RoundResult] = (
            deque(maxlen=max_history) if max_history is not None else []
        )
        self.stats: Dict[str, int] = {
            "sent": 0, "delivered": 0, "dropped": 0, "delayed": 0, "crash_omitted": 0,
        }
        #: Per-round delivery deltas (see :meth:`trace_snapshot`); only
        #: populated by schedulers whose delivery is worth reporting.
        self.traces: List[Dict[str, int]] = []
        #: Cumulative per-node counters, receiver-attributed: for every
        #: counter key, an ``(n,)`` int64 array whose entry ``r`` counts
        #: the links *addressed to* node ``r`` with that outcome.  Only
        #: the batch plane maintains these (columns sum to the matching
        #: :attr:`stats` entry there); empty on the object plane.
        self.node_stats: Dict[str, np.ndarray] = {}
        #: Per-round per-node delta rows (populated when ``node_trace``).
        self.node_traces: List[Dict[str, object]] = []
        self.topology: Optional[Topology] = None
        self._topology_mask: Optional[np.ndarray] = None
        self.set_topology(topology)
        self.wait = WaitCondition()
        #: Monotone count of rounds this engine has executed, across
        #: exchanges.  Crash schedules are expressed against this clock,
        #: so a window covers wall-clock training rounds even when the
        #: per-exchange ``round_index`` restarts at 0 every iteration.
        self.rounds_executed = 0

    # -- configuration --------------------------------------------------------
    def set_topology(self, topology: Optional[Topology]) -> None:
        """Install (or clear, with ``None``) the communication topology.

        May be called mid-run — this is the partition/heal primitive
        (:class:`repro.byzantine.partition.TopologyPartition` cuts edges
        by installing ``topology.without_edges(...)`` and heals by
        re-installing the original).  A complete topology resolves to no
        mask at all, keeping the default path bitwise-identical to an
        engine that never heard of topologies.
        """
        if topology is not None:
            if not isinstance(topology, Topology):
                raise TypeError(
                    f"topology must be a Topology or None, got {type(topology).__name__}"
                )
            if topology.n != self.n:
                raise ValueError(
                    f"topology is over n={topology.n} nodes but the engine has n={self.n}"
                )
        self.topology = topology
        self._topology_mask = (
            None if topology is None or topology.is_complete else topology.mask
        )

    def _delivers_to(self, plan: BroadcastPlan, receiver: int) -> bool:
        """Whether ``plan`` addresses ``receiver`` over an existing link.

        The object-plane counterpart of the batch plane's mask
        intersection: the plan's recipient set, gated by the topology.
        """
        if not plan.delivers_to(receiver):
            return False
        mask = self._topology_mask
        return mask is None or bool(mask[plan.sender, receiver])

    def require_quorum(self, quorum: int, *, policy: str = "raise") -> None:
        """Require every honest node to deliver at least ``quorum`` messages.

        ``policy="raise"`` aborts the round when violated (the
        synchronous reading, where a shortfall is a protocol bug);
        ``policy="starve"`` instead marks the short-changed nodes on the
        :class:`RoundResult` so the protocol can stall them for a round.
        """
        if quorum < 0:
            raise ValueError("quorum must be non-negative")
        if policy not in ("raise", "starve"):
            raise ValueError(f"unknown quorum policy {policy!r}")
        self._min_honest_messages = int(quorum)
        self._quorum_policy = policy

    def wait_for(
        self,
        *,
        count: Optional[int] = None,
        quorum: Optional[bool] = None,
        timeout_rounds: Optional[float] = None,
    ) -> WaitCondition:
        """Set (merge into) the engine's per-node wait condition.

        Only the provided fields are updated, so a consumer requesting
        the quorum reading (``wait_for(quorum=True)``) never clobbers an
        explicit ``count`` the experiment configuration pinned earlier.
        Horizon-based schedulers store but ignore the condition; the
        asynchronous scheduler refuses to run without one.  Returns the
        merged condition.
        """
        self.wait = WaitCondition(
            count=self.wait.count if count is None else int(count),
            quorum=self.wait.quorum if quorum is None else bool(quorum),
            timeout_rounds=(
                self.wait.timeout_rounds
                if timeout_rounds is None
                else float(timeout_rounds)
            ),
        )
        return self.wait

    # -- execution ------------------------------------------------------------
    def run_round(
        self,
        round_index: int,
        honest_plan: HonestPlanFn,
        adversary_plan: Optional[AdversaryPlanFn] = None,
    ) -> RoundResult:
        """Collect one plan per node and execute one scheduled round."""
        plans = collect_plans(
            self.honest, self.byzantine, round_index, honest_plan, adversary_plan
        )
        return self.submit(plans, round_index)

    def submit(self, plans: Sequence[BroadcastPlan], round_index: int) -> RoundResult:
        """Deliver pre-built plans for one round (the lower-level entry).

        Callers with a non-broadcast round structure (the centralized
        trainer's star exchange) build their plans directly and submit
        them here; :meth:`run_round` is the full-broadcast convenience
        wrapper on top.
        """
        before = dict(self.stats) if self.records_stats else None
        node_before = (
            {key: arr.copy() for key, arr in self.node_stats.items()}
            if self.node_trace
            else None
        )
        inboxes = self._deliver(plans, round_index)
        if before is not None:
            # One sparse delta row per executed round, stamped with the
            # engine's monotone clock: sent/delivered/delayed/dropped for
            # this round, plus whatever scheduler-specific counters moved.
            delta = {
                key: value - before.get(key, 0)
                for key, value in self.stats.items()
                if value - before.get(key, 0)
            }
            self.traces.append({"round": self.rounds_executed, **delta})
        if node_before is not None:
            node_delta: Dict[str, object] = {}
            for key, arr in self.node_stats.items():
                moved = arr - node_before.get(key, 0)
                if moved.any():
                    node_delta[key] = moved
            self.node_traces.append({"round": self.rounds_executed, **node_delta})
        self.rounds_executed += 1
        starved = enforce_quorum(
            inboxes,
            self.honest,
            self._min_honest_messages,
            round_index,
            policy=self._quorum_policy,
        )
        result = RoundResult(round_index=round_index, inboxes=inboxes, starved=starved)
        if self.keep_history:
            self.history.append(result)
        return result

    def _deliver(self, plans: Sequence[BroadcastPlan], round_index: int):
        """Materialise this round's inboxes on the active message plane."""
        if self.message_plane == "batch":
            return self._deliver_batch(plans, round_index)
        return self._deliver_object(plans, round_index)

    @abc.abstractmethod
    def _deliver_object(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        """Per-message reference delivery (the pre-batch-plane code path)."""
        raise NotImplementedError

    @abc.abstractmethod
    def _deliver_batch(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, BatchInbox]:
        """Vectorized delivery — bitwise-equivalent to the object plane."""
        raise NotImplementedError

    def _validated_batch(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Optional[RoundBatch]:
        """Validate plans and build this round's batch (``None`` if silent).

        The validation mirrors :meth:`_validated_messages` exactly
        (range checks, honest full-broadcast, one plan per sender); only
        the materialisation differs — one ``(S, d)`` matrix instead of
        ``S`` message objects.
        """
        by_sender: Dict[int, BroadcastPlan] = {}
        for plan in plans:
            self.broadcast.validate_plan(plan)
            if plan.sender in by_sender:
                raise ValueError(
                    f"sender {plan.sender} submitted two broadcast plans in round {round_index}; "
                    "reliable broadcast admits at most one message per sender per round"
                )
            by_sender[plan.sender] = plan
        batch = build_round_batch(by_sender, round_index, self.n)
        if batch is not None and self._topology_mask is not None:
            batch.restrict(self._topology_mask)
        return batch

    def _empty_batch_inboxes(self) -> Dict[int, BatchInbox]:
        empty = BatchInbox.empty()
        return {node: empty for node in range(self.n)}

    def _node_counter(self, key: str) -> np.ndarray:
        """The cumulative per-node array for ``key`` (created on demand)."""
        counter = self.node_stats.get(key)
        if counter is None:
            counter = np.zeros(self.n, dtype=np.int64)
            self.node_stats[key] = counter
        return counter

    def _validated_messages(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> List[Tuple[BroadcastPlan, Message]]:
        """Validate plans and materialise one message per speaking sender.

        Mirrors the validation of
        :meth:`~repro.network.reliable_broadcast.ReliableBroadcast.deliver`
        (range checks, honest senders broadcast to all, one plan per
        sender) and returns ``(plan, message)`` pairs in sender order —
        the per-link schedulers decide when each link delivers.
        """
        by_sender: Dict[int, BroadcastPlan] = {}
        for plan in plans:
            self.broadcast.validate_plan(plan)
            if plan.sender in by_sender:
                raise ValueError(
                    f"sender {plan.sender} submitted two broadcast plans in round {round_index}; "
                    "reliable broadcast admits at most one message per sender per round"
                )
            by_sender[plan.sender] = plan
        pairs: List[Tuple[BroadcastPlan, Message]] = []
        for sender in sorted(by_sender):
            plan = by_sender[sender]
            if plan.payload is None:
                continue
            pairs.append(
                (
                    plan,
                    Message(
                        sender=sender,
                        round_index=round_index,
                        payload=plan.payload,
                        metadata=dict(plan.metadata),
                    ),
                )
            )
        return pairs

    # -- lifecycle ------------------------------------------------------------
    def reset_history(self) -> None:
        """Drop recorded round results (used between learning iterations)."""
        self.history.clear()

    def reset(self) -> None:
        """Start a fresh exchange: drop history and any in-flight state.

        Schedulers holding cross-round state (pending delayed messages,
        crash bookkeeping) extend this; cumulative :attr:`stats` survive
        so a whole training run can be summarised.
        """
        self.reset_history()

    def stats_snapshot(self) -> Dict[str, int]:
        """Copy of the cumulative delivery counters."""
        return dict(self.stats)

    def node_stats_snapshot(self) -> Dict[str, List[int]]:
        """Cumulative per-node counters as plain lists (batch plane only).

        Receiver-attributed: entry ``r`` of ``"sent"`` counts the
        messages addressed to (and actually sent towards) node ``r``, so
        the per-node conservation identity mirrors the aggregate one —
        e.g. ``sent == delivered + dropped + crash_omitted`` per node
        under the lossy scheduler, ``sent == delivered +
        expired_at_reset + pending`` under partial/asynchronous.  Empty
        on the object plane.
        """
        return {key: arr.tolist() for key, arr in self.node_stats.items()}

    def node_trace_snapshot(self) -> List[Dict[str, object]]:
        """Per-round per-node delta rows (requires ``node_trace=True``).

        One row per executed round: ``{"round": <monotone clock>,
        <counter>: [n per-node deltas], ...}`` with all-zero counters
        omitted.  Each counter list sums to the matching entry of the
        per-round aggregate trace row (:meth:`trace_snapshot`) — the
        aggregation identity ``tests/test_message_plane.py`` pins.
        """
        return [
            {
                key: (value.tolist() if isinstance(value, np.ndarray) else value)
                for key, value in row.items()
            }
            for row in self.node_traces
        ]

    def pending_count_per_node(self) -> np.ndarray:
        """In-flight messages per receiver (``(n,)``; zero by default)."""
        return np.zeros(self.n, dtype=np.int64)

    def trace_snapshot(self) -> List[Dict[str, int]]:
        """Copy of the per-round delivery trace.

        One sparse dictionary per executed round: ``{"round": <monotone
        clock>, "sent": ..., "delivered": ..., ...}`` with zero counters
        omitted.  Empty for schedulers that do not record stats.  Unlike
        :attr:`history`, traces survive :meth:`reset` — they summarise a
        whole training run, exchange boundaries included.
        """
        return [dict(row) for row in self.traces]

    def trace_tail(self) -> Tuple[Dict[str, int], ...]:
        """The trace tail a rushing adversary may observe.

        The single definition of the engine-to-attack exposure contract
        (:attr:`repro.byzantine.base.AttackContext.delivery_trace`): the
        last :data:`~repro.byzantine.base.DELIVERY_TRACE_WINDOW` rows,
        most recent last.
        """
        from repro.byzantine.base import DELIVERY_TRACE_WINDOW

        return tuple(self.traces[-DELIVERY_TRACE_WINDOW:])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, byzantine={sorted(self.byzantine)})"
