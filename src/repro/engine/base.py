"""The :class:`RoundEngine` protocol every scheduler implements.

A round engine owns the *timing model* of a multi-round protocol: per
round it collects one :class:`~repro.network.reliable_broadcast.BroadcastPlan`
per node, decides which (sender, receiver) links deliver *now* and which
deliver later (or never), and hands each node its inbox as a
:class:`~repro.network.delivery.RoundResult`.  Consumers — the agreement
protocol, both trainers — submit plans and consume inboxes; they never
reimplement delivery.

Concrete schedulers:

- :class:`~repro.engine.synchronous.SynchronousScheduler` — lock-step
  delivery, bitwise-identical to the original ``SynchronousNetwork``;
- :class:`~repro.engine.partial.PartiallySynchronousScheduler` —
  per-link random delays bounded by a delivery horizon;
- :class:`~repro.engine.lossy.LossyScheduler` — seeded per-link message
  loss plus transient crash/recovery windows.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.network.delivery import (
    AdversaryPlanFn,
    HonestPlanFn,
    RoundResult,
    collect_plans,
    enforce_quorum,
)
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan, ReliableBroadcast


class RoundEngine(abc.ABC):
    """Scheduler-pluggable round executor for ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes.
    byzantine:
        Ids of Byzantine nodes.
    keep_history:
        Whether completed :class:`RoundResult` objects (with their full
        inboxes) are retained on :attr:`history`.  Trainers run thousands
        of rounds and disable this; interactive / test use keeps it on.
    max_history:
        Upper bound on retained round results (oldest dropped first);
        ``None`` means unbounded.
    require_full_broadcast:
        Forwarded to :class:`ReliableBroadcast`: ``True`` (default)
        enforces the agreement protocols' full-broadcast contract on
        honest senders; ``False`` admits star-shaped exchanges where an
        honest plan addresses a single receiver.
    """

    #: Extra rounds a message may lag behind its send round (0 = lock-step).
    horizon: int = 0
    #: Whether this scheduler produces delivery statistics worth reporting.
    records_stats: bool = False

    def __init__(
        self,
        n: int,
        byzantine: Iterable[int] = (),
        *,
        keep_history: bool = True,
        max_history: Optional[int] = None,
        require_full_broadcast: bool = True,
    ) -> None:
        self.broadcast = ReliableBroadcast(
            n, byzantine, require_full_broadcast=require_full_broadcast
        )
        self.n = self.broadcast.n
        self.byzantine = self.broadcast.byzantine
        self.honest = tuple(sorted(set(range(self.n)) - set(self.byzantine)))
        self._min_honest_messages = 0
        self._quorum_policy = "raise"
        self.keep_history = bool(keep_history)
        if max_history is not None and max_history < 0:
            raise ValueError("max_history must be non-negative")
        self.max_history = max_history
        self.history: Sequence[RoundResult] = (
            deque(maxlen=max_history) if max_history is not None else []
        )
        self.stats: Dict[str, int] = {
            "sent": 0, "delivered": 0, "dropped": 0, "delayed": 0, "crash_omitted": 0,
        }
        #: Monotone count of rounds this engine has executed, across
        #: exchanges.  Crash schedules are expressed against this clock,
        #: so a window covers wall-clock training rounds even when the
        #: per-exchange ``round_index`` restarts at 0 every iteration.
        self.rounds_executed = 0

    # -- configuration --------------------------------------------------------
    def require_quorum(self, quorum: int, *, policy: str = "raise") -> None:
        """Require every honest node to deliver at least ``quorum`` messages.

        ``policy="raise"`` aborts the round when violated (the
        synchronous reading, where a shortfall is a protocol bug);
        ``policy="starve"`` instead marks the short-changed nodes on the
        :class:`RoundResult` so the protocol can stall them for a round.
        """
        if quorum < 0:
            raise ValueError("quorum must be non-negative")
        if policy not in ("raise", "starve"):
            raise ValueError(f"unknown quorum policy {policy!r}")
        self._min_honest_messages = int(quorum)
        self._quorum_policy = policy

    # -- execution ------------------------------------------------------------
    def run_round(
        self,
        round_index: int,
        honest_plan: HonestPlanFn,
        adversary_plan: Optional[AdversaryPlanFn] = None,
    ) -> RoundResult:
        """Collect one plan per node and execute one scheduled round."""
        plans = collect_plans(
            self.honest, self.byzantine, round_index, honest_plan, adversary_plan
        )
        return self.submit(plans, round_index)

    def submit(self, plans: Sequence[BroadcastPlan], round_index: int) -> RoundResult:
        """Deliver pre-built plans for one round (the lower-level entry).

        Callers with a non-broadcast round structure (the centralized
        trainer's star exchange) build their plans directly and submit
        them here; :meth:`run_round` is the full-broadcast convenience
        wrapper on top.
        """
        inboxes = self._deliver(plans, round_index)
        self.rounds_executed += 1
        starved = enforce_quorum(
            inboxes,
            self.honest,
            self._min_honest_messages,
            round_index,
            policy=self._quorum_policy,
        )
        result = RoundResult(round_index=round_index, inboxes=inboxes, starved=starved)
        if self.keep_history:
            self.history.append(result)
        return result

    @abc.abstractmethod
    def _deliver(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        """Materialise this round's inboxes (scheduler-specific)."""
        raise NotImplementedError

    def _validated_messages(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> List[Tuple[BroadcastPlan, Message]]:
        """Validate plans and materialise one message per speaking sender.

        Mirrors the validation of
        :meth:`~repro.network.reliable_broadcast.ReliableBroadcast.deliver`
        (range checks, honest senders broadcast to all, one plan per
        sender) and returns ``(plan, message)`` pairs in sender order —
        the per-link schedulers decide when each link delivers.
        """
        by_sender: Dict[int, BroadcastPlan] = {}
        for plan in plans:
            self.broadcast.validate_plan(plan)
            if plan.sender in by_sender:
                raise ValueError(
                    f"sender {plan.sender} submitted two broadcast plans in round {round_index}; "
                    "reliable broadcast admits at most one message per sender per round"
                )
            by_sender[plan.sender] = plan
        pairs: List[Tuple[BroadcastPlan, Message]] = []
        for sender in sorted(by_sender):
            plan = by_sender[sender]
            if plan.payload is None:
                continue
            pairs.append(
                (
                    plan,
                    Message(
                        sender=sender,
                        round_index=round_index,
                        payload=plan.payload,
                        metadata=dict(plan.metadata),
                    ),
                )
            )
        return pairs

    # -- lifecycle ------------------------------------------------------------
    def reset_history(self) -> None:
        """Drop recorded round results (used between learning iterations)."""
        self.history.clear()

    def reset(self) -> None:
        """Start a fresh exchange: drop history and any in-flight state.

        Schedulers holding cross-round state (pending delayed messages,
        crash bookkeeping) extend this; cumulative :attr:`stats` survive
        so a whole training run can be summarised.
        """
        self.reset_history()

    def stats_snapshot(self) -> Dict[str, int]:
        """Copy of the cumulative delivery counters."""
        return dict(self.stats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, byzantine={sorted(self.byzantine)})"
