"""Lossy scheduler: seeded per-link message loss and crash windows.

Two failure modes compose here:

- **loss** — every (sender, receiver) link independently drops the
  message with probability ``drop_rate`` (seeded, so experiments are
  reproducible).  Self-delivery is reliable: a node always has its own
  value.
- **transient crashes** — ``crash_schedule`` lists ``(node, start,
  stop)`` windows measured on the engine's monotone round clock
  (:attr:`RoundEngine.rounds_executed`, which keeps counting across
  agreement exchanges).  While crashed, a node neither sends nor
  receives; at ``stop`` it recovers and rejoins with its current state.

Unlike Byzantine behaviour, these failures hit honest and faulty nodes
alike — they model the *network*, not the adversary.  Combined with
``require_quorum(..., policy="starve")`` the consumers stall a starved
node for a round instead of aborting, which is how the trainers survive
nonzero drop rates end to end.

Delivery accounting: ``sent == delivered + dropped + crash_omitted``
holds exactly.  Sends a crashed sender never performed are counted under
``suppressed`` (not ``sent``), and the per-link drop variate is drawn
with common random numbers — unconditionally, in a fixed link order — so
paired-seed scenarios remain comparable across crash schedules.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.base import RoundEngine
from repro.network.batch import BatchInbox
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan
from repro.utils.rng import SeedLike, as_generator

CrashWindow = Tuple[int, int, int]


def normalise_crash_schedule(
    schedule: Iterable[Sequence[int]], n: int
) -> Tuple[CrashWindow, ...]:
    """Validate and canonicalise ``(node, start, stop)`` crash windows."""
    windows: List[CrashWindow] = []
    for entry in schedule:
        if len(entry) != 3:
            raise ValueError(
                f"crash window must be (node, start, stop), got {tuple(entry)!r}"
            )
        node, start, stop = (int(v) for v in entry)
        if node < 0 or node >= n:
            raise ValueError(f"crash window node {node} out of range for n={n}")
        if start < 0 or stop <= start:
            raise ValueError(
                f"crash window rounds must satisfy 0 <= start < stop, got ({start}, {stop})"
            )
        windows.append((node, start, stop))
    return tuple(sorted(windows))


class LossyScheduler(RoundEngine):
    """Per-link drops plus transient crash/recovery windows.

    Parameters
    ----------
    drop_rate:
        Probability each non-self link loses its message, in ``[0, 1)``.
    crash_schedule:
        Iterable of ``(node, start, stop)`` windows (stop exclusive) on
        the engine's monotone round clock during which ``node`` is down.
    seed:
        Seed of the scheduler's drop generator.
    """

    records_stats = True

    def __init__(
        self,
        n: int,
        byzantine: Iterable[int] = (),
        *,
        drop_rate: float = 0.0,
        crash_schedule: Iterable[Sequence[int]] = (),
        seed: SeedLike = 0,
        keep_history: bool = True,
        max_history: Optional[int] = None,
        require_full_broadcast: bool = True,
        message_plane: Optional[str] = None,
        node_trace: bool = False,
        topology=None,
    ) -> None:
        super().__init__(
            n, byzantine, keep_history=keep_history, max_history=max_history,
            require_full_broadcast=require_full_broadcast,
            message_plane=message_plane, node_trace=node_trace,
            topology=topology,
        )
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.drop_rate = float(drop_rate)
        self.crash_schedule = normalise_crash_schedule(crash_schedule, self.n)
        self._rng = as_generator(seed)
        #: Sends a crashed sender never performed — kept out of ``sent``
        #: so the delivery-rate denominator only counts real sends.
        self.stats["suppressed"] = 0

    def is_crashed(self, node: int, clock: Optional[int] = None) -> bool:
        """Whether ``node`` is inside a crash window at ``clock``."""
        at = self.rounds_executed if clock is None else int(clock)
        return any(
            node == crashed and start <= at < stop
            for crashed, start, stop in self.crash_schedule
        )

    def _deliver_object(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        clock = self.rounds_executed
        inboxes: Dict[int, List[Message]] = {node: [] for node in range(self.n)}
        for plan, message in self._validated_messages(plans, round_index):
            sender_down = self.is_crashed(plan.sender, clock)
            for receiver in range(self.n):
                if not self._delivers_to(plan, receiver):
                    continue
                # Common random numbers: the per-link drop variate is
                # drawn whether or not the crash schedule voids the link,
                # so changing `crash_schedule` never reshuffles which of
                # the surviving links drop for a fixed seed.
                link_drops = (
                    receiver != plan.sender
                    and self.drop_rate > 0.0
                    and self._rng.random() < self.drop_rate
                )
                if sender_down:
                    # A crashed node "neither sends nor receives": this
                    # message never left the sender, so it is not `sent`.
                    self.stats["suppressed"] += 1
                    continue
                self.stats["sent"] += 1
                if self.is_crashed(receiver, clock):
                    self.stats["crash_omitted"] += 1
                    continue
                if link_drops:
                    self.stats["dropped"] += 1
                    continue
                inboxes[receiver].append(message)
                self.stats["delivered"] += 1
        return inboxes

    def _deliver_batch(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, BatchInbox]:
        clock = self.rounds_executed
        batch = self._validated_batch(plans, round_index)
        if batch is None:
            return self._empty_batch_inboxes()
        n = self.n
        num_senders = batch.num_senders

        # Reliable fast path: nothing can fail, every receiver shares
        # one zero-copy view of the full batch.
        if batch.delivers is None and self.drop_rate == 0.0 and not self.crash_schedule:
            shared = BatchInbox.single(batch, batch.full_rows())
            self.stats["sent"] += num_senders * n
            self.stats["delivered"] += num_senders * n
            self._node_counter("sent")[:] += num_senders
            self._node_counter("delivered")[:] += num_senders
            return {node: shared for node in range(n)}

        delivers = batch.delivers_mask()
        receivers = np.arange(n)
        # Common random numbers: one vectorized fill whose C-order walk
        # of (row, receiver) coordinates matches the object plane's
        # nested sender-ascending / receiver-ascending loop, so the two
        # planes consume the drop stream identically.  The variate is
        # drawn whether or not a crash voids the link (never for
        # self-delivery), exactly as the scalar path does.
        if self.drop_rate > 0.0:
            draw_mask = delivers & (batch.senders[:, None] != receivers[None, :])
            drops = np.zeros((num_senders, n), dtype=bool)
            variates = self._rng.random(size=int(np.count_nonzero(draw_mask)))
            drops[draw_mask] = variates < self.drop_rate
        else:
            drops = None

        if self.crash_schedule:
            sender_down = np.fromiter(
                (self.is_crashed(int(s), clock) for s in batch.senders),
                dtype=bool,
                count=num_senders,
            )
            receiver_down = np.fromiter(
                (self.is_crashed(r, clock) for r in range(n)), dtype=bool, count=n
            )
            suppressed = delivers & sender_down[:, None]
            sent = delivers & ~sender_down[:, None]
            crash_omitted = sent & receiver_down[None, :]
            alive = sent & ~receiver_down[None, :]
            self.stats["suppressed"] += int(np.count_nonzero(suppressed))
            self.stats["crash_omitted"] += int(np.count_nonzero(crash_omitted))
            self._node_counter("suppressed")[:] += suppressed.sum(axis=0, dtype=np.int64)
            self._node_counter("crash_omitted")[:] += crash_omitted.sum(
                axis=0, dtype=np.int64
            )
        else:
            sent = delivers
            alive = delivers

        if drops is not None:
            dropped = alive & drops
            delivered = alive & ~drops
            self.stats["dropped"] += int(np.count_nonzero(dropped))
            self._node_counter("dropped")[:] += dropped.sum(axis=0, dtype=np.int64)
        else:
            delivered = alive

        self.stats["sent"] += int(np.count_nonzero(sent))
        self.stats["delivered"] += int(np.count_nonzero(delivered))
        self._node_counter("sent")[:] += sent.sum(axis=0, dtype=np.int64)
        self._node_counter("delivered")[:] += delivered.sum(axis=0, dtype=np.int64)

        if delivered.all():
            shared = BatchInbox.single(batch, batch.full_rows())
            return {node: shared for node in range(n)}
        return {
            node: BatchInbox.single(batch, np.flatnonzero(delivered[:, node]))
            for node in range(n)
        }
