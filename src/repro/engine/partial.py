"""Partially synchronous scheduler: bounded per-link delivery delays.

Messages are never lost, but each (sender, receiver) link may hold a
delivery back for a random number of rounds bounded by the **delivery
horizon** ``max_delay``.  A message sent in round ``r`` therefore
arrives in some round ``r' in [r, r + max_delay]`` — the classical
partially synchronous model with a known bound.  Late messages are
merged into the receiving round's inbox *ahead* of that round's fresh
messages (they are older), ordered by (send round, sender id), which
keeps executions deterministic for a fixed seed.

A timing-aware adversary (see :mod:`repro.byzantine.timing`) can pin the
lag of its own links through ``BroadcastPlan.delays``; honest links are
delayed by the network RNG alone.  Self-delivery is immediate — a node
does not wait for its own message.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.base import RoundEngine, resolve_rng_mode
from repro.network.batch import BatchInbox, RoundBatch
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan
from repro.utils.rng import SeedLike, as_generator

#: One delayed link group on the batch plane: (send_round, batch,
#: row indices, receiver indices) with the two index arrays parallel
#: and stored in (row-ascending, receiver-ascending) order.
_PendingGroup = Tuple[int, RoundBatch, np.ndarray, np.ndarray]


class PartiallySynchronousScheduler(RoundEngine):
    """Per-link RNG-driven delays with a delivery horizon.

    Parameters
    ----------
    max_delay:
        Delivery horizon: the largest number of rounds any link may lag.
    delay_prob:
        Probability that a given link is slow this round (drawn per
        link per round); a slow link's lag is uniform on
        ``[1, max_delay]``.
    seed:
        Seed of the scheduler's own generator — independent from the
        experiment's honest and adversarial streams.
    rng_mode:
        ``"scalar"`` (default) walks the drawing links one at a time in
        the pinned fixture order — bitwise-identical to the historical
        stream.  ``"vectorized"`` replaces that loop with one Bernoulli
        vector plus one lag vector per round: identically distributed
        but a *different* stream, so it is validated statistically (see
        ``tests/test_rng_modes.py``) and requires the batch message
        plane.  ``None`` reads ``REPRO_RNG_MODE``.
    """

    records_stats = True

    def __init__(
        self,
        n: int,
        byzantine: Iterable[int] = (),
        *,
        max_delay: int = 1,
        delay_prob: float = 0.5,
        seed: SeedLike = 0,
        keep_history: bool = True,
        max_history: Optional[int] = None,
        require_full_broadcast: bool = True,
        message_plane: Optional[str] = None,
        node_trace: bool = False,
        topology=None,
        rng_mode: Optional[str] = None,
    ) -> None:
        super().__init__(
            n, byzantine, keep_history=keep_history, max_history=max_history,
            require_full_broadcast=require_full_broadcast,
            message_plane=message_plane, node_trace=node_trace,
            topology=topology,
        )
        self.rng_mode = resolve_rng_mode(rng_mode)
        if self.rng_mode == "vectorized" and self.message_plane != "batch":
            raise ValueError(
                "rng_mode='vectorized' requires the batch message plane "
                "(the object plane is the per-message bitwise reference)"
            )
        if max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        if not 0.0 <= delay_prob <= 1.0:
            raise ValueError(f"delay_prob must be in [0, 1], got {delay_prob}")
        self.max_delay = int(max_delay)
        self.horizon = self.max_delay
        self.delay_prob = float(delay_prob)
        self._rng = as_generator(seed)
        #: In-flight messages flushed at exchange boundaries.  Kept apart
        #: from ``dropped`` (this model never loses a message in transit)
        #: so ``sent == delivered + expired_at_reset + pending`` holds.
        self.stats["expired_at_reset"] = 0
        # arrival round -> [(send_round, sender, receiver, message)]
        self._pending: Dict[int, List[Tuple[int, int, int, Message]]] = {}
        # Batch-plane analogue: arrival round -> delayed link groups.
        self._pending_batches: Dict[int, List[_PendingGroup]] = {}

    def _link_lag(self, plan: BroadcastPlan, receiver: int) -> int:
        if receiver == plan.sender:
            return 0
        if plan.delays is not None and receiver in plan.delays:
            return min(plan.delay_to(receiver), self.max_delay)
        if self.max_delay == 0 or self.delay_prob == 0.0:
            return 0
        if self._rng.random() >= self.delay_prob:
            return 0
        return int(self._rng.integers(1, self.max_delay + 1))

    def _deliver_object(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        inboxes: Dict[int, List[Message]] = {node: [] for node in range(self.n)}
        # Older, delayed messages arrive first in this round's inbox.
        for send_round, _sender, receiver, message in sorted(
            self._pending.pop(round_index, []), key=lambda item: (item[0], item[1])
        ):
            inboxes[receiver].append(message)
            self.stats["delivered"] += 1

        for plan, message in self._validated_messages(plans, round_index):
            for receiver in range(self.n):
                if not self._delivers_to(plan, receiver):
                    continue
                self.stats["sent"] += 1
                lag = self._link_lag(plan, receiver)
                if lag == 0:
                    inboxes[receiver].append(message)
                    self.stats["delivered"] += 1
                else:
                    self.stats["delayed"] += 1
                    self._pending.setdefault(round_index + lag, []).append(
                        (round_index, plan.sender, receiver, message)
                    )
        return inboxes

    def _deliver_batch(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, BatchInbox]:
        n = self.n
        batch = self._validated_batch(plans, round_index)
        groups = self._pending_batches.pop(round_index, [])
        if groups:
            # Older messages first; one group per send round, each group
            # already (row asc, receiver asc), so sorting groups by send
            # round reproduces the object plane's (send_round, sender)
            # pending order inside every receiver's inbox.
            groups.sort(key=lambda group: group[0])
            delivered_pending = sum(group[2].shape[0] for group in groups)
            self.stats["delivered"] += delivered_pending
            pending_per_node = np.zeros(n, dtype=np.int64)
            for _send_round, _batch, _rows, recvs in groups:
                pending_per_node += np.bincount(recvs, minlength=n)
            self._node_counter("delivered")[:] += pending_per_node

        if batch is None:
            if not groups:
                return self._empty_batch_inboxes()
            now_mask = None
        else:
            num_senders = batch.num_senders
            receivers = np.arange(n)
            active = batch.delivers  # None means every link is live
            lag = np.zeros((num_senders, n), dtype=np.int64)
            # Links whose lag is decided without touching the RNG:
            # self-delivery (always immediate, wins over a pinned delay)
            # and adversary-pinned delays, mirroring ``_link_lag``.
            nodraw = batch.senders[:, None] == receivers[None, :]
            for i, delay_map in enumerate(batch.delays):
                if delay_map:
                    for recv, pinned in delay_map.items():
                        if not nodraw[i, recv]:
                            lag[i, recv] = min(int(pinned), self.max_delay)
                            nodraw[i, recv] = True
            if self.max_delay > 0 and self.delay_prob > 0.0:
                draw_mask = ~nodraw if active is None else (active & ~nodraw)
                rng = self._rng
                prob = self.delay_prob
                high = self.max_delay + 1
                flat_lag = lag.reshape(-1)
                positions = np.flatnonzero(draw_mask.reshape(-1))
                if self.rng_mode == "vectorized":
                    # One Bernoulli vector over the k drawing links plus
                    # one lag vector over the m slow ones.  Same
                    # marginal distribution as the scalar walk, but the
                    # integers() draws no longer interleave with the
                    # uniforms — a different stream by construction.
                    slow = rng.random(positions.size) < prob
                    num_slow = int(np.count_nonzero(slow))
                    if num_slow:
                        flat_lag[positions[slow]] = rng.integers(
                            1, high, size=num_slow
                        )
                else:
                    # The pinned stream interleaves a per-link uniform
                    # with a *conditional* integers() draw, so this
                    # stays a scalar loop — but only over the drawing
                    # links, walked in the object plane's C-order
                    # (sender asc, receiver asc).
                    for pos in positions.tolist():
                        if rng.random() < prob:
                            flat_lag[pos] = int(rng.integers(1, high))
            lag_zero = lag == 0
            if active is None:
                now_mask = lag_zero
                delayed_mask = ~lag_zero
                sent_per_node = np.full(n, num_senders, dtype=np.int64)
            else:
                now_mask = active & lag_zero
                delayed_mask = active & ~lag_zero
                sent_per_node = active.sum(axis=0, dtype=np.int64)
            self.stats["sent"] += int(sent_per_node.sum())
            self._node_counter("sent")[:] += sent_per_node
            num_now = int(np.count_nonzero(now_mask))
            self.stats["delivered"] += num_now
            self._node_counter("delivered")[:] += now_mask.sum(axis=0, dtype=np.int64)
            num_delayed = int(np.count_nonzero(delayed_mask))
            if num_delayed:
                self.stats["delayed"] += num_delayed
                self._node_counter("delayed")[:] += delayed_mask.sum(
                    axis=0, dtype=np.int64
                )
                for lag_value in range(1, self.max_delay + 1):
                    late = delayed_mask & (lag == lag_value)
                    if late.any():
                        rows, recvs = np.nonzero(late)
                        self._pending_batches.setdefault(
                            round_index + lag_value, []
                        ).append(
                            (
                                round_index,
                                batch,
                                rows.astype(np.int64, copy=False),
                                recvs.astype(np.int64, copy=False),
                            )
                        )
            if not groups:
                if num_delayed == 0 and active is None:
                    shared = BatchInbox.single(batch, batch.full_rows())
                    return {node: shared for node in range(n)}
                recv_idx, row_idx = np.nonzero(now_mask.T)
                bounds = np.searchsorted(recv_idx, np.arange(n + 1))
                return {
                    node: BatchInbox.single(
                        batch, row_idx[bounds[node] : bounds[node + 1]]
                    )
                    for node in range(n)
                }

        # Straggler path: merge pending groups (oldest first) ahead of
        # this round's fresh deliveries, per receiver.
        batches: List[RoundBatch] = [group[1] for group in groups]
        prepared = []
        for _send_round, _batch, rows, recvs in groups:
            order = np.argsort(recvs, kind="stable")  # keeps sender order
            bounds = np.searchsorted(recvs[order], np.arange(n + 1))
            prepared.append((rows[order], bounds))
        if batch is not None and now_mask is not None:
            batches.append(batch)
            recv_idx, row_idx = np.nonzero(now_mask.T)
            bounds = np.searchsorted(recv_idx, np.arange(n + 1))
            prepared.append((row_idx, bounds))
        batches_tuple = tuple(batches)
        empty = BatchInbox.empty()
        inboxes: Dict[int, BatchInbox] = {}
        for node in range(n):
            part_rows: List[np.ndarray] = []
            part_bids: List[np.ndarray] = []
            for bid, (rows_sorted, bounds) in enumerate(prepared):
                segment = rows_sorted[bounds[node] : bounds[node + 1]]
                if segment.size:
                    part_rows.append(segment)
                    part_bids.append(np.full(segment.size, bid, dtype=np.int64))
            if not part_rows:
                inboxes[node] = empty
            elif len(part_rows) == 1:
                bid = int(part_bids[0][0])
                inboxes[node] = BatchInbox.single(batches_tuple[bid], part_rows[0])
            else:
                inboxes[node] = BatchInbox(
                    batches_tuple,
                    np.concatenate(part_rows),
                    np.concatenate(part_bids),
                )
        return inboxes

    def pending_count(self) -> int:
        """Messages currently in flight (sent but not yet delivered)."""
        return sum(len(batch) for batch in self._pending.values()) + sum(
            group[2].shape[0]
            for groups in self._pending_batches.values()
            for group in groups
        )

    def pending_count_per_node(self) -> np.ndarray:
        counts = np.zeros(self.n, dtype=np.int64)
        for entries in self._pending.values():
            for _send_round, _sender, receiver, _message in entries:
                counts[receiver] += 1
        for groups in self._pending_batches.values():
            for _send_round, _batch, _rows, recvs in groups:
                counts += np.bincount(recvs, minlength=self.n)
        return counts

    def reset(self) -> None:
        """Drop history and expire in-flight messages at the exchange boundary.

        An exchange boundary is a synchronisation point: messages still
        in flight when the exchange ends never reach their receivers.
        They are booked under ``expired_at_reset`` — never ``dropped``,
        because this model's contract is that the network itself loses
        nothing — keeping ``sent == delivered + expired_at_reset +
        pending`` consistent across exchanges.
        """
        expired = self.pending_count()
        self.stats["expired_at_reset"] += expired
        if expired and self.message_plane == "batch":
            self._node_counter("expired_at_reset")[:] += self.pending_count_per_node()
        self._pending.clear()
        self._pending_batches.clear()
        super().reset()
