"""Partially synchronous scheduler: bounded per-link delivery delays.

Messages are never lost, but each (sender, receiver) link may hold a
delivery back for a random number of rounds bounded by the **delivery
horizon** ``max_delay``.  A message sent in round ``r`` therefore
arrives in some round ``r' in [r, r + max_delay]`` — the classical
partially synchronous model with a known bound.  Late messages are
merged into the receiving round's inbox *ahead* of that round's fresh
messages (they are older), ordered by (send round, sender id), which
keeps executions deterministic for a fixed seed.

A timing-aware adversary (see :mod:`repro.byzantine.timing`) can pin the
lag of its own links through ``BroadcastPlan.delays``; honest links are
delayed by the network RNG alone.  Self-delivery is immediate — a node
does not wait for its own message.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.base import RoundEngine
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan
from repro.utils.rng import SeedLike, as_generator


class PartiallySynchronousScheduler(RoundEngine):
    """Per-link RNG-driven delays with a delivery horizon.

    Parameters
    ----------
    max_delay:
        Delivery horizon: the largest number of rounds any link may lag.
    delay_prob:
        Probability that a given link is slow this round (drawn per
        link per round); a slow link's lag is uniform on
        ``[1, max_delay]``.
    seed:
        Seed of the scheduler's own generator — independent from the
        experiment's honest and adversarial streams.
    """

    records_stats = True

    def __init__(
        self,
        n: int,
        byzantine: Iterable[int] = (),
        *,
        max_delay: int = 1,
        delay_prob: float = 0.5,
        seed: SeedLike = 0,
        keep_history: bool = True,
        max_history: Optional[int] = None,
        require_full_broadcast: bool = True,
    ) -> None:
        super().__init__(
            n, byzantine, keep_history=keep_history, max_history=max_history,
            require_full_broadcast=require_full_broadcast,
        )
        if max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        if not 0.0 <= delay_prob <= 1.0:
            raise ValueError(f"delay_prob must be in [0, 1], got {delay_prob}")
        self.max_delay = int(max_delay)
        self.horizon = self.max_delay
        self.delay_prob = float(delay_prob)
        self._rng = as_generator(seed)
        #: In-flight messages flushed at exchange boundaries.  Kept apart
        #: from ``dropped`` (this model never loses a message in transit)
        #: so ``sent == delivered + expired_at_reset + pending`` holds.
        self.stats["expired_at_reset"] = 0
        # arrival round -> [(send_round, sender, receiver, message)]
        self._pending: Dict[int, List[Tuple[int, int, int, Message]]] = {}

    def _link_lag(self, plan: BroadcastPlan, receiver: int) -> int:
        if receiver == plan.sender:
            return 0
        if plan.delays is not None and receiver in plan.delays:
            return min(plan.delay_to(receiver), self.max_delay)
        if self.max_delay == 0 or self.delay_prob == 0.0:
            return 0
        if self._rng.random() >= self.delay_prob:
            return 0
        return int(self._rng.integers(1, self.max_delay + 1))

    def _deliver(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        inboxes: Dict[int, List[Message]] = {node: [] for node in range(self.n)}
        # Older, delayed messages arrive first in this round's inbox.
        for send_round, _sender, receiver, message in sorted(
            self._pending.pop(round_index, []), key=lambda item: (item[0], item[1])
        ):
            inboxes[receiver].append(message)
            self.stats["delivered"] += 1

        for plan, message in self._validated_messages(plans, round_index):
            for receiver in range(self.n):
                if not plan.delivers_to(receiver):
                    continue
                self.stats["sent"] += 1
                lag = self._link_lag(plan, receiver)
                if lag == 0:
                    inboxes[receiver].append(message)
                    self.stats["delivered"] += 1
                else:
                    self.stats["delayed"] += 1
                    self._pending.setdefault(round_index + lag, []).append(
                        (round_index, plan.sender, receiver, message)
                    )
        return inboxes

    def pending_count(self) -> int:
        """Messages currently in flight (sent but not yet delivered)."""
        return sum(len(batch) for batch in self._pending.values())

    def reset(self) -> None:
        """Drop history and expire in-flight messages at the exchange boundary.

        An exchange boundary is a synchronisation point: messages still
        in flight when the exchange ends never reach their receivers.
        They are booked under ``expired_at_reset`` — never ``dropped``,
        because this model's contract is that the network itself loses
        nothing — keeping ``sent == delivered + expired_at_reset +
        pending`` consistent across exchanges.
        """
        self.stats["expired_at_reset"] += self.pending_count()
        self._pending.clear()
        super().reset()
