"""Scheduler-agnostic building blocks for multi-round exchanges.

The agreement protocol and the decentralized trainer used to hand-roll
the same loop: broadcast the current vectors, apply the per-node update
to each inbox, repeat.  :func:`run_exchange` is that loop, written once
against the :class:`~repro.engine.base.RoundEngine` interface — which is
what makes the timing model pluggable: under a lossy or partially
synchronous scheduler a node that is starved below quorum (or whose
inbox was dropped entirely) simply keeps its current vector for the
round, while the synchronous scheduler never takes those branches and
stays bitwise-identical to the historical loops.

:func:`attack_adversary_plan` builds the Byzantine side of an exchange
from a :class:`~repro.byzantine.base.GradientAttack`, including the
timing hooks (``recipients`` for selective omission, ``send_delays`` for
selective delay under schedulers with a nonzero horizon).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.byzantine.base import AttackContext, GradientAttack
from repro.engine.base import RoundEngine, WaitCondition
from repro.network.delivery import (
    AdversaryPlanFn,
    EmptyInboxError,
    RoundResult,
    full_broadcast_plan,
)
from repro.network.reliable_broadcast import BroadcastPlan

UpdateFn = Callable[[int, np.ndarray], np.ndarray]
OnRoundFn = Callable[[int, RoundResult, Dict[int, np.ndarray]], None]


def attack_adversary_plan(
    attack_for: Callable[[int], Optional[GradientAttack]],
    own_vectors: Dict[int, np.ndarray],
    rng: np.random.Generator,
    *,
    horizon: int = 0,
    engine: Optional[RoundEngine] = None,
    extra_metadata: Optional[dict] = None,
) -> AdversaryPlanFn:
    """Adversary plan callback driving each Byzantine node's attack.

    ``attack_for(node)`` resolves the attack a Byzantine node runs
    (``None`` = crashed / silent).  ``own_vectors`` holds the vector each
    Byzantine node *would* have sent honestly; ``horizon`` is the
    engine's delivery horizon, exposed to timing-aware attacks through
    :attr:`AttackContext.horizon`.  Passing ``engine`` additionally
    exposes the tail of its per-round delivery trace through
    :attr:`AttackContext.delivery_trace`, which is what *adaptive*
    timing attacks key their delays on.
    """

    def plan(node: int, round_index: int, honest_values: Dict[int, np.ndarray]) -> BroadcastPlan:
        attack = attack_for(node)
        if attack is None:
            return BroadcastPlan(sender=node, payload=None)
        context = AttackContext(
            node=node,
            round_index=round_index,
            own_vector=own_vectors.get(node),
            honest_vectors=honest_values,
            rng=rng,
            horizon=horizon,
            delivery_trace=engine.trace_tail() if engine is not None else (),
        )
        payload = attack.corrupt(context)
        recipients = attack.recipients(context)
        delays = attack.send_delays(context)
        metadata = {"attack": attack.name}
        if extra_metadata:
            metadata.update(extra_metadata)
        return BroadcastPlan(
            sender=node,
            payload=None if payload is None else np.asarray(payload, dtype=np.float64),
            recipients=recipients,
            delays=delays,
            metadata=metadata,
        )

    return plan


def run_exchange(
    engine: RoundEngine,
    initial: Dict[int, np.ndarray],
    rounds: int,
    update_fn: UpdateFn,
    adversary_plan: Optional[AdversaryPlanFn] = None,
    *,
    on_round: Optional[OnRoundFn] = None,
    wait: Optional[WaitCondition] = None,
) -> Dict[int, np.ndarray]:
    """Run ``rounds`` broadcast/update rounds from the ``initial`` vectors.

    Per round every honest node broadcasts its current vector, the
    engine schedules delivery, and ``update_fn(node, received)`` maps the
    delivered ``(m, d)`` stack to the node's next vector.  Nodes the
    scheduler starved below quorum — or whose whole inbox was lost —
    keep their current vector for the round.  ``on_round`` observes
    ``(round_index, round_result, new_vectors)`` after every round.

    ``wait`` optionally installs a :class:`WaitCondition` on the engine
    before the first round — required by event-driven schedulers with no
    delivery horizon, ignored by the lock-step ones.

    Returns the honest vectors after the final round.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    if wait is not None:
        engine.wait_for(
            count=wait.count, quorum=wait.quorum or None,
            timeout_rounds=wait.timeout_rounds,
        )
    current = dict(initial)
    for round_index in range(rounds):
        result = engine.run_round(
            round_index,
            honest_plan=lambda node, _r: full_broadcast_plan(node, current[node]),
            adversary_plan=adversary_plan,
        )
        starved = set(result.starved)
        new_values: Dict[int, np.ndarray] = {}
        for node in engine.honest:
            if node in starved:
                new_values[node] = current[node]
                continue
            try:
                received = result.received_matrix(node)
            except EmptyInboxError:
                # The scheduler dropped everything this node was owed;
                # distinct from malformed input, so stall, don't fail.
                new_values[node] = current[node]
                continue
            new_values[node] = update_fn(node, received)
        current = new_values
        if on_round is not None:
            on_round(round_index, result, current)
    return current
