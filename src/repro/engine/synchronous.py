"""Lock-step scheduler: every message arrives in its own round.

This is the paper's timing model (Section 2.3) and the reference
behaviour of the engine: delivery is exactly
:meth:`repro.network.reliable_broadcast.ReliableBroadcast.deliver`, so
the scheduler is bitwise-identical to the pre-engine
``SynchronousNetwork`` — the pinned-fixture suite in
``tests/test_engine_equivalence.py`` enforces that.

Adversary-requested delays are ignored here: under synchrony a delayed
message would simply arrive at the round boundary anyway.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.engine.base import RoundEngine
from repro.network.batch import BatchInbox
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan


class SynchronousScheduler(RoundEngine):
    """Reliable lock-step delivery (the paper's synchronous model)."""

    horizon = 0
    records_stats = False

    def _deliver_object(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        inboxes = self.broadcast.deliver(plans, round_index)
        mask = self._topology_mask
        if mask is not None:
            inboxes = {
                node: [m for m in messages if mask[m.sender, node]]
                for node, messages in inboxes.items()
            }
        # Under synchrony every sent message is delivered, so one count
        # covers both (records_stats stays False: nothing to report).
        delivered = sum(len(messages) for messages in inboxes.values())
        self.stats["sent"] += delivered
        self.stats["delivered"] += delivered
        return inboxes

    def _deliver_batch(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, BatchInbox]:
        batch = self._validated_batch(plans, round_index)
        if batch is None:
            return self._empty_batch_inboxes()
        if batch.delivers is None:
            # Full broadcast: every receiver sees the same rows in the
            # same order, so one shared inbox (whose matrix() is the
            # shared zero-copy payload matrix) serves all of them.
            shared = BatchInbox.single(batch, batch.full_rows())
            inboxes = {node: shared for node in range(self.n)}
            per_node = np.full(self.n, batch.num_senders, dtype=np.int64)
        else:
            inboxes = {}
            for node in range(self.n):
                rows = np.flatnonzero(batch.delivers[:, node])
                inboxes[node] = BatchInbox.single(batch, rows)
            per_node = batch.delivers.sum(axis=0, dtype=np.int64)
        total = int(per_node.sum())
        self.stats["sent"] += total
        self.stats["delivered"] += total
        self._node_counter("sent")[:] += per_node
        self._node_counter("delivered")[:] += per_node
        return inboxes
