"""Lock-step scheduler: every message arrives in its own round.

This is the paper's timing model (Section 2.3) and the reference
behaviour of the engine: delivery is exactly
:meth:`repro.network.reliable_broadcast.ReliableBroadcast.deliver`, so
the scheduler is bitwise-identical to the pre-engine
``SynchronousNetwork`` — the pinned-fixture suite in
``tests/test_engine_equivalence.py`` enforces that.

Adversary-requested delays are ignored here: under synchrony a delayed
message would simply arrive at the round boundary anyway.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.engine.base import RoundEngine
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan


class SynchronousScheduler(RoundEngine):
    """Reliable lock-step delivery (the paper's synchronous model)."""

    horizon = 0
    records_stats = False

    def _deliver(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        inboxes = self.broadcast.deliver(plans, round_index)
        # Under synchrony every sent message is delivered, so one count
        # covers both (records_stats stays False: nothing to report).
        delivered = sum(len(messages) for messages in inboxes.values())
        self.stats["sent"] += delivered
        self.stats["delivered"] += delivered
        return inboxes
