"""Result persistence: JSON histories and JSONL sweep streams."""

from repro.io.jsonl import (
    append_jsonl,
    dump_row,
    iter_jsonl,
    read_jsonl,
    truncate_partial_tail,
    write_jsonl,
)
from repro.io.results import (
    history_from_dict,
    history_to_dict,
    load_histories,
    metric_from_json,
    save_histories,
)

__all__ = [
    "append_jsonl",
    "dump_row",
    "history_from_dict",
    "history_to_dict",
    "iter_jsonl",
    "load_histories",
    "metric_from_json",
    "read_jsonl",
    "save_histories",
    "truncate_partial_tail",
    "write_jsonl",
]
