"""Result persistence: save and reload experiment histories as JSON."""

from repro.io.results import (
    history_from_dict,
    history_to_dict,
    load_histories,
    save_histories,
)

__all__ = [
    "history_from_dict",
    "history_to_dict",
    "load_histories",
    "save_histories",
]
