"""Line-delimited JSON (JSONL) persistence.

The sweep engine streams one JSON object per completed scenario cell so
that an interrupted run loses at most the cell in flight.  Rows are
serialised with sorted keys, which makes the files byte-for-byte
reproducible for a fixed specification — the property the determinism
tests (``tests/test_sweep.py``) assert.
"""

from __future__ import annotations

import gzip
import json
import math
from pathlib import Path
from typing import Iterable, Iterator, List, Union

PathLike = Union[str, Path]


def _open_text(source: Path):
    """Open a row file for reading, transparently decompressing ``.gz``.

    Archived sweep files are often gzipped wholesale (the rows
    themselves stay sorted-keys JSONL, so compression does not disturb
    byte-identity checks on the decompressed stream); readers should not
    care.
    """
    if source.suffix == ".gz":
        return gzip.open(source, "rt", encoding="utf-8")
    return source.open("r", encoding="utf-8")


def _json_safe(value):
    """Replace non-finite floats with ``None`` so lines stay strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def dump_row(row: dict) -> str:
    """Serialise one row the way every JSONL writer here does (sorted keys).

    Non-finite floats (the losses of a diverging run) become ``null`` —
    bare ``NaN``/``Infinity`` tokens are not JSON and would break strict
    external consumers; the history loaders map ``null`` metrics back to
    ``nan``.
    """
    return json.dumps(_json_safe(row), sort_keys=True, allow_nan=False)


def append_jsonl(path: PathLike, row: dict) -> Path:
    """Append one row to a JSONL file (created, with parents, if missing).

    The file handle is flushed before returning so a crash after the
    call never loses the row.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(dump_row(row) + "\n")
        handle.flush()
    return target


def write_jsonl(path: PathLike, rows: Iterable[dict]) -> Path:
    """Write (overwrite) a JSONL file from an iterable of rows."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(dump_row(row) + "\n")
    return target


def iter_jsonl(path: PathLike, *, skip_partial_tail: bool = True) -> Iterator[dict]:
    """Stream the rows of a JSONL file one line at a time.

    The lazy counterpart of :func:`read_jsonl` — a multi-gigabyte sweep
    file never needs to be resident in memory.  With
    ``skip_partial_tail`` (the default) a final line without a
    terminating newline is silently dropped — whether or not its prefix
    happens to parse: that is exactly the state an interrupted writer
    leaves behind (each writer emits ``row + "\\n"`` in one write), and
    the resume logic simply re-runs the affected cell after
    :func:`truncate_partial_tail` removes the bytes.  Malformed
    newline-terminated lines always raise ``ValueError``.

    Files ending in ``.gz`` are decompressed transparently, so archived
    sweeps can be analysed without unpacking.
    """
    source = Path(path)
    with _open_text(source) as handle:
        for lineno, line in enumerate(handle):
            if skip_partial_tail and not line.endswith("\n"):
                return  # unterminated tail: an interrupted writer's bytes
            stripped = line.strip()
            if not stripped:
                continue
            try:
                parsed = json.loads(stripped)
            except json.JSONDecodeError:
                raise ValueError(f"{source}:{lineno + 1}: invalid JSONL line")
            if not isinstance(parsed, dict):
                raise ValueError(f"{source}:{lineno + 1}: JSONL row is not an object")
            yield parsed


def read_jsonl(path: PathLike, *, skip_partial_tail: bool = True) -> List[dict]:
    """Read every row of a JSONL file (eager form of :func:`iter_jsonl`)."""
    return list(iter_jsonl(path, skip_partial_tail=skip_partial_tail))


def truncate_partial_tail(path: PathLike) -> int:
    """Remove a trailing partial line left by an interrupted writer.

    Appending after a partial line would glue two rows into one
    malformed line and permanently corrupt the stream, so writers that
    resume an existing file call this first.  Returns the number of
    bytes removed (0 when the file is absent, empty or newline-clean).
    """
    target = Path(path)
    if not target.exists():
        return 0
    data = target.read_bytes()
    if not data or data.endswith(b"\n"):
        return 0
    cut = data.rfind(b"\n") + 1  # 0 when the file is a single partial line
    # In-place truncation: only the tail bytes are touched, so a crash
    # here cannot damage the completed rows the way a full rewrite could.
    with target.open("r+b") as handle:
        handle.truncate(cut)
    return len(data) - cut
