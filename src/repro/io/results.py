"""JSON (de)serialisation of training histories.

The benchmark harness and the example scripts can persist their results
so figures can be re-rendered or compared across runs without re-training.
The format is plain JSON: a mapping from experiment label to a history
dictionary, round records included.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Union

from repro.learning.history import RoundRecord, TrainingHistory

PathLike = Union[str, Path]


def history_to_dict(history: TrainingHistory) -> dict:
    """Convert a history (including all round records) to plain data.

    ``network_stats`` and ``delivery_trace`` are only emitted when
    present (runs on non-synchronous schedulers), so synchronous-run
    dictionaries are identical to those written before the round-engine
    refactor.
    """
    data = _history_base_dict(history)
    if history.network_stats:
        data["network_stats"] = {k: int(v) for k, v in history.network_stats.items()}
    if history.delivery_trace:
        data["delivery_trace"] = [
            {k: int(v) for k, v in row.items()} for row in history.delivery_trace
        ]
    if history.node_stats:
        data["node_stats"] = {
            k: [int(v) for v in values] for k, values in history.node_stats.items()
        }
    if history.node_delivery_trace:
        data["node_delivery_trace"] = [
            {
                k: (int(v) if k == "round" else [int(u) for u in v])
                for k, v in row.items()
            }
            for row in history.node_delivery_trace
        ]
    return data


def _history_base_dict(history: TrainingHistory) -> dict:
    return {
        "setting": history.setting,
        "aggregation": history.aggregation,
        "attack": history.attack,
        "heterogeneity": history.heterogeneity,
        "num_clients": history.num_clients,
        "num_byzantine": history.num_byzantine,
        "records": [
            {
                "round_index": r.round_index,
                "accuracy": r.accuracy,
                "loss": r.loss,
                "per_client_accuracy": {str(k): v for k, v in r.per_client_accuracy.items()},
                "gradient_disagreement": r.gradient_disagreement,
            }
            for r in history.records
        ],
    }


def metric_from_json(value) -> float:
    """Parse a stored metric; ``None`` means a non-finite value was
    sanitised away by the strict-JSON writer (:mod:`repro.io.jsonl`).

    The one place that rule is implemented — every consumer of
    sanitised rows (history loading, sweep tables, CLI progress) goes
    through here.
    """
    return float("nan") if value is None else float(value)


def history_from_dict(data: dict) -> TrainingHistory:
    """Inverse of :func:`history_to_dict`."""
    required = {"setting", "aggregation", "heterogeneity", "num_clients", "num_byzantine"}
    missing = required - set(data)
    if missing:
        raise ValueError(f"history dictionary is missing fields: {sorted(missing)}")
    history = TrainingHistory(
        setting=data["setting"],
        aggregation=data["aggregation"],
        attack=data.get("attack"),
        heterogeneity=data["heterogeneity"],
        num_clients=int(data["num_clients"]),
        num_byzantine=int(data["num_byzantine"]),
        network_stats={
            str(k): int(v) for k, v in data.get("network_stats", {}).items()
        },
        delivery_trace=[
            {str(k): int(v) for k, v in row.items()}
            for row in data.get("delivery_trace", [])
        ],
        node_stats={
            str(k): [int(v) for v in values]
            for k, values in data.get("node_stats", {}).items()
        },
        node_delivery_trace=[
            {
                str(k): (int(v) if k == "round" else [int(u) for u in v])
                for k, v in row.items()
            }
            for row in data.get("node_delivery_trace", [])
        ],
    )
    for record in data.get("records", []):
        history.append(
            RoundRecord(
                round_index=int(record["round_index"]),
                accuracy=metric_from_json(record["accuracy"]),
                loss=metric_from_json(record["loss"]),
                per_client_accuracy={
                    int(k): metric_from_json(v) for k, v in record.get("per_client_accuracy", {}).items()
                },
                gradient_disagreement=(
                    None
                    if record.get("gradient_disagreement") is None
                    else float(record["gradient_disagreement"])
                ),
            )
        )
    return history


def save_histories(histories: Mapping[str, TrainingHistory], path: PathLike) -> Path:
    """Write a labelled set of histories to a JSON file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {label: history_to_dict(history) for label, history in histories.items()}
    target.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return target


def load_histories(path: PathLike) -> Dict[str, TrainingHistory]:
    """Load a labelled set of histories previously written by :func:`save_histories`."""
    source = Path(path)
    payload = json.loads(source.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{source} does not contain a label -> history mapping")
    return {label: history_from_dict(data) for label, data in payload.items()}
