"""Collaborative learning: clients, servers and training loops.

Two training models from the paper:

- :class:`CentralizedTrainer` — a server holds the global model, every
  client computes a stochastic gradient on the current global weights,
  Byzantine clients corrupt theirs, and the server applies a robust
  aggregation rule before the SGD step.
- :class:`DecentralizedTrainer` — no server: every client holds its own
  model, gradients are exchanged over the reliable-broadcast network,
  and each learning iteration runs an approximate-agreement subroutine
  for ``ceil(log2(t))`` sub-rounds before clients apply their (nearly
  agreed) aggregate to their local models.

:mod:`repro.learning.experiment` turns string-named configurations into
runnable experiments; the benchmarks and examples are thin wrappers over
it.
"""

from repro.learning.client import Client
from repro.learning.history import RoundRecord, TrainingHistory
from repro.learning.centralized import CentralizedTrainer
from repro.learning.decentralized import DecentralizedTrainer
from repro.learning.experiment import (
    ExperimentConfig,
    build_experiment,
    clear_data_cache,
    data_cache_stats,
    run_centralized_experiment,
    run_decentralized_experiment,
    run_experiment,
)

__all__ = [
    "CentralizedTrainer",
    "Client",
    "DecentralizedTrainer",
    "ExperimentConfig",
    "RoundRecord",
    "TrainingHistory",
    "build_experiment",
    "clear_data_cache",
    "data_cache_stats",
    "run_centralized_experiment",
    "run_decentralized_experiment",
    "run_experiment",
]
