"""Centralized collaborative learning loop.

One server coordinates the round structure (Section 2.1 of the paper):

1. every client loads the global weights and computes a stochastic
   gradient on its local shard,
2. Byzantine clients replace their gradient according to the configured
   attack (a rushing adversary: it sees the honest gradients first),
3. the server aggregates the received gradients with a robust rule and
   performs the SGD step ``theta <- theta - lr_t * aggregate``,
4. the global model's test accuracy is recorded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.aggregation.base import AggregationRule
from repro.aggregation.context import AggregationContext
from repro.byzantine.base import AttackContext
from repro.data.datasets import Dataset
from repro.engine.base import RoundEngine
from repro.engine.synchronous import SynchronousScheduler
from repro.learning.client import Client
from repro.learning.history import RoundRecord, TrainingHistory
from repro.network.batch import BatchInbox
from repro.network.reliable_broadcast import BroadcastPlan
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator

_logger = get_logger("learning.centralized")


class CentralizedTrainer:
    """Runs centralized collaborative learning with a robust server.

    Parameters
    ----------
    global_model:
        The server's model; its flat parameter vector is the global state.
    clients:
        All participating clients (honest and Byzantine alike; a client
        is Byzantine when its ``attack`` attribute is set).
    aggregation:
        The server-side aggregation rule.
    test_data:
        Held-out dataset for the per-round accuracy report.
    optimizer:
        SGD configuration; constructed from ``learning_rate`` and the
        round budget when omitted.
    engine:
        Round engine modelling the client -> server exchange as a star
        topology: every client broadcasts its (possibly corrupted)
        gradient and the server — one extra, receive-only node — reads
        its own inbox.  Defaults to lock-step delivery, which reproduces
        the historical trainer bitwise.  Under lossy / partially
        synchronous engines the server aggregates whatever arrived that
        round and skips the step (keeping the model) when nothing did.
    """

    def __init__(
        self,
        global_model: Sequential,
        clients: Sequence[Client],
        aggregation: AggregationRule,
        test_data: Dataset,
        *,
        optimizer: Optional[SGD] = None,
        learning_rate: float = 0.01,
        flatten_inputs: bool = True,
        seed=0,
        engine: Optional[RoundEngine] = None,
        dtype: Optional[str] = None,
    ) -> None:
        from repro.linalg.precision import dtype_name

        if not clients:
            raise ValueError("at least one client is required")
        self.dtype_name = dtype_name(dtype)
        self.global_model = global_model
        self.clients = list(clients)
        self.aggregation = aggregation
        self.test_data = test_data
        self.optimizer = optimizer if optimizer is not None else SGD(learning_rate)
        self.flatten_inputs = bool(flatten_inputs)
        self._rng = as_generator(seed)
        byz_ids = tuple(c.client_id for c in self.clients if c.is_byzantine)
        self.server_node = max(c.client_id for c in self.clients) + 1
        if engine is None:
            engine = SynchronousScheduler(
                self.server_node + 1, byz_ids, keep_history=False,
                require_full_broadcast=False,
            )
        if engine.n != self.server_node + 1:
            raise ValueError(
                f"engine must cover every client plus the server node "
                f"(need n={self.server_node + 1}, engine has n={engine.n})"
            )
        if engine.broadcast.require_full_broadcast:
            raise ValueError(
                "the centralized trainer runs a star exchange (clients unicast "
                "to the server); build the engine with require_full_broadcast=False"
            )
        if tuple(sorted(engine.byzantine)) != tuple(sorted(byz_ids)):
            raise ValueError(
                f"engine byzantine set {sorted(engine.byzantine)} does not match "
                f"clients {sorted(byz_ids)}"
            )
        self.engine = engine
        self._strict_delivery = isinstance(engine, SynchronousScheduler)
        # Robust rules need at least n - t vectors (the subset-based
        # ones enumerate (n - t)-subsets); under non-strict delivery the
        # server skips rounds that arrive below that floor.
        rule_n, rule_t = getattr(aggregation, "n", None), getattr(aggregation, "t", None)
        self._min_received = (
            max(1, int(rule_n) - int(rule_t))
            if rule_n is not None and rule_t is not None
            else 1
        )
        # Explicit wait condition for event-driven schedulers: the
        # server processes a round once the rule's n - t gradient floor
        # has arrived (or its wait window expires).  Respect a count the
        # experiment configuration already pinned on the engine.
        if self.engine.wait.count is None:
            self.engine.wait_for(count=self._min_received)

    # -- internals -----------------------------------------------------------
    def _test_inputs(self) -> np.ndarray:
        images = self.test_data.images
        return images.reshape(images.shape[0], -1) if self.flatten_inputs else images

    def _collect_gradients(
        self, parameters: np.ndarray, round_index: int
    ) -> tuple[Optional[np.ndarray], int, float]:
        """Gradients the server receives this round (after attacks).

        Every client submits one plan addressed to the server link only
        (the engine runs in star mode, so honest unicast is legal) and
        the server consumes its own inbox — which is where the timing
        model (drops, delays, crash windows) applies, and what the
        delivery counters measure.  Selective omission is meaningless
        here, but timing attacks may still shape delivery through
        ``send_delays``.

        Returns the received ``(m, d)`` gradient stack in client order
        (``None`` when nothing arrived), the received count, and the
        honest mean loss.  On the batch message plane the stack is one
        vectorized gather — zero-copy for a fully delivered round — with
        the rows bitwise-identical to stacking per-message payloads.
        """
        honest_vectors: Dict[int, np.ndarray] = {}
        own_vectors: Dict[int, np.ndarray] = {}
        losses: List[float] = []
        for client in self.clients:
            loss, grad = client.compute_gradient(parameters)
            own_vectors[client.client_id] = grad
            if not client.is_byzantine:
                honest_vectors[client.client_id] = grad
                losses.append(loss)

        server_only = frozenset({self.server_node})
        plans: List[BroadcastPlan] = []
        for client in self.clients:
            if not client.is_byzantine:
                plans.append(
                    BroadcastPlan(
                        sender=client.client_id,
                        payload=own_vectors[client.client_id],
                        recipients=server_only,
                    )
                )
                continue
            context = AttackContext(
                node=client.client_id,
                round_index=round_index,
                own_vector=own_vectors[client.client_id],
                honest_vectors=honest_vectors,
                rng=self._rng,
                horizon=self.engine.horizon,
                delivery_trace=self.engine.trace_tail(),
            )
            corrupted = client.attack.corrupt(context)
            # Attacks state their lags per honest receiver, but the star
            # exchange has a single link (client -> server): the
            # strongest requested lag applies to the server delivery, so
            # timing attacks stay expressible here instead of being
            # silently voided by the topology mismatch.
            requested = client.attack.send_delays(context)
            delays = (
                {self.server_node: max(requested.values())} if requested else None
            )
            # A silent (crashed) Byzantine client simply contributes nothing.
            plans.append(
                BroadcastPlan(
                    sender=client.client_id,
                    payload=None if corrupted is None
                    else np.asarray(corrupted, dtype=np.float64).reshape(-1),
                    recipients=server_only,
                    delays=delays,
                    metadata={"attack": client.attack.name},
                )
            )

        result = self.engine.submit(plans, round_index)
        inbox = result.inboxes.get(self.server_node, [])
        mean_loss = float(np.mean(losses)) if losses else float("nan")
        if isinstance(inbox, BatchInbox):
            if len(inbox) == 0:
                return None, 0, mean_loss
            # Reorder delivered rows into client order without building
            # a single Message.  Delivery order already *is* client
            # order for the horizon-based schedulers, keeping the gather
            # zero-copy (and its transported sparsity profile attached);
            # the asynchronous scheduler's arrival order needs one row
            # permutation.
            row_of = {s: i for i, s in enumerate(inbox.senders())}
            order = [
                row_of[client.client_id]
                for client in self.clients
                if client.client_id in row_of
            ]
            matrix = inbox.matrix()
            if order != list(range(len(order))) or len(order) != len(inbox):
                matrix = np.asarray(matrix)[np.asarray(order, dtype=np.int64)]
            return matrix, len(order), mean_loss
        delivered = {msg.sender: msg.payload for msg in inbox}
        received = [
            delivered[client.client_id]
            for client in self.clients
            if client.client_id in delivered
        ]
        if not received:
            return None, 0, mean_loss
        return np.stack(received, axis=0), len(received), mean_loss

    # -- public API -----------------------------------------------------------
    def train(self, rounds: int, *, record_every: int = 1) -> TrainingHistory:
        """Run ``rounds`` global communication rounds and return the history."""
        if rounds < 1:
            raise ValueError("rounds must be positive")
        if record_every < 1:
            raise ValueError("record_every must be positive")
        if self.optimizer.total_rounds is None:
            self.optimizer.total_rounds = rounds

        history = TrainingHistory(
            setting="centralized",
            aggregation=getattr(self.aggregation, "name", type(self.aggregation).__name__),
            attack=self._attack_name(),
            heterogeneity="unknown",
            num_clients=len(self.clients),
            num_byzantine=sum(1 for c in self.clients if c.is_byzantine),
        )
        parameters = self.global_model.get_flat_parameters()
        test_inputs = self._test_inputs()

        for round_index in range(rounds):
            received, num_received, mean_loss = self._collect_gradients(
                parameters, round_index
            )
            if received is None and self._strict_delivery:
                raise RuntimeError(
                    f"no gradients received in round {round_index}; cannot aggregate"
                )
            if not self._strict_delivery and num_received < self._min_received:
                # The lossy/partial network starved the server below the
                # rule's floor this round; skip the step, keep the model.
                _logger.info(
                    "centralized round %d: only %d gradients arrived (need %d), skipping step",
                    round_index, num_received, self._min_received,
                )
            else:
                # One context per round: every distance-based step of the
                # rule (and any diagnostics sharing it) reuses the same
                # pairwise-distance matrix.
                round_context = AggregationContext(received, dtype=self.dtype_name)
                aggregate = self.aggregation.aggregate(context=round_context)
                parameters = self.optimizer.step(parameters, aggregate, round_index)
                self.global_model.set_flat_parameters(parameters)

            if (round_index + 1) % record_every == 0 or round_index == rounds - 1:
                acc = self.global_model.evaluate_accuracy(test_inputs, self.test_data.labels)
                history.append(
                    RoundRecord(round_index=round_index, accuracy=acc, loss=mean_loss)
                )
                _logger.info(
                    "centralized round %d: accuracy=%.4f loss=%.4f", round_index, acc, mean_loss
                )
        if self.engine.records_stats:
            history.network_stats = self.engine.stats_snapshot()
            history.delivery_trace = self.engine.trace_snapshot()
            if self.engine.node_trace:
                history.node_stats = self.engine.node_stats_snapshot()
                history.node_delivery_trace = self.engine.node_trace_snapshot()
        return history

    def _attack_name(self) -> Optional[str]:
        for client in self.clients:
            if client.is_byzantine and client.attack is not None:
                return client.attack.name
        return None
