"""Client abstraction shared by the centralized and decentralized loops."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.byzantine.base import GradientAttack
from repro.data.batching import BatchSampler
from repro.data.datasets import Dataset
from repro.nn.model import Sequential
from repro.utils.rng import as_generator


class Client:
    """A learning participant with a local dataset and a local model.

    Parameters
    ----------
    client_id:
        Stable integer id; doubles as the node id in the network
        simulation.
    dataset:
        The client's local training shard.
    model:
        The client's model instance.  In the centralized loop every
        client's parameters are overwritten with the global weights each
        round; in the decentralized loop the instance persists and is
        updated with the client's own agreed aggregate.
    batch_size:
        Mini-batch size of the stochastic gradient estimate.
    attack:
        When set, the client is Byzantine and its *shared* gradient is
        produced by the attack (its honestly computed gradient is still
        available to the attack as ``own_vector``).
    flatten_inputs:
        Whether images must be flattened before the model consumes them
        (true for the MLP, false for CifarNet).
    """

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        model: Sequential,
        *,
        batch_size: int = 32,
        attack: Optional[GradientAttack] = None,
        flatten_inputs: bool = True,
        seed=0,
    ) -> None:
        if client_id < 0:
            raise ValueError("client_id must be non-negative")
        self.client_id = int(client_id)
        self.dataset = dataset
        self.model = model
        self.attack = attack
        self.flatten_inputs = bool(flatten_inputs)
        self._sampler = BatchSampler(dataset, batch_size=batch_size, seed=seed)
        self._rng = as_generator(seed)
        self.last_loss: float = float("nan")

    @property
    def is_byzantine(self) -> bool:
        """Whether this client is configured with an attack."""
        return self.attack is not None

    def _prepare(self, images: np.ndarray) -> np.ndarray:
        return images.reshape(images.shape[0], -1) if self.flatten_inputs else images

    def compute_gradient(self, parameters: np.ndarray) -> Tuple[float, np.ndarray]:
        """Honest stochastic gradient at the given (flat) parameters.

        The client loads ``parameters`` into its model, draws a random
        mini-batch from its local shard and returns the mean
        cross-entropy loss and the flat gradient — Equation (2) of the
        paper.
        """
        self.model.set_flat_parameters(parameters)
        images, labels = self._sampler.sample()
        loss, grad = self.model.gradient(self._prepare(images), labels)
        self.last_loss = loss
        return loss, grad

    def local_parameters(self) -> np.ndarray:
        """Current flat parameters of the client's own model."""
        return self.model.get_flat_parameters()

    def apply_update(self, new_parameters: np.ndarray) -> None:
        """Overwrite the client's model parameters."""
        self.model.set_flat_parameters(new_parameters)

    def evaluate_accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the client's current model on the given data."""
        return self.model.evaluate_accuracy(self._prepare(images), labels)
