"""Decentralized collaborative learning loop.

No central server (Section 2.1, decentralized model): every client keeps
its own model.  Each learning iteration ``t``:

1. every honest client computes a stochastic gradient of its local loss
   at its *own* current parameters,
2. the clients run an approximate-agreement subroutine on the gradients
   for ``max(1, ceil(log2(t + 2)))`` sub-rounds (the ``log t`` schedule
   of El-Mhamdi et al.) over the reliable-broadcast network — Byzantine
   clients attack in every sub-round,
3. each honest client applies *its own* (approximately agreed) aggregate
   to its local model with the decayed SGD step, and
4. every honest client's model is evaluated on the shared test set; the
   mean accuracy is reported.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.agreement.base import AgreementAlgorithm
from repro.byzantine.base import GradientAttack
from repro.data.datasets import Dataset
from repro.engine.base import RoundEngine
from repro.engine.rounds import attack_adversary_plan, run_exchange
from repro.engine.synchronous import SynchronousScheduler
from repro.learning.client import Client
from repro.learning.history import RoundRecord, TrainingHistory
from repro.linalg.distances import diameter
from repro.network.topology import validate_topology
from repro.nn.optimizers import SGD
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator

_logger = get_logger("learning.decentralized")


def default_subround_schedule(iteration: int) -> int:
    """Number of agreement sub-rounds at learning iteration ``iteration``.

    The paper follows El-Mhamdi et al. and uses ``log t`` sub-rounds at
    "big" iteration ``t``; we use ``max(1, ceil(log2(t + 2)))`` so the
    very first iterations still run at least one exchange.
    """
    if iteration < 0:
        raise ValueError("iteration must be non-negative")
    return max(1, math.ceil(math.log2(iteration + 2)))


class DecentralizedTrainer:
    """Runs fully decentralized Byzantine-tolerant collaborative learning.

    Parameters
    ----------
    clients:
        All clients, indexed by ``client_id`` 0..n-1 (ids must be dense
        because they double as network node ids).
    agreement:
        The approximate-agreement algorithm applied to the gradients.
    test_data:
        Shared test set used to evaluate every honest client's model.
    subround_schedule:
        Callable mapping the learning iteration to the number of
        agreement sub-rounds (defaults to the ``log t`` schedule).
    engine:
        Round engine supplying the timing model of the gradient
        exchange.  Defaults to a lock-step scheduler without history
        retention (thousands of sub-rounds would otherwise pin every
        inbox in memory).  Under lossy / partially synchronous engines a
        client starved below quorum keeps its current gradient estimate
        for that sub-round.
    exchange:
        ``"agreement"`` (default) runs the paper's approximate-agreement
        sub-rounds, which require every node to be able to receive the
        ``n - t`` quorum — on a sparse engine topology that quorum
        feasibility is validated up front.  ``"gossip"`` replaces the
        update rule with neighbourhood averaging: each sub-round a node
        takes the plain mean of whatever arrived (its closed
        neighbourhood under the topology — i.e. the degree-weighted
        gossip step), so any *connected* topology works.  Gossip offers
        no Byzantine robustness guarantee; it is the classical baseline
        the agreement rules are compared against.
    """

    #: Exchange modes accepted by the trainer (and the ``exchange``
    #: config field / sweep axis).
    EXCHANGE_MODES = ("agreement", "gossip")

    def __init__(
        self,
        clients: Sequence[Client],
        agreement: AgreementAlgorithm,
        test_data: Dataset,
        *,
        optimizer: Optional[SGD] = None,
        learning_rate: float = 0.01,
        subround_schedule=default_subround_schedule,
        flatten_inputs: bool = True,
        seed=0,
        engine: Optional[RoundEngine] = None,
        exchange: str = "agreement",
    ) -> None:
        if not clients:
            raise ValueError("at least one client is required")
        ids = sorted(c.client_id for c in clients)
        if ids != list(range(len(clients))):
            raise ValueError("client ids must be exactly 0..n-1")
        if agreement.n != len(clients):
            raise ValueError(
                f"agreement algorithm configured for n={agreement.n} but {len(clients)} clients given"
            )
        self.clients = sorted(clients, key=lambda c: c.client_id)
        self.agreement = agreement
        self.test_data = test_data
        self.optimizer = optimizer if optimizer is not None else SGD(learning_rate)
        self.subround_schedule = subround_schedule
        self.flatten_inputs = bool(flatten_inputs)
        self._rng = as_generator(seed)

        self.byzantine_ids = tuple(c.client_id for c in self.clients if c.is_byzantine)
        if len(self.byzantine_ids) > agreement.t:
            raise ValueError(
                f"{len(self.byzantine_ids)} Byzantine clients exceed the tolerance t={agreement.t}"
            )
        self.honest_ids = tuple(c.client_id for c in self.clients if not c.is_byzantine)
        if engine is None:
            engine = SynchronousScheduler(
                len(self.clients), self.byzantine_ids, keep_history=False
            )
        if engine.n != len(self.clients):
            raise ValueError(
                f"engine is configured for n={engine.n} but there are {len(self.clients)} clients"
            )
        if tuple(sorted(engine.byzantine)) != self.byzantine_ids:
            raise ValueError(
                f"engine byzantine set {sorted(engine.byzantine)} does not match "
                f"clients {self.byzantine_ids}"
            )
        self.engine = engine
        if exchange not in self.EXCHANGE_MODES:
            raise ValueError(
                f"unknown exchange mode {exchange!r}; supported: {self.EXCHANGE_MODES}"
            )
        self.exchange = exchange
        policy = "raise" if isinstance(engine, SynchronousScheduler) else "starve"
        if exchange == "gossip":
            # Gossip only needs *something* to average; a node that
            # received nothing this sub-round keeps its vector.
            self.engine.require_quorum(1, policy=policy)
        else:
            if engine.topology is not None:
                # Full agreement needs every node able to receive the
                # n - t quorum; fail fast with the actionable diagnostic
                # instead of starving every round at runtime.
                validate_topology(engine.topology, engine.n, t=agreement.t)
            self.engine.require_quorum(agreement.minimum_messages(), policy=policy)
        # Event-driven schedulers have no delivery horizon: each client
        # waits for the n - t agreement quorum (or its wait window),
        # then processes whatever arrived.  A count pinned on the engine
        # by the experiment config wins over the quorum reading.
        self.engine.wait_for(quorum=True)
        #: Backwards-compatible alias (this used to be a SynchronousNetwork).
        self.network = self.engine

    # -- internals -----------------------------------------------------------
    def _test_inputs(self) -> np.ndarray:
        images = self.test_data.images
        return images.reshape(images.shape[0], -1) if self.flatten_inputs else images

    def _attack_for(self, node: int) -> Optional[GradientAttack]:
        return self.clients[node].attack

    def _run_agreement(
        self,
        honest_gradients: Dict[int, np.ndarray],
        byzantine_gradients: Dict[int, np.ndarray],
        subrounds: int,
        iteration: int,
    ) -> Dict[int, np.ndarray]:
        """Execute the agreement sub-rounds; returns each honest node's output."""
        current = {i: g.copy() for i, g in honest_gradients.items()}
        adversary_plan = (
            attack_adversary_plan(
                self._attack_for,
                byzantine_gradients,
                self._rng,
                horizon=self.engine.horizon,
                engine=self.engine,
                extra_metadata={"iteration": iteration},
            )
            if self.byzantine_ids
            else None
        )
        # Each learning iteration is a fresh exchange: any message still
        # in flight from the previous iteration's sub-rounds is stale.
        self.engine.reset()
        if self.exchange == "gossip":
            # Gossip step: the plain mean of the received stack.  The
            # delivered set is the node's closed neighbourhood under the
            # engine topology, so this is the degree-weighted
            # (1/|N[i]|-per-neighbour) gossip average.
            update = lambda _node, received: np.asarray(received).mean(axis=0)
        else:
            update = lambda _node, received: self.agreement.update(received)
        return run_exchange(
            self.engine,
            current,
            subrounds,
            update,
            adversary_plan,
        )

    # -- public API -----------------------------------------------------------
    def train(self, rounds: int, *, record_every: int = 1) -> TrainingHistory:
        """Run ``rounds`` learning iterations and return the history."""
        if rounds < 1:
            raise ValueError("rounds must be positive")
        if record_every < 1:
            raise ValueError("record_every must be positive")
        if self.optimizer.total_rounds is None:
            self.optimizer.total_rounds = rounds

        history = TrainingHistory(
            setting="decentralized",
            aggregation=getattr(self.agreement, "name", type(self.agreement).__name__),
            attack=self._attack_name(),
            heterogeneity="unknown",
            num_clients=len(self.clients),
            num_byzantine=len(self.byzantine_ids),
        )
        test_inputs = self._test_inputs()
        test_labels = self.test_data.labels

        for iteration in range(rounds):
            honest_gradients: Dict[int, np.ndarray] = {}
            byzantine_gradients: Dict[int, np.ndarray] = {}
            losses: List[float] = []
            for client in self.clients:
                loss, grad = client.compute_gradient(client.local_parameters())
                if client.is_byzantine:
                    byzantine_gradients[client.client_id] = grad
                else:
                    honest_gradients[client.client_id] = grad
                    losses.append(loss)

            subrounds = int(self.subround_schedule(iteration))
            agreed = self._run_agreement(
                honest_gradients, byzantine_gradients, subrounds, iteration
            )

            for node, aggregate in agreed.items():
                client = self.clients[node]
                updated = self.optimizer.step(
                    client.local_parameters(), aggregate, iteration
                )
                client.apply_update(updated)

            if (iteration + 1) % record_every == 0 or iteration == rounds - 1:
                per_client = {
                    node: self.clients[node].model.evaluate_accuracy(test_inputs, test_labels)
                    for node in self.honest_ids
                }
                disagreement = diameter(np.stack(list(agreed.values()), axis=0)) if len(agreed) > 1 else 0.0
                record = RoundRecord(
                    round_index=iteration,
                    accuracy=float(np.mean(list(per_client.values()))),
                    loss=float(np.mean(losses)) if losses else float("nan"),
                    per_client_accuracy=per_client,
                    gradient_disagreement=float(disagreement),
                )
                history.append(record)
                _logger.info(
                    "decentralized iteration %d: mean accuracy=%.4f disagreement=%.3e",
                    iteration,
                    record.accuracy,
                    disagreement,
                )
        if self.engine.records_stats:
            history.network_stats = self.engine.stats_snapshot()
            history.delivery_trace = self.engine.trace_snapshot()
            if self.engine.node_trace:
                history.node_stats = self.engine.node_stats_snapshot()
                history.node_delivery_trace = self.engine.node_trace_snapshot()
        return history

    def _attack_name(self) -> Optional[str]:
        for client in self.clients:
            if client.is_byzantine and client.attack is not None:
                return client.attack.name
        return None
