"""Experiment configuration and builders.

A single :class:`ExperimentConfig` describes everything a figure of the
paper needs: dataset, heterogeneity regime, number of clients and
Byzantine clients, attack, aggregation rule / agreement algorithm,
architecture and round budget.  The builders translate the string-valued
configuration into concrete objects, so benchmarks and examples remain
declarative and serialisable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.aggregation.registry import make_rule
from repro.agreement.registry import make_algorithm
from repro.byzantine.label_flip import LabelFlipAttack, flip_labels
from repro.byzantine.registry import make_attack
from repro.data.datasets import (
    Dataset,
    make_synthetic_cifar10,
    make_synthetic_mnist,
    train_test_split,
)
from repro.data.partition import Heterogeneity, partition_dataset
from repro.engine import SCHEDULER_NAMES, make_scheduler
from repro.engine.base import RoundEngine
from repro.learning.centralized import CentralizedTrainer
from repro.learning.client import Client
from repro.learning.decentralized import DecentralizedTrainer
from repro.learning.history import TrainingHistory
from repro.network.topology import Topology, make_topology, resolve_topology_name
from repro.nn.architectures import build_cifarnet, build_mlp
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD
from repro.utils.rng import stable_component_seed
from repro.utils.validation import require


@dataclass(frozen=True)
class ExperimentConfig:
    """Declarative description of one collaborative-learning experiment.

    The defaults mirror the paper: 10 clients, 1 Byzantine client running
    the sign-flip attack, MNIST-like data, MLP architecture, learning
    rate 0.01 with global-round decay.
    """

    setting: str = "centralized"  # "centralized" | "decentralized"
    dataset: str = "mnist"  # "mnist" | "cifar10"
    heterogeneity: str = "mild"  # "uniform" | "mild" | "extreme"
    aggregation: str = "box-geom"
    attack: Optional[str] = "sign-flip"
    num_clients: int = 10
    num_byzantine: int = 1
    byzantine_tolerance: Optional[int] = None  # defaults to num_byzantine
    rounds: int = 30
    batch_size: int = 32
    learning_rate: float = 0.01
    num_samples: int = 1200
    test_fraction: float = 0.1
    seed: int = 0
    attack_kwargs: dict = field(default_factory=dict)
    aggregation_kwargs: dict = field(default_factory=dict)
    # Smaller hidden sizes keep decentralized runs (10 models) laptop-fast.
    mlp_hidden: Tuple[int, int] = (64, 32)
    # Timing model of the communication rounds (see repro.engine):
    # "synchronous" (the paper), "partial" (bounded per-link delays,
    # horizon = `delay`), "lossy" (`drop_rate` per-link loss plus
    # transient `crash_schedule` windows), or "asynchronous" (event-
    # driven, no horizon: heavy-tailed regime-modulated delays with
    # explicit wait conditions).
    scheduler: str = "synchronous"
    delay: int = 0
    drop_rate: float = 0.0
    crash_schedule: Tuple[Tuple[int, int, int], ...] = ()
    # Asynchronous-scheduler knobs: `wait_timeout` (required > 0 there)
    # bounds how many virtual rounds a node waits past a round start;
    # `wait_count` optionally pins an explicit message target (0 = the
    # consumer's quorum / n - t default); `burstiness` is the per-round
    # probability of entering the bursty (MMPP-style) delay regime.
    wait_count: int = 0
    wait_timeout: float = 0.0
    burstiness: float = 0.0
    # RNG draw strategy of the stochastic schedulers (see
    # repro.engine.base.RNG_MODES): "scalar" reproduces the pinned
    # bitwise reference stream; "vectorized" draws whole-round vectors —
    # identically distributed but a different stream, validated
    # statistically.  Only meaningful for scheduler in
    # ("partial", "asynchronous").
    rng_mode: str = "scalar"
    # Precision tier of the aggregation kernels (see
    # repro.linalg.precision): "float64" reproduces the historical
    # results bit for bit, "float32" halves kernel bandwidth and is
    # accurate to the documented tolerance tier.
    dtype: str = "float64"
    # Record per-node delivery traces on the engine (batch message plane
    # only; see RoundEngine.node_trace_snapshot).  Off by default — the
    # per-round aggregate trace is usually enough and per-node rows cost
    # O(n) memory per round.
    node_trace: bool = False
    # Communication topology of the decentralized exchange (see
    # repro.network.topology): "complete" (the paper's all-to-all,
    # bitwise-identical to the historical behaviour), "ring", "torus",
    # "random-regular" (alias "expander"), or "clusters".
    # `topology_kwargs` parameterise the generator (e.g. {"degree": 4}
    # for random-regular, {"clusters": 3, "bridges": 2} for clusters).
    topology: str = "complete"
    topology_kwargs: dict = field(default_factory=dict)
    # How decentralized clients combine received gradients each
    # sub-round: "agreement" (the paper's approximate agreement — needs
    # the n - t quorum to be reachable at every node) or "gossip"
    # (neighbourhood mean — works on any connected topology, no
    # Byzantine robustness guarantee).
    exchange: str = "agreement"

    def __post_init__(self) -> None:
        from repro.linalg.precision import SUPPORTED_DTYPES

        require(self.dtype in SUPPORTED_DTYPES,
                f"unknown dtype {self.dtype!r}; supported: {SUPPORTED_DTYPES}")
        require(self.setting in ("centralized", "decentralized"),
                f"unknown setting {self.setting!r}")
        require(self.dataset in ("mnist", "cifar10"), f"unknown dataset {self.dataset!r}")
        Heterogeneity(self.heterogeneity)  # validates
        require(self.num_clients >= 2, "need at least 2 clients")
        require(0 <= self.num_byzantine < self.num_clients,
                "num_byzantine must be in [0, num_clients)")
        require(self.rounds >= 1, "rounds must be positive")
        require(self.num_samples >= 10 * self.num_clients,
                "num_samples too small for the requested number of clients")
        require(self.scheduler in SCHEDULER_NAMES,
                f"unknown scheduler {self.scheduler!r}; available: {SCHEDULER_NAMES}")
        require(self.delay >= 0, "delay must be non-negative")
        require(0.0 <= self.drop_rate < 1.0, "drop_rate must be in [0, 1)")
        # Knob/scheduler consistency — a sweep axis that silently did
        # nothing would corrupt conclusions, so fail at config time.
        if self.scheduler == "partial":
            require(self.delay >= 1, "scheduler='partial' needs delay >= 1")
        else:
            require(self.delay == 0,
                    f"delay is only meaningful for scheduler='partial' (got {self.scheduler!r})")
        if self.scheduler != "lossy":
            require(self.drop_rate == 0.0 and not self.crash_schedule,
                    "drop_rate/crash_schedule are only meaningful for scheduler='lossy'")
        require(self.wait_count >= 0, "wait_count must be non-negative")
        require(0.0 <= self.burstiness < 1.0, "burstiness must be in [0, 1)")
        if self.scheduler == "asynchronous":
            require(self.wait_timeout > 0.0,
                    "scheduler='asynchronous' needs wait_timeout > 0 (no delivery "
                    "horizon; the wait window must be explicit)")
        else:
            require(self.wait_count == 0 and self.wait_timeout == 0.0
                    and self.burstiness == 0.0,
                    "wait_count/wait_timeout/burstiness are only meaningful for "
                    "scheduler='asynchronous'")
        from repro.engine import RNG_MODES

        require(self.rng_mode in RNG_MODES,
                f"unknown rng_mode {self.rng_mode!r}; available: {RNG_MODES}")
        if self.rng_mode != "scalar":
            require(self.scheduler in ("partial", "asynchronous"),
                    "rng_mode='vectorized' is only meaningful for the stochastic-"
                    "delay schedulers ('partial', 'asynchronous')")
        if self.node_trace:
            require(self.scheduler != "synchronous",
                    "node_trace records per-node delivery rows; the synchronous "
                    "scheduler delivers everything and records no stats")
        # Topology / exchange validation.  Resolve aliases eagerly so
        # "expander" and "random-regular" configs compare (and sweep)
        # as one canonical value.
        object.__setattr__(self, "topology", resolve_topology_name(self.topology))
        require(self.exchange in ("agreement", "gossip"),
                f"unknown exchange {self.exchange!r}; supported: ('agreement', 'gossip')")
        if self.topology == "complete":
            require(not self.topology_kwargs,
                    "topology_kwargs are only meaningful for sparse topologies "
                    "(topology='complete' takes no parameters)")
        else:
            require(self.setting == "decentralized",
                    "sparse topologies only apply to the decentralized setting "
                    "(the centralized star exchange has a fixed shape)")
        if self.exchange == "gossip":
            require(self.setting == "decentralized",
                    "exchange='gossip' only applies to the decentralized setting")
        # Canonicalise crash windows to nested int tuples so configs
        # built from JSON lists compare equal to hand-built ones.
        object.__setattr__(
            self,
            "crash_schedule",
            tuple(tuple(int(v) for v in window) for window in self.crash_schedule),
        )
        for window in self.crash_schedule:
            require(len(window) == 3,
                    f"crash window must be (node, start, stop), got {window!r}")

    @property
    def tolerance(self) -> int:
        """Resilience parameter ``t`` used by the robust rules."""
        t = self.byzantine_tolerance if self.byzantine_tolerance is not None else self.num_byzantine
        return max(1, int(t))

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy of the config with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass
class BuiltExperiment:
    """Concrete objects materialised from an :class:`ExperimentConfig`."""

    config: ExperimentConfig
    train_data: Dataset
    test_data: Dataset
    client_shards: List[Dataset]
    clients: List[Client]
    global_model: Optional[Sequential]
    flatten_inputs: bool


# Cross-cell reuse: sweep cells sharing their data axes (dataset,
# sample budget, heterogeneity, partition seed) rebuild byte-identical
# shards, so one in-process cache serves them all.  Builds are pure
# functions of the key and consumers never mutate shard arrays, which
# keeps sweep output byte-identical with the cache on or off; each
# multiprocessing worker simply grows its own cache.
_DATA_CACHE: dict = {}
_DATA_CACHE_LIMIT = 16
_DATA_CACHE_STATS = {"hits": 0, "misses": 0}


def _data_cache_get(key, build):
    if key in _DATA_CACHE:
        _DATA_CACHE_STATS["hits"] += 1
        return _DATA_CACHE[key]
    _DATA_CACHE_STATS["misses"] += 1
    value = build()
    while len(_DATA_CACHE) >= _DATA_CACHE_LIMIT:
        _DATA_CACHE.pop(next(iter(_DATA_CACHE)))
    _DATA_CACHE[key] = value
    return value


def clear_data_cache() -> None:
    """Drop the cross-cell dataset/shard cache (mainly for tests)."""
    _DATA_CACHE.clear()
    _DATA_CACHE_STATS["hits"] = 0
    _DATA_CACHE_STATS["misses"] = 0


def data_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the cross-cell dataset/shard cache."""
    return dict(_DATA_CACHE_STATS)


def _make_dataset(config: ExperimentConfig) -> Tuple[Dataset, Dataset]:
    def build() -> Tuple[Dataset, Dataset]:
        seed = stable_component_seed(config.seed, "dataset", config.dataset)
        if config.dataset == "mnist":
            full = make_synthetic_mnist(config.num_samples, seed=seed)
        else:
            full = make_synthetic_cifar10(config.num_samples, seed=seed)
        return train_test_split(full, test_fraction=config.test_fraction,
                                seed=stable_component_seed(config.seed, "split"))

    key = ("dataset", config.dataset, config.num_samples, config.test_fraction,
           config.seed)
    return _data_cache_get(key, build)


def _make_shards(config: ExperimentConfig, train_data: Dataset) -> List[Dataset]:
    def build() -> List[Dataset]:
        return partition_dataset(
            train_data,
            config.num_clients,
            config.heterogeneity,
            seed=stable_component_seed(config.seed, "partition", config.heterogeneity),
        )

    key = ("shards", config.dataset, config.num_samples, config.test_fraction,
           config.seed, config.num_clients, config.heterogeneity)
    return _data_cache_get(key, build)


def _make_model(config: ExperimentConfig, train_data: Dataset, *, seed_tag: str) -> Tuple[Sequential, bool]:
    seed = stable_component_seed(config.seed, "model", seed_tag)
    if config.dataset == "cifar10":
        model = build_cifarnet(train_data.image_shape, train_data.num_classes, seed=seed)
        return model, False
    model = build_mlp(train_data.feature_dim, hidden_sizes=config.mlp_hidden,
                      num_classes=train_data.num_classes, seed=seed)
    return model, True


def build_experiment(config: ExperimentConfig) -> BuiltExperiment:
    """Materialise datasets, models and clients for a configuration.

    Byzantine roles are assigned to the *last* ``num_byzantine`` client
    ids, which keeps node ids stable across aggregation rules so that
    comparisons use identical data assignments.
    """
    train_data, test_data = _make_dataset(config)
    shards = _make_shards(config, train_data)

    byzantine_ids = set(range(config.num_clients - config.num_byzantine, config.num_clients))
    # In the centralized setting all clients share one architecture; the
    # global model is a separate instance holding the server state.
    global_model, flatten = _make_model(config, train_data, seed_tag="global")

    clients: List[Client] = []
    for client_id in range(config.num_clients):
        shard = shards[client_id]
        attack = None
        if client_id in byzantine_ids and config.attack is not None:
            attack = make_attack(config.attack, **config.attack_kwargs)
            if isinstance(attack, LabelFlipAttack):
                shard = Dataset(
                    images=shard.images,
                    labels=flip_labels(shard.labels, shard.num_classes, offset=attack.offset),
                    num_classes=shard.num_classes,
                    name=shard.name + "-poisoned",
                )
        model, _ = _make_model(config, train_data, seed_tag="global")
        # Every client starts from the same initial weights as the global
        # model (the paper synchronises weights at round 0).
        model.set_flat_parameters(global_model.get_flat_parameters())
        clients.append(
            Client(
                client_id,
                shard,
                model,
                batch_size=config.batch_size,
                attack=attack,
                flatten_inputs=flatten,
                seed=stable_component_seed(config.seed, "client", client_id),
            )
        )
    return BuiltExperiment(
        config=config,
        train_data=train_data,
        test_data=test_data,
        client_shards=shards,
        clients=clients,
        global_model=global_model,
        flatten_inputs=flatten,
    )


def _make_engine(
    config: ExperimentConfig, n: int, byzantine: Tuple[int, ...], *, star: bool = False
) -> RoundEngine:
    """Scheduler instance for one experiment run.

    The scheduler's own randomness (link delays, drops) is seeded from
    the experiment seed but on an independent component stream, so
    switching schedulers never perturbs the data/model/attack streams.
    Trainers drive thousands of rounds, so history retention is off.
    ``star`` builds the engine for the centralized client -> server
    exchange, where honest senders unicast to the server link.
    """
    topology: Optional[Topology] = None
    if config.topology != "complete":
        # Complete stays None (not a materialised complete Topology) so
        # the default engine path is bitwise-untouched.  The generator
        # seed is its own component stream: changing the topology axis
        # never perturbs the data/model/attack/scheduler streams.
        topology = make_topology(
            config.topology,
            n,
            seed=stable_component_seed(config.seed, "topology", config.topology),
            **config.topology_kwargs,
        )
    return make_scheduler(
        config.scheduler,
        n,
        byzantine,
        delay=config.delay,
        drop_rate=config.drop_rate,
        crash_schedule=config.crash_schedule,
        wait_count=config.wait_count,
        wait_timeout=config.wait_timeout,
        burstiness=config.burstiness,
        seed=stable_component_seed(config.seed, "scheduler", config.scheduler),
        keep_history=False,
        require_full_broadcast=not star,
        node_trace=config.node_trace,
        topology=topology,
        rng_mode=config.rng_mode,
    )


def run_centralized_experiment(config: ExperimentConfig) -> TrainingHistory:
    """Build and run a centralized experiment, returning its history."""
    require(config.setting == "centralized", "config.setting must be 'centralized'")
    built = build_experiment(config)
    rule = make_rule(
        config.aggregation,
        n=config.num_clients,
        t=config.tolerance,
        **config.aggregation_kwargs,
    )
    byzantine = tuple(c.client_id for c in built.clients if c.is_byzantine)
    trainer = CentralizedTrainer(
        built.global_model,
        built.clients,
        rule,
        built.test_data,
        optimizer=SGD(config.learning_rate, total_rounds=config.rounds),
        flatten_inputs=built.flatten_inputs,
        seed=stable_component_seed(config.seed, "trainer"),
        dtype=config.dtype,
        # One extra node: the server, consuming the star exchange.
        engine=_make_engine(config, config.num_clients + 1, byzantine, star=True),
    )
    history = trainer.train(config.rounds)
    history.heterogeneity = config.heterogeneity
    return history


def run_decentralized_experiment(config: ExperimentConfig) -> TrainingHistory:
    """Build and run a decentralized experiment, returning its history."""
    require(config.setting == "decentralized", "config.setting must be 'decentralized'")
    built = build_experiment(config)
    algorithm = make_algorithm(
        config.aggregation,
        config.num_clients,
        config.tolerance,
        dtype=config.dtype,
        **config.aggregation_kwargs,
    )
    byzantine = tuple(c.client_id for c in built.clients if c.is_byzantine)
    trainer = DecentralizedTrainer(
        built.clients,
        algorithm,
        built.test_data,
        optimizer=SGD(config.learning_rate, total_rounds=config.rounds),
        flatten_inputs=built.flatten_inputs,
        seed=stable_component_seed(config.seed, "trainer"),
        engine=_make_engine(config, config.num_clients, byzantine),
        exchange=config.exchange,
    )
    history = trainer.train(config.rounds)
    history.heterogeneity = config.heterogeneity
    return history


def run_experiment(config: ExperimentConfig) -> TrainingHistory:
    """Dispatch to the centralized or decentralized runner."""
    if config.setting == "centralized":
        return run_centralized_experiment(config)
    return run_decentralized_experiment(config)
