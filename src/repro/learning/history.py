"""Training history records produced by the learning loops."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RoundRecord:
    """Metrics recorded after one global communication round.

    Attributes
    ----------
    round_index:
        0-based global round.
    accuracy:
        Test accuracy of the global model (centralized) or the mean test
        accuracy over honest clients (decentralized).
    loss:
        Mean training loss reported by honest clients this round.
    per_client_accuracy:
        Decentralized only: test accuracy of every honest client's model.
    gradient_disagreement:
        Decentralized only: diameter of the honest clients' aggregated
        gradient vectors after the agreement sub-rounds (how far from
        exact agreement they ended up).
    """

    round_index: int
    accuracy: float
    loss: float
    per_client_accuracy: Dict[int, float] = field(default_factory=dict)
    gradient_disagreement: Optional[float] = None


@dataclass
class TrainingHistory:
    """Sequence of per-round records plus experiment metadata.

    ``network_stats`` holds the cumulative delivery counters of the
    round engine the run executed on (sent / delivered / dropped /
    delayed / crash_omitted messages).  It stays empty under the
    synchronous scheduler, whose delivery is total by definition.

    ``delivery_trace`` is the same information *per engine round*: one
    sparse dictionary per executed round (``{"round": <monotone clock>,
    "sent": ..., "delivered": ..., ...}``, zero counters omitted), so a
    burst of drops or a crash window is visible as an event in time
    rather than a smeared cumulative total.  Also empty for synchronous
    runs.

    ``node_stats`` / ``node_delivery_trace`` resolve the same counters
    per *node* (receiver-attributed): cumulative ``(n,)`` lists per
    counter, and one per-round row of per-node deltas.  Populated only
    when the experiment opted in (``ExperimentConfig.node_trace``, batch
    message plane); each per-node list sums exactly to the matching
    aggregate counter.
    """

    setting: str
    aggregation: str
    attack: Optional[str]
    heterogeneity: str
    num_clients: int
    num_byzantine: int
    records: List[RoundRecord] = field(default_factory=list)
    network_stats: Dict[str, int] = field(default_factory=dict)
    delivery_trace: List[Dict[str, int]] = field(default_factory=list)
    node_stats: Dict[str, List[int]] = field(default_factory=dict)
    node_delivery_trace: List[Dict[str, object]] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Add a round record (rounds must be appended in order)."""
        if self.records and record.round_index <= self.records[-1].round_index:
            raise ValueError("round records must be appended in increasing order")
        self.records.append(record)

    @property
    def rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self.records)

    def accuracies(self) -> List[float]:
        """Accuracy trace across rounds."""
        return [r.accuracy for r in self.records]

    def losses(self) -> List[float]:
        """Loss trace across rounds."""
        return [r.loss for r in self.records]

    def final_accuracy(self) -> float:
        """Accuracy after the last round (nan when nothing was recorded)."""
        return self.records[-1].accuracy if self.records else float("nan")

    def best_accuracy(self) -> float:
        """Best accuracy reached in any round (nan when nothing recorded)."""
        return max(self.accuracies()) if self.records else float("nan")

    def summary(self) -> Dict[str, float | int | str | None]:
        """Compact dictionary for benchmark report tables."""
        return {
            "setting": self.setting,
            "aggregation": self.aggregation,
            "attack": self.attack,
            "heterogeneity": self.heterogeneity,
            "clients": self.num_clients,
            "byzantine": self.num_byzantine,
            "rounds": self.rounds,
            "final_accuracy": self.final_accuracy(),
            "best_accuracy": self.best_accuracy(),
        }
