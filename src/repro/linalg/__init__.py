"""Numerical geometry substrate.

This package contains every geometric primitive the agreement and
aggregation layers build on:

- :mod:`repro.linalg.distances` — pairwise distance / diameter helpers.
- :mod:`repro.linalg.geometric_median` — the Weiszfeld algorithm and the
  exact one-dimensional median, plus the medoid.
- :mod:`repro.linalg.hyperbox` — axis-parallel hyperbox algebra
  (bounding boxes, intersections, midpoints, maximum edge length).
- :mod:`repro.linalg.covering_ball` — minimum enclosing ball (exact
  Welzl for small point sets, Ritter approximation for large ones).
- :mod:`repro.linalg.convex` — convex-hull membership tests and the
  safe-area construction for low dimensions.
- :mod:`repro.linalg.subsets` — enumeration and sampling of the
  ``(n - t)``-subsets used to build ``S_geo`` and the trusted hyperbox.
- :mod:`repro.linalg.subset_kernels` — batched (chunked) kernels over
  ``(S, s)`` subset index matrices: diameters in one gather, means in
  one reduction, geometric medians via the batched Weiszfeld solver.
- :mod:`repro.linalg.precision` — precision tiers of the kernel layer
  (float64 bitwise reference, float32 fast tier) and their tolerance
  contracts.
- :mod:`repro.linalg.sparsity` — bit-level structure detection
  (duplicated rows, exact-zero columns) driving the sparsity-aware
  kernel fast paths.
- :mod:`repro.linalg.backends` — pluggable kernel execution backends
  (pure-numpy reference, optional numba-compiled), selected via the
  ``REPRO_KERNEL_BACKEND`` environment variable.
"""

from repro.linalg.backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    KernelBackend,
    available_kernel_backends,
    get_kernel_backend,
    make_kernel_backend,
    numba_available,
    set_kernel_backend,
    use_kernel_backend,
)
from repro.linalg.distances import (
    diameter,
    max_coordinate_spread,
    pairwise_distances,
    pairwise_sq_distances,
    resolve_pairwise_matrix,
)
from repro.linalg.geometric_median import (
    BatchedWeiszfeldResult,
    WeiszfeldResult,
    batched_geometric_median,
    geometric_median,
    geometric_median_cost,
    medoid,
    medoid_index,
)
from repro.linalg.hyperbox import Hyperbox, bounding_hyperbox, trimmed_hyperbox
from repro.linalg.precision import (
    DEFAULT_DTYPE,
    SUPPORTED_DTYPES,
    TOLERANCE_TIERS,
    ToleranceTier,
    resolve_dtype,
    tolerance_tier,
)
from repro.linalg.sparsity import (
    SPARSITY_MODES,
    SparsityProfile,
    dedup_subsets,
    detect_structure,
    resolve_sparsity,
)
from repro.linalg.covering_ball import Ball, minimum_covering_ball, ritter_ball
from repro.linalg.convex import in_convex_hull, safe_area_vertices, tverberg_point
from repro.linalg.subset_kernels import (
    subset_diameters,
    subset_geometric_medians,
    subset_index_matrix,
    subset_means,
    subsets_as_matrix,
)
from repro.linalg.subsets import (
    enumerate_subsets,
    minimum_diameter_subset,
    sample_subsets,
    subset_aggregates,
    subset_count,
    subset_family,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "Ball",
    "BatchedWeiszfeldResult",
    "DEFAULT_DTYPE",
    "Hyperbox",
    "KernelBackend",
    "SPARSITY_MODES",
    "SUPPORTED_DTYPES",
    "SparsityProfile",
    "TOLERANCE_TIERS",
    "ToleranceTier",
    "WeiszfeldResult",
    "available_kernel_backends",
    "batched_geometric_median",
    "bounding_hyperbox",
    "dedup_subsets",
    "detect_structure",
    "diameter",
    "enumerate_subsets",
    "geometric_median",
    "get_kernel_backend",
    "make_kernel_backend",
    "numba_available",
    "geometric_median_cost",
    "in_convex_hull",
    "max_coordinate_spread",
    "medoid",
    "medoid_index",
    "minimum_covering_ball",
    "minimum_diameter_subset",
    "pairwise_distances",
    "pairwise_sq_distances",
    "resolve_dtype",
    "resolve_pairwise_matrix",
    "resolve_sparsity",
    "ritter_ball",
    "safe_area_vertices",
    "sample_subsets",
    "set_kernel_backend",
    "subset_aggregates",
    "subset_count",
    "subset_diameters",
    "subset_family",
    "subset_geometric_medians",
    "subset_index_matrix",
    "subset_means",
    "subsets_as_matrix",
    "tolerance_tier",
    "trimmed_hyperbox",
    "tverberg_point",
    "use_kernel_backend",
]
