"""Numerical geometry substrate.

This package contains every geometric primitive the agreement and
aggregation layers build on:

- :mod:`repro.linalg.distances` — pairwise distance / diameter helpers.
- :mod:`repro.linalg.geometric_median` — the Weiszfeld algorithm and the
  exact one-dimensional median, plus the medoid.
- :mod:`repro.linalg.hyperbox` — axis-parallel hyperbox algebra
  (bounding boxes, intersections, midpoints, maximum edge length).
- :mod:`repro.linalg.covering_ball` — minimum enclosing ball (exact
  Welzl for small point sets, Ritter approximation for large ones).
- :mod:`repro.linalg.convex` — convex-hull membership tests and the
  safe-area construction for low dimensions.
- :mod:`repro.linalg.subsets` — enumeration and sampling of the
  ``(n - t)``-subsets used to build ``S_geo`` and the trusted hyperbox.
- :mod:`repro.linalg.subset_kernels` — batched (chunked) kernels over
  ``(S, s)`` subset index matrices: diameters in one gather, means in
  one reduction, geometric medians via the batched Weiszfeld solver.
"""

from repro.linalg.distances import (
    diameter,
    max_coordinate_spread,
    pairwise_distances,
    pairwise_sq_distances,
    resolve_pairwise_matrix,
)
from repro.linalg.geometric_median import (
    BatchedWeiszfeldResult,
    WeiszfeldResult,
    batched_geometric_median,
    geometric_median,
    geometric_median_cost,
    medoid,
    medoid_index,
)
from repro.linalg.hyperbox import Hyperbox, bounding_hyperbox, trimmed_hyperbox
from repro.linalg.covering_ball import Ball, minimum_covering_ball, ritter_ball
from repro.linalg.convex import in_convex_hull, safe_area_vertices, tverberg_point
from repro.linalg.subset_kernels import (
    subset_diameters,
    subset_geometric_medians,
    subset_index_matrix,
    subset_means,
    subsets_as_matrix,
)
from repro.linalg.subsets import (
    enumerate_subsets,
    minimum_diameter_subset,
    sample_subsets,
    subset_aggregates,
    subset_count,
    subset_family,
)

__all__ = [
    "Ball",
    "BatchedWeiszfeldResult",
    "Hyperbox",
    "WeiszfeldResult",
    "batched_geometric_median",
    "bounding_hyperbox",
    "diameter",
    "enumerate_subsets",
    "geometric_median",
    "geometric_median_cost",
    "in_convex_hull",
    "max_coordinate_spread",
    "medoid",
    "medoid_index",
    "minimum_covering_ball",
    "minimum_diameter_subset",
    "pairwise_distances",
    "pairwise_sq_distances",
    "resolve_pairwise_matrix",
    "ritter_ball",
    "safe_area_vertices",
    "sample_subsets",
    "subset_aggregates",
    "subset_count",
    "subset_diameters",
    "subset_family",
    "subset_geometric_medians",
    "subset_index_matrix",
    "subset_means",
    "subsets_as_matrix",
    "trimmed_hyperbox",
    "tverberg_point",
]
