"""Pluggable kernel backends for the hot subset-aggregation loops.

The two innermost loops of the subset layer — the chunked diameter
gather and the per-subset Weiszfeld convergence loop — are isolated
behind a tiny strategy interface, registry-style like
:mod:`repro.sweep.executors`:

- ``numpy`` — :class:`NumpyKernelBackend`, the pure-numpy reference.
  This is the **ground truth**: the float64 path through it is
  bitwise-identical to the historical kernels and every equivalence
  fixture pins it.
- ``numba`` — :class:`NumbaKernelBackend`, an optional JIT-compiled
  variant.  Only registered as *available* when :mod:`numba` is
  importable; the container image is not required to ship it.  Its
  per-set scalar loops accumulate in float64 but in a different order
  than the batched reductions, so it promises the float32-style
  tolerance tier (diameter gathers are exact — ``max`` commutes).

Selection: :func:`get_kernel_backend` reads the ``REPRO_KERNEL_BACKEND``
environment variable once (``numpy`` when unset) and memoises the
instance; :func:`set_kernel_backend` / :func:`use_kernel_backend`
override it programmatically (the latter as a context manager, for
tests).  Asking for ``numba`` when it cannot be imported falls back to
the numpy reference with a logged warning instead of failing the run —
an accelerator is an optimisation, never a dependency.
"""

from __future__ import annotations

import abc
import os
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.logging import get_logger

_logger = get_logger("linalg.backends")

#: Environment variable naming the default backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Registered backend names (availability of ``numba`` is probed lazily).
BACKEND_NAMES = ("numpy", "numba")


class KernelBackend(abc.ABC):
    """Strategy interface for the innermost subset-kernel loops.

    Implementations must be *drop-in* value-compatible with the numpy
    reference within the tier documented on :attr:`exact`: the rest of
    the kernel layer (chunking, sparsity routing, caching) is backend
    agnostic and never changes results.
    """

    #: Registry name.
    name: str = "abstract"
    #: True when the backend runs compiled (non-numpy) code.
    compiled: bool = False
    #: True when results are bitwise-identical to the numpy reference.
    exact: bool = True

    @abc.abstractmethod
    def diameter_gather(self, dist: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Per-subset max of ``dist`` over one ``(chunk, s)`` index block.

        ``dist`` is the ``(m, m)`` pairwise distance matrix; the result
        is the ``(chunk,)`` float64 vector of subset diameters.
        """

    @abc.abstractmethod
    def weiszfeld_loop(
        self,
        pts: np.ndarray,
        w: np.ndarray,
        current: np.ndarray,
        *,
        tol: float,
        max_iter: int,
        eps: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the smoothed Weiszfeld fixed point over ``S`` point sets.

        Parameters are the pre-validated ``(S, s, d)`` tensor (float64
        or float32 storage), ``(S, s)`` float64 weights and ``(S, d)``
        float64 warm starts.  Returns ``(points, iterations, converged)``
        with float64 points; ``current`` may be consumed destructively.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyKernelBackend(KernelBackend):
    """Pure-numpy reference backend (always available, ground truth).

    The float64 path is bitwise-identical to the pre-backend kernels:
    the loop below is the historical ``batched_geometric_median`` body
    moved verbatim.  float32 inputs keep the ``(A, s, d)`` iteration
    tensors in float32 (half the memory traffic) while the squared-norm
    reductions and denominators accumulate in float64 — the
    "accumulate where it matters" half of the precision policy
    (:mod:`repro.linalg.precision`).
    """

    name = "numpy"
    compiled = False
    exact = True

    def diameter_gather(self, dist: np.ndarray, rows: np.ndarray) -> np.ndarray:
        return dist[rows[:, :, None], rows[:, None, :]].max(axis=(1, 2))

    def weiszfeld_loop(
        self,
        pts: np.ndarray,
        w: np.ndarray,
        current: np.ndarray,
        *,
        tol: float,
        max_iter: int,
        eps: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        num_sets = pts.shape[0]
        low_precision = pts.dtype != np.float64
        converged = np.zeros(num_sets, dtype=bool)
        iterations = np.zeros(num_sets, dtype=np.int64)
        # The working arrays shrink as sets converge; `active` maps
        # working rows back to set indices.  Retired rows are written
        # back once, so an iteration with no retirements touches no
        # (A, s, d) gather.
        active = np.arange(num_sets)
        sub = pts
        w_act = w
        cur = current
        for _ in range(max_iter):
            if low_precision:
                # Quantise the iterate to the storage dtype so `diffs`
                # stays float32; the reductions accumulate in float64.
                diffs = sub - cur.astype(pts.dtype)[:, None, :]
                dists = np.sqrt(
                    np.einsum("asd,asd->as", diffs, diffs, dtype=np.float64)
                )
                inv = w_act / np.maximum(dists, eps)
                new_points = (
                    np.einsum("as,asd->ad", inv, sub, dtype=np.float64)
                    / inv.sum(axis=1)[:, None]
                )
            else:
                diffs = sub - cur[:, None, :]
                dists = np.sqrt(np.einsum("asd,asd->as", diffs, diffs))
                inv = w_act / np.maximum(dists, eps)
                new_points = np.einsum("as,asd->ad", inv, sub) / inv.sum(axis=1)[:, None]
            move = np.linalg.norm(new_points - cur, axis=1)
            cur = new_points
            iterations[active] += 1
            done = move <= tol
            if done.any():
                retired = active[done]
                current[retired] = cur[done]
                converged[retired] = True
                keep = ~done
                active = active[keep]
                if active.size == 0:
                    break
                sub = sub[keep]
                w_act = w_act[keep]
                cur = cur[keep]
        if active.size:
            current[active] = cur
        return current, iterations, converged


class NumbaKernelBackend(KernelBackend):
    """JIT-compiled backend (``numba``), optional.

    Scalar per-set loops with float64 accumulators, compiled lazily on
    first use so merely constructing the backend never pays the JIT
    cost.  Diameter gathers are bitwise-identical to the reference
    (``max`` over the same values); Weiszfeld iterates accumulate sums
    sequentially instead of numpy's pairwise order, so medians match
    the reference within the float32 tolerance tier even on float64
    inputs — the same contract the batched-vs-scalar solvers already
    live with.
    """

    name = "numba"
    compiled = True
    exact = False

    def __init__(self) -> None:
        import numba  # noqa: F401 — availability probe; ImportError propagates

        self._numba = numba
        self._diameter_jit = None
        self._weiszfeld_jit = None

    # -- lazy compilation ----------------------------------------------------
    def _compile_diameter(self):
        if self._diameter_jit is None:
            njit = self._numba.njit

            @njit(cache=False)
            def _gather(dist, rows):  # pragma: no cover - compiled
                chunk, s = rows.shape
                out = np.zeros(chunk, dtype=np.float64)
                for a in range(chunk):
                    best = 0.0
                    for i in range(s):
                        ri = rows[a, i]
                        for j in range(s):
                            v = dist[ri, rows[a, j]]
                            if v > best:
                                best = v
                    out[a] = best
                return out

            self._diameter_jit = _gather
        return self._diameter_jit

    def _compile_weiszfeld(self):
        if self._weiszfeld_jit is None:
            njit = self._numba.njit

            @njit(cache=False)
            def _loop(pts, w, current, tol, max_iter, eps):  # pragma: no cover
                num_sets, s, d = pts.shape
                iterations = np.zeros(num_sets, dtype=np.int64)
                converged = np.zeros(num_sets, dtype=np.bool_)
                new_point = np.empty(d, dtype=np.float64)
                for a in range(num_sets):
                    for it in range(max_iter):
                        total = 0.0
                        for k in range(d):
                            new_point[k] = 0.0
                        for i in range(s):
                            sq = 0.0
                            for k in range(d):
                                diff = float(pts[a, i, k]) - current[a, k]
                                sq += diff * diff
                            dist = np.sqrt(sq)
                            if dist < eps:
                                dist = eps
                            inv = w[a, i] / dist
                            total += inv
                            for k in range(d):
                                new_point[k] += inv * float(pts[a, i, k])
                        move_sq = 0.0
                        for k in range(d):
                            new_point[k] /= total
                            delta = new_point[k] - current[a, k]
                            move_sq += delta * delta
                            current[a, k] = new_point[k]
                        iterations[a] = it + 1
                        if np.sqrt(move_sq) <= tol:
                            converged[a] = True
                            break
                return current, iterations, converged

            self._weiszfeld_jit = _loop
        return self._weiszfeld_jit

    # -- interface -----------------------------------------------------------
    def diameter_gather(self, dist: np.ndarray, rows: np.ndarray) -> np.ndarray:
        gather = self._compile_diameter()
        return gather(
            np.ascontiguousarray(dist), np.ascontiguousarray(rows)
        )

    def weiszfeld_loop(
        self,
        pts: np.ndarray,
        w: np.ndarray,
        current: np.ndarray,
        *,
        tol: float,
        max_iter: int,
        eps: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        loop = self._compile_weiszfeld()
        return loop(
            np.ascontiguousarray(pts),
            np.ascontiguousarray(w),
            np.ascontiguousarray(current),
            float(tol),
            int(max_iter),
            float(eps),
        )


def numba_available() -> bool:
    """Whether the compiled backend's dependency can be imported."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def available_kernel_backends() -> list[str]:
    """Backend names usable in this environment (``numpy`` always)."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    return names


def make_kernel_backend(name: str) -> KernelBackend:
    """Instantiate the backend registered under ``name``.

    ``numba`` falls back to the numpy reference (with a logged warning)
    when the JIT dependency is missing, so an exported
    ``REPRO_KERNEL_BACKEND=numba`` never breaks an environment that
    lacks the accelerator.
    """
    key = name.strip().lower()
    if key not in BACKEND_NAMES:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {list(BACKEND_NAMES)}"
        )
    if key == "numba":
        try:
            return NumbaKernelBackend()
        except ImportError:
            _logger.warning(
                "kernel backend 'numba' requested but numba is not importable; "
                "falling back to the numpy reference backend"
            )
            return NumpyKernelBackend()
    return NumpyKernelBackend()


_active_backend: Optional[KernelBackend] = None


def get_kernel_backend() -> KernelBackend:
    """The process-wide active backend (memoised).

    Resolved on first use from :data:`BACKEND_ENV_VAR` (``numpy`` when
    unset or empty); later calls return the same instance so compiled
    kernels are cached for the life of the process.
    """
    global _active_backend
    if _active_backend is None:
        requested = os.environ.get(BACKEND_ENV_VAR, "").strip() or "numpy"
        _active_backend = make_kernel_backend(requested)
    return _active_backend


def set_kernel_backend(backend: "str | KernelBackend | None") -> KernelBackend:
    """Override the active backend (a name, an instance, or ``None``).

    ``None`` clears the override so the next :func:`get_kernel_backend`
    re-reads the environment — the reset hook tests rely on.
    """
    global _active_backend
    if backend is None:
        _active_backend = None
        return get_kernel_backend()
    if isinstance(backend, str):
        backend = make_kernel_backend(backend)
    if not isinstance(backend, KernelBackend):
        raise TypeError(f"expected a KernelBackend or name, got {type(backend)!r}")
    _active_backend = backend
    return backend


@contextmanager
def use_kernel_backend(backend: "str | KernelBackend") -> Iterator[KernelBackend]:
    """Context manager: temporarily switch the active backend."""
    global _active_backend
    previous = _active_backend
    try:
        yield set_kernel_backend(backend)
    finally:
        _active_backend = previous
