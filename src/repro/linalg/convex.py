"""Convex-hull machinery and the safe-area construction.

The safe-area algorithm (Definition 2.3, Mendes et al.) intersects the
convex hulls of every ``(n - t)``-subset of the received vectors.  The
paper only uses it as a theoretical foil — it cannot be run when
``n <= d`` — but we implement it for low dimensions so the unbounded
approximation ratio of Theorem 4.1 can be demonstrated executably.

Membership in a convex hull is decided by a small linear program
(scipy ``linprog``), which works in any dimension and for degenerate
hulls, unlike Qhull-based approaches.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.utils.validation import ensure_matrix


def in_convex_hull(point: np.ndarray, vertices: np.ndarray, *, tol: float = 1e-9) -> bool:
    """Whether ``point`` is a convex combination of the rows of ``vertices``.

    Solves the feasibility LP ``find lambda >= 0, sum lambda = 1,
    V^T lambda = point``; robust to degenerate (lower-dimensional) hulls.
    """
    verts = ensure_matrix(vertices, name="vertices")
    p = np.asarray(point, dtype=np.float64).reshape(-1)
    if p.shape[0] != verts.shape[1]:
        raise ValueError("point dimension does not match vertices dimension")
    m = verts.shape[0]
    a_eq = np.vstack([verts.T, np.ones((1, m))])
    b_eq = np.concatenate([p, [1.0]])
    res = linprog(
        c=np.zeros(m),
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, 1.0)] * m,
        method="highs",
    )
    if res.status == 0:
        return True
    if res.status == 2:  # infeasible
        # Retry with a tolerance band: accept points within `tol` of the hull.
        res2 = linprog(
            c=np.zeros(m + 1),
            A_ub=None,
            b_ub=None,
            A_eq=np.hstack([a_eq, np.zeros((a_eq.shape[0], 1))]),
            b_eq=b_eq,
            bounds=[(0.0, 1.0)] * m + [(0.0, 0.0)],
            method="highs",
        )
        return bool(res2.status == 0)
    return False


def hull_distance(point: np.ndarray, vertices: np.ndarray) -> float:
    """Euclidean distance from ``point`` to the convex hull of ``vertices``.

    Solved as a tiny non-negative least squares projection via the
    active-set-free Frank-Wolfe style iteration; exact enough for the
    diagnostics that use it (counterexample measurements).
    """
    verts = ensure_matrix(vertices, name="vertices")
    p = np.asarray(point, dtype=np.float64).reshape(-1)
    m = verts.shape[0]
    lam = np.full(m, 1.0 / m)
    for _ in range(512):
        x = verts.T @ lam
        grad = verts @ (x - p)  # gradient wrt lambda of 0.5*|V^T lam - p|^2
        s = np.zeros(m)
        s[int(np.argmin(grad))] = 1.0
        direction = s - lam
        denom = float(np.linalg.norm(verts.T @ direction) ** 2)
        if denom <= 1e-18:
            break
        gamma = float(np.clip(-(x - p) @ (verts.T @ direction) / denom, 0.0, 1.0))
        if gamma <= 1e-14:
            break
        lam = lam + gamma * direction
    return float(np.linalg.norm(verts.T @ lam - p))


def safe_area_vertices(
    vectors: np.ndarray,
    t: int,
    *,
    candidate_points: Optional[np.ndarray] = None,
    grid_resolution: int = 0,
) -> np.ndarray:
    """Points that belong to the safe area (Definition 2.3).

    The safe area is the intersection of the convex hulls of every
    ``(n - t)``-subset of the inputs.  A full H-representation is
    unnecessary for our purposes; instead this returns the subset of a
    candidate point set that lies in *every* hull.  By default the
    candidates are the input vectors themselves plus their mean and the
    pairwise midpoints, optionally augmented with a coarse grid (only
    sensible for d <= 3).

    Returns an ``(k, d)`` array, possibly empty (shape ``(0, d)``) when no
    candidate lies in the intersection.
    """
    mat = ensure_matrix(vectors, name="vectors")
    n, d = mat.shape
    if t < 0:
        raise ValueError("t must be non-negative")
    if n - t < 1:
        raise ValueError("n - t must be at least 1")

    if candidate_points is None:
        cands = [mat, mat.mean(axis=0, keepdims=True)]
        mids = [(mat[i] + mat[j]) / 2.0 for i, j in combinations(range(n), 2)]
        if mids:
            cands.append(np.stack(mids, axis=0))
        if grid_resolution > 0 and d <= 3:
            lows, highs = mat.min(axis=0), mat.max(axis=0)
            axes = [np.linspace(lows[k], highs[k], grid_resolution) for k in range(d)]
            mesh = np.meshgrid(*axes, indexing="ij")
            cands.append(np.stack([m.ravel() for m in mesh], axis=1))
        candidates = np.vstack(cands)
    else:
        candidates = ensure_matrix(candidate_points, name="candidate_points")

    subsets = list(combinations(range(n), n - t))
    keep: List[np.ndarray] = []
    for cand in candidates:
        if all(in_convex_hull(cand, mat[list(idx)]) for idx in subsets):
            keep.append(cand)
    if not keep:
        return np.empty((0, d))
    stacked = np.stack(keep, axis=0)
    # De-duplicate nearly identical candidates.
    unique: List[np.ndarray] = []
    for row in stacked:
        if not any(np.linalg.norm(row - u) <= 1e-9 for u in unique):
            unique.append(row)
    return np.stack(unique, axis=0)


def tverberg_point(vectors: np.ndarray, t: int) -> Optional[np.ndarray]:
    """A representative point of the safe area, if one is found.

    Returns the candidate safe-area point closest to the mean of the
    inputs, or ``None`` if the candidate search finds nothing (which can
    legitimately happen when the safe area is a single point not among
    the candidates).
    """
    verts = safe_area_vertices(vectors, t)
    if verts.shape[0] == 0:
        return None
    mean = ensure_matrix(vectors).mean(axis=0)
    dists = np.linalg.norm(verts - mean[None, :], axis=1)
    return verts[int(np.argmin(dists))].copy()
