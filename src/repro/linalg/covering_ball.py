"""Minimum covering (enclosing) ball.

The paper's approximation measure (Definition 3.3) is stated in terms of
the radius ``r_cov`` of the minimum covering ball of ``S_geo``, the set
of geometric medians of all ``(n - t)``-subsets.  This module provides:

- :func:`minimum_covering_ball` — exact Welzl algorithm (move-to-front,
  iterative support handling) for modest point counts and dimensions,
  with automatic fallback to the Ritter approximation plus a refinement
  sweep for large inputs.
- :func:`ritter_ball` — the classic 2-pass approximation (guaranteed to
  cover, radius at most ~1.5x optimal in practice).

For high-dimensional gradient vectors the exact ball is both expensive
and unnecessary — the approximation-ratio metrics only need a covering
ball whose radius is a constant-factor estimate — so the default entry
point picks the strategy based on input size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import ensure_matrix


@dataclass(frozen=True)
class Ball:
    """A Euclidean ball with ``center`` (shape ``(d,)``) and ``radius``."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=np.float64).reshape(-1)
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "radius", float(self.radius))
        if self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    def contains(self, point: np.ndarray, *, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Whether ``point`` lies in the (slightly inflated) closed ball."""
        p = np.asarray(point, dtype=np.float64).reshape(-1)
        dist = float(np.linalg.norm(p - self.center))
        return dist <= self.radius * (1.0 + rtol) + atol

    def contains_all(self, points: np.ndarray, *, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Whether every row of ``points`` lies in the closed ball."""
        mat = ensure_matrix(points, name="points")
        dists = np.linalg.norm(mat - self.center[None, :], axis=1)
        return bool(np.all(dists <= self.radius * (1.0 + rtol) + atol))


# ---------------------------------------------------------------------------
# Exact ball from a support set (<= d + 1 affinely independent points)
# ---------------------------------------------------------------------------

def _ball_from_support(points: np.ndarray) -> Ball:
    """Smallest ball whose boundary passes through all support points.

    Solves the linear system expressing that the centre is equidistant
    from every support point and lies in their affine hull.
    """
    pts = np.asarray(points, dtype=np.float64)
    k = pts.shape[0]
    if k == 0:
        return Ball(center=np.zeros(1), radius=0.0)
    if k == 1:
        return Ball(center=pts[0].copy(), radius=0.0)
    base = pts[0]
    rel = pts[1:] - base  # (k-1, d)
    # Solve 2 * rel @ x = |rel_i|^2 in the least-squares sense; the
    # solution is expressed in the affine frame anchored at `base`.
    rhs = np.einsum("ij,ij->i", rel, rel)
    # Use lstsq for robustness to degenerate (affinely dependent) supports.
    sol, *_ = np.linalg.lstsq(2.0 * rel, rhs, rcond=None)
    center = base + sol
    radius = float(np.max(np.linalg.norm(pts - center[None, :], axis=1)))
    return Ball(center=center, radius=radius)


def _welzl(points: np.ndarray, rng: np.random.Generator) -> Ball:
    """Welzl's randomised algorithm for the exact minimum enclosing ball.

    Classic recursive formulation over a random permutation: process the
    points one by one, and whenever a point falls outside the ball of the
    already-processed prefix, recompute the ball with that point forced
    onto the boundary (added to the support set ``R``).  Expected linear
    time for fixed dimension; the recursion depth is at most the number
    of points, which is bounded by ``exact_limit``.
    """
    pts = points.copy()
    rng.shuffle(pts)
    m, d = pts.shape

    def solve(i: int, support: tuple[int, ...]) -> Ball:
        if i == 0 or len(support) == d + 1:
            if not support:
                return Ball(center=pts[0].copy(), radius=0.0)
            return _ball_from_support(pts[list(support)])
        ball = solve(i - 1, support)
        p = pts[i - 1]
        if ball.contains(p, rtol=1e-12, atol=1e-12):
            return ball
        return solve(i - 1, support + (i - 1,))

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * m + 100))
    try:
        return solve(m, ())
    finally:
        sys.setrecursionlimit(old_limit)


def ritter_ball(points: np.ndarray) -> Ball:
    """Ritter's two-pass approximate bounding sphere.

    Guaranteed to contain all points; the radius can exceed the optimum
    by a modest constant factor.  Runs in O(m d).
    """
    pts = ensure_matrix(points, name="points")
    # Pick the point farthest from an arbitrary seed, then the point
    # farthest from that one: their midpoint seeds the ball.
    seed = pts[0]
    a = pts[int(np.argmax(np.linalg.norm(pts - seed[None, :], axis=1)))]
    b = pts[int(np.argmax(np.linalg.norm(pts - a[None, :], axis=1)))]
    center = (a + b) / 2.0
    radius = float(np.linalg.norm(a - b) / 2.0)
    # Grow pass.
    for p in pts:
        dist = float(np.linalg.norm(p - center))
        if dist > radius:
            new_radius = (radius + dist) / 2.0
            # Shift the centre towards p so the old ball stays inside.
            center = center + (p - center) * ((dist - radius) / (2.0 * dist))
            radius = new_radius
    # Final inflation so floating point error cannot exclude any point.
    dists = np.linalg.norm(pts - center[None, :], axis=1)
    radius = max(radius, float(dists.max()))
    return Ball(center=center, radius=radius)


def _refine_ball(points: np.ndarray, ball: Ball, iterations: int = 64) -> Ball:
    """Shrink an approximate ball via the "badoiu-clarkson" style updates.

    Each step moves the centre towards the farthest point with a 1/(k+1)
    step size; this converges towards the optimal centre and never stops
    covering the points (the radius is recomputed from the data).
    """
    pts = ensure_matrix(points, name="points")
    center = ball.center.copy()
    for k in range(1, iterations + 1):
        dists = np.linalg.norm(pts - center[None, :], axis=1)
        far = int(np.argmax(dists))
        center = center + (pts[far] - center) / (k + 1.0)
    radius = float(np.max(np.linalg.norm(pts - center[None, :], axis=1)))
    refined = Ball(center=center, radius=radius)
    return refined if refined.radius <= ball.radius else ball


def minimum_covering_ball(
    points: np.ndarray,
    *,
    exact_limit: int = 512,
    rng: Optional[np.random.Generator] = None,
) -> Ball:
    """Minimum enclosing ball of the rows of ``points``.

    Uses the exact Welzl algorithm when the point count is at most
    ``exact_limit``; otherwise falls back to Ritter + refinement, which
    is a covering ball with near-optimal radius and is what the
    approximation-ratio diagnostics need at gradient dimensionality.
    """
    pts = ensure_matrix(points, name="points")
    generator = rng if rng is not None else np.random.default_rng(0)
    m = pts.shape[0]
    if m == 1:
        return Ball(center=pts[0].copy(), radius=0.0)
    if m == 2:
        center = pts.mean(axis=0)
        return Ball(center=center, radius=float(np.linalg.norm(pts[0] - center)))
    if m <= exact_limit:
        ball = _welzl(pts, generator)
        # Guard against numerical slack: radius must cover all points.
        dists = np.linalg.norm(pts - ball.center[None, :], axis=1)
        return Ball(center=ball.center, radius=max(ball.radius, float(dists.max())))
    return _refine_ball(pts, ritter_ball(pts))
