"""Pairwise distance helpers.

All aggregation rules that reason about "close" subsets (Krum,
minimum-diameter averaging, medoid) reduce to operations on the pairwise
Euclidean distance matrix of the received vectors.  These helpers keep
that computation vectorised and reused.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.utils.validation import ensure_matrix

#: When set to a non-empty, non-"0" value, precomputed pairwise matrices
#: are additionally checked for non-finite entries (a debug aid: the
#: check is O(m^2) per call and the matrices come from trusted caches in
#: production use).
PAIRWISE_DEBUG_ENV = "REPRO_DEBUG_PAIRWISE"


def pairwise_sq_distances(
    vectors: np.ndarray,
    *,
    profile: "object | None" = None,
    sparsity: str = "off",
) -> np.ndarray:
    """Return the ``(m, m)`` matrix of squared Euclidean distances.

    Uses the expanded form ``|x|^2 + |y|^2 - 2 x.y`` which is O(m^2 d)
    with a single GEMM, instead of the naive O(m^2 d) loop.
    Negative values caused by floating point cancellation are clamped to
    zero so callers can safely take square roots.

    Precision policy: float64 input takes the bitwise-pinned reference
    path and returns float64.  float32 input runs the GEMM in float32
    (half the bandwidth) with the squared-norm reduction accumulated in
    float64, and still returns float64 so downstream consumers never
    branch on dtype.  With ``sparsity="auto"`` the float32 tier also
    collapses byte-identical rows to one representative and elides
    exact-zero columns (see :mod:`repro.linalg.sparsity`); the float64
    path never does — reduced-shape GEMMs are not guaranteed to
    reproduce the dense result bit for bit.  ``profile`` optionally
    supplies a precomputed :class:`~repro.linalg.sparsity.SparsityProfile`
    of the same matrix.
    """
    arr = np.asarray(vectors)
    if arr.dtype == np.float32:
        mat = ensure_matrix(arr, name="vectors", dtype=np.float32)
    else:
        mat = ensure_matrix(arr, name="vectors")
    if mat.dtype == np.float64:
        sq_norms = np.einsum("ij,ij->i", mat, mat)
        sq = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (mat @ mat.T)
        np.maximum(sq, 0.0, out=sq)
        np.fill_diagonal(sq, 0.0)
        return sq

    from repro.linalg.sparsity import detect_structure, resolve_sparsity

    mode = resolve_sparsity(sparsity)
    prof = profile
    if mode == "auto" and prof is None:
        prof = detect_structure(mat)
    work = mat
    group_map = None
    if mode == "auto" and prof is not None:
        if prof.elidable():
            work = work[:, prof.nonzero_columns]
        if prof.has_duplicate_rows:
            reps = np.unique(prof.row_group_ids)
            group_map = np.searchsorted(reps, prof.row_group_ids)
            work = work[reps]
    sq_norms = np.einsum("ij,ij->i", work, work, dtype=np.float64)
    sq = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (work @ work.T).astype(
        np.float64
    )
    np.maximum(sq, 0.0, out=sq)
    np.fill_diagonal(sq, 0.0)
    if group_map is not None:
        # Scatter the unique-row matrix back out; duplicate pairs land
        # on a diagonal entry of the reduced matrix, i.e. exactly 0.0.
        sq = sq[group_map[:, None], group_map[None, :]]
    return sq


def pairwise_distances(
    vectors: np.ndarray,
    *,
    profile: "object | None" = None,
    sparsity: str = "off",
) -> np.ndarray:
    """Return the ``(m, m)`` matrix of Euclidean distances."""
    return np.sqrt(pairwise_sq_distances(vectors, profile=profile, sparsity=sparsity))


def resolve_pairwise_matrix(
    vectors: np.ndarray,
    precomputed: "np.ndarray | None",
    *,
    squared: bool = False,
    check_finite: Optional[bool] = None,
) -> np.ndarray:
    """Validate a caller-supplied pairwise matrix or compute one.

    Shared by every consumer that accepts a precomputed distance matrix
    (Krum scores, the medoid, the minimum-diameter subset search) — e.g.
    from an :class:`~repro.aggregation.context.AggregationContext`.
    ``squared`` selects which matrix is computed when none is supplied
    and names the caller's expectation in every validation error; a
    supplied matrix is checked for shape and a floating dtype, trusting
    the caller on the squared/plain distinction (the values themselves
    cannot distinguish the two).  ``check_finite`` adds an O(m^2)
    NaN/inf sweep; it defaults to the :data:`PAIRWISE_DEBUG_ENV`
    environment toggle so production paths stay validation-free.
    """
    m = vectors.shape[0]
    kind = "squared Euclidean" if squared else "Euclidean"
    if precomputed is None:
        return pairwise_sq_distances(vectors) if squared else pairwise_distances(vectors)
    pre = np.asarray(precomputed)
    if pre.shape != (m, m):
        raise ValueError(
            f"pairwise matrix must have shape {(m, m)}, got {pre.shape}"
        )
    if not np.issubdtype(pre.dtype, np.floating):
        raise ValueError(
            f"precomputed pairwise matrix must hold floating-point {kind} "
            f"distances, got dtype {pre.dtype}"
        )
    if check_finite is None:
        check_finite = os.environ.get(PAIRWISE_DEBUG_ENV, "0") not in ("", "0")
    if check_finite and not np.all(np.isfinite(pre)):
        raise ValueError(
            f"precomputed pairwise matrix contains non-finite entries; the "
            f"caller expected finite {kind} distances"
        )
    return pre


def diameter(vectors: np.ndarray) -> float:
    """Largest Euclidean distance between any two of the given vectors.

    For small stacks the differences are formed explicitly, which avoids
    the catastrophic cancellation of the ``|x|^2 + |y|^2 - 2 x.y``
    expansion and makes the diameter of (numerically) identical vectors
    exactly zero — a property the agreement convergence checks rely on.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m, d = mat.shape
    if m == 1:
        return 0.0
    if m * m * d <= 50_000_000:
        diffs = mat[:, None, :] - mat[None, :, :]
        return float(np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs).max()))
    return float(np.sqrt(pairwise_sq_distances(mat).max()))


def max_coordinate_spread(vectors: np.ndarray) -> float:
    """Largest per-coordinate range, i.e. ``E_max`` of the bounding box.

    Equals :meth:`repro.linalg.hyperbox.Hyperbox.max_edge_length` of the
    smallest axis-parallel hyperbox containing the vectors.
    """
    mat = ensure_matrix(vectors, name="vectors")
    return float(np.max(mat.max(axis=0) - mat.min(axis=0)))


def distances_to(vectors: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Euclidean distance from every row of ``vectors`` to ``point``."""
    mat = ensure_matrix(vectors, name="vectors")
    p = np.asarray(point, dtype=np.float64).reshape(-1)
    if p.shape[0] != mat.shape[1]:
        raise ValueError(
            f"point dimension {p.shape[0]} does not match vectors dimension {mat.shape[1]}"
        )
    return np.linalg.norm(mat - p[None, :], axis=1)
