"""Pairwise distance helpers.

All aggregation rules that reason about "close" subsets (Krum,
minimum-diameter averaging, medoid) reduce to operations on the pairwise
Euclidean distance matrix of the received vectors.  These helpers keep
that computation vectorised and reused.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_matrix


def pairwise_sq_distances(vectors: np.ndarray) -> np.ndarray:
    """Return the ``(m, m)`` matrix of squared Euclidean distances.

    Uses the expanded form ``|x|^2 + |y|^2 - 2 x.y`` which is O(m^2 d)
    with a single GEMM, instead of the naive O(m^2 d) loop.
    Negative values caused by floating point cancellation are clamped to
    zero so callers can safely take square roots.
    """
    mat = ensure_matrix(vectors, name="vectors")
    sq_norms = np.einsum("ij,ij->i", mat, mat)
    sq = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (mat @ mat.T)
    np.maximum(sq, 0.0, out=sq)
    np.fill_diagonal(sq, 0.0)
    return sq


def pairwise_distances(vectors: np.ndarray) -> np.ndarray:
    """Return the ``(m, m)`` matrix of Euclidean distances."""
    return np.sqrt(pairwise_sq_distances(vectors))


def resolve_pairwise_matrix(
    vectors: np.ndarray,
    precomputed: "np.ndarray | None",
    *,
    squared: bool = False,
) -> np.ndarray:
    """Validate a caller-supplied pairwise matrix or compute one.

    Shared by every consumer that accepts a precomputed distance matrix
    (Krum scores, the medoid, the minimum-diameter subset search) — e.g.
    from an :class:`~repro.aggregation.context.AggregationContext`.
    ``squared`` selects which matrix is computed when none is supplied;
    a supplied matrix is only shape-checked, trusting the caller on the
    squared/plain distinction.
    """
    m = vectors.shape[0]
    if precomputed is None:
        return pairwise_sq_distances(vectors) if squared else pairwise_distances(vectors)
    if precomputed.shape != (m, m):
        raise ValueError(
            f"pairwise matrix must have shape {(m, m)}, got {precomputed.shape}"
        )
    return precomputed


def diameter(vectors: np.ndarray) -> float:
    """Largest Euclidean distance between any two of the given vectors.

    For small stacks the differences are formed explicitly, which avoids
    the catastrophic cancellation of the ``|x|^2 + |y|^2 - 2 x.y``
    expansion and makes the diameter of (numerically) identical vectors
    exactly zero — a property the agreement convergence checks rely on.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m, d = mat.shape
    if m == 1:
        return 0.0
    if m * m * d <= 50_000_000:
        diffs = mat[:, None, :] - mat[None, :, :]
        return float(np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs).max()))
    return float(np.sqrt(pairwise_sq_distances(mat).max()))


def max_coordinate_spread(vectors: np.ndarray) -> float:
    """Largest per-coordinate range, i.e. ``E_max`` of the bounding box.

    Equals :meth:`repro.linalg.hyperbox.Hyperbox.max_edge_length` of the
    smallest axis-parallel hyperbox containing the vectors.
    """
    mat = ensure_matrix(vectors, name="vectors")
    return float(np.max(mat.max(axis=0) - mat.min(axis=0)))


def distances_to(vectors: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Euclidean distance from every row of ``vectors`` to ``point``."""
    mat = ensure_matrix(vectors, name="vectors")
    p = np.asarray(point, dtype=np.float64).reshape(-1)
    if p.shape[0] != mat.shape[1]:
        raise ValueError(
            f"point dimension {p.shape[0]} does not match vectors dimension {mat.shape[1]}"
        )
    return np.linalg.norm(mat - p[None, :], axis=1)
