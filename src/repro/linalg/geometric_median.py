"""Geometric median (Weiszfeld algorithm) and medoid.

The geometric median of a point set minimises the sum of Euclidean
distances to all points (Definition 2.2 of the paper).  It has no closed
form for d >= 2, so the paper — like Pillutla et al. — computes it with
the Weiszfeld fixed-point iteration.  This module provides:

- :func:`geometric_median` — a numerically robust Weiszfeld solver with
  the standard epsilon-smoothing fix for iterates that collide with an
  input point, optional per-point weights, and convergence diagnostics.
- :func:`geometric_median_cost` — the objective value (sum of distances).
- :func:`medoid` / :func:`medoid_index` — the input point minimising the
  sum of distances (used by the medoid aggregation rule and as a
  Weiszfeld warm start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import ensure_matrix


@dataclass(frozen=True)
class WeiszfeldResult:
    """Outcome of a Weiszfeld run.

    Attributes
    ----------
    point:
        The computed geometric median estimate, shape ``(d,)``.
    iterations:
        Number of fixed-point iterations performed.
    converged:
        Whether the movement between the last two iterates dropped below
        the requested tolerance.
    cost:
        Final objective value ``sum_i w_i * ||x_i - point||``.
    """

    point: np.ndarray
    iterations: int
    converged: bool
    cost: float


def geometric_median_cost(
    vectors: np.ndarray, point: np.ndarray, weights: Optional[np.ndarray] = None
) -> float:
    """Sum of (weighted) Euclidean distances from ``point`` to all rows."""
    mat = ensure_matrix(vectors, name="vectors")
    p = np.asarray(point, dtype=np.float64).reshape(-1)
    dists = np.linalg.norm(mat - p[None, :], axis=1)
    if weights is None:
        return float(dists.sum())
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    if w.shape[0] != mat.shape[0]:
        raise ValueError("weights length must match the number of vectors")
    return float(np.dot(w, dists))


def medoid_index(vectors: np.ndarray, *, dist: Optional[np.ndarray] = None) -> int:
    """Index of the input point minimising the sum of distances to the others.

    ``dist`` optionally supplies the precomputed ``(m, m)`` pairwise
    distance matrix (e.g. from a shared
    :class:`~repro.aggregation.context.AggregationContext`), skipping the
    GEMM-based recomputation.
    """
    mat = ensure_matrix(vectors, name="vectors")
    # Reuse the GEMM-based pairwise computation; O(m^2 d).
    from repro.linalg.distances import resolve_pairwise_matrix

    dist = resolve_pairwise_matrix(mat, dist)
    return int(np.argmin(dist.sum(axis=1)))


def medoid(vectors: np.ndarray) -> np.ndarray:
    """The medoid point itself (a copy of the winning input row)."""
    mat = ensure_matrix(vectors, name="vectors")
    return mat[medoid_index(mat)].copy()


def geometric_median(
    vectors: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: int = 200,
    eps: float = 1e-12,
    initial: Optional[np.ndarray] = None,
    return_info: bool = False,
) -> np.ndarray | WeiszfeldResult:
    """Compute the geometric median via the Weiszfeld algorithm.

    Parameters
    ----------
    vectors:
        ``(m, d)`` stack of input points.
    weights:
        Optional non-negative per-point weights; defaults to uniform.
    tol:
        Convergence threshold on the Euclidean movement per iteration.
    max_iter:
        Iteration budget.  The paper's experiments use a small budget per
        aggregation call, so the default is modest.
    eps:
        Smoothing constant added to distances to avoid division by zero
        when an iterate coincides with an input point (the standard
        smoothed-Weiszfeld fix; see Pillutla et al. 2022).
    initial:
        Optional warm-start point.  Defaults to the weighted mean.
    return_info:
        When true, return a :class:`WeiszfeldResult` instead of the bare
        point.

    Notes
    -----
    For one point the median is the point itself; for two points any
    point on the segment is optimal and the weighted mean (midpoint for
    uniform weights) is returned, which is a valid minimiser.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m, _d = mat.shape
    if weights is None:
        w = np.ones(m, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64).reshape(-1)
        if w.shape[0] != m:
            raise ValueError("weights length must match the number of vectors")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        if not np.any(w > 0):
            raise ValueError("at least one weight must be positive")
    if tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be at least 1, got {max_iter}")

    if m == 1:
        point = mat[0].copy()
        result = WeiszfeldResult(point=point, iterations=0, converged=True, cost=0.0)
        return result if return_info else point

    if initial is None:
        current = np.average(mat, axis=0, weights=w)
    else:
        current = np.asarray(initial, dtype=np.float64).reshape(-1).copy()
        if current.shape[0] != mat.shape[1]:
            raise ValueError("initial point dimension mismatch")

    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        diffs = mat - current[None, :]
        dists = np.linalg.norm(diffs, axis=1)
        # Smoothed inverse distances: points at (numerically) zero
        # distance still contribute a bounded weight.
        inv = w / np.maximum(dists, eps)
        total = inv.sum()
        new_point = (inv[:, None] * mat).sum(axis=0) / total
        move = float(np.linalg.norm(new_point - current))
        current = new_point
        if move <= tol:
            converged = True
            break

    cost = geometric_median_cost(mat, current, weights=w)
    # Weiszfeld stalls when the optimum coincides with an input point
    # (the smoothed update cannot land exactly on a vertex).  Snapping to
    # the best input point whenever it beats the iterate restores the
    # guarantee that the returned cost is no worse than any input's.
    input_costs = np.array([geometric_median_cost(mat, row, weights=w) for row in mat])
    best_input = int(np.argmin(input_costs))
    # Snap only on a clear improvement: exact ties (e.g. the two-point
    # case, where every point of the segment is optimal) keep the
    # Weiszfeld iterate so the result stays scale/translation equivariant.
    if cost - input_costs[best_input] > 1e-9 * max(cost, 1.0):
        current = mat[best_input].copy()
        cost = float(input_costs[best_input])
        converged = True
    result = WeiszfeldResult(
        point=current, iterations=iterations, converged=converged, cost=cost
    )
    return result if return_info else current


def coordinatewise_median(vectors: np.ndarray) -> np.ndarray:
    """Coordinate-wise (marginal) median of the rows.

    Not the same as the geometric median for d >= 2, but coincides with
    it in one dimension; used as a cheap robust baseline and in tests.
    """
    mat = ensure_matrix(vectors, name="vectors")
    return np.median(mat, axis=0)
