"""Geometric median (Weiszfeld algorithm) and medoid.

The geometric median of a point set minimises the sum of Euclidean
distances to all points (Definition 2.2 of the paper).  It has no closed
form for d >= 2, so the paper — like Pillutla et al. — computes it with
the Weiszfeld fixed-point iteration.  This module provides:

- :func:`geometric_median` — a numerically robust Weiszfeld solver with
  the standard epsilon-smoothing fix for iterates that collide with an
  input point, optional per-point weights, and convergence diagnostics.
- :func:`batched_geometric_median` — the same iteration vectorised over
  an ``(S, s, d)`` tensor of S independent point sets, with per-set
  convergence masking (converged sets are frozen, the loop stops when
  all are done).  This is the kernel behind the batched subset layer
  (:mod:`repro.linalg.subset_kernels`).
- :func:`geometric_median_cost` — the objective value (sum of distances).
- :func:`medoid` / :func:`medoid_index` — the input point minimising the
  sum of distances (used by the medoid aggregation rule and as a
  Weiszfeld warm start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import ensure_matrix


@dataclass(frozen=True)
class WeiszfeldResult:
    """Outcome of a Weiszfeld run.

    Attributes
    ----------
    point:
        The computed geometric median estimate, shape ``(d,)``.
    iterations:
        Number of fixed-point iterations performed.
    converged:
        Whether the movement between the last two iterates dropped below
        the requested tolerance.
    cost:
        Final objective value ``sum_i w_i * ||x_i - point||``.
    """

    point: np.ndarray
    iterations: int
    converged: bool
    cost: float


def geometric_median_cost(
    vectors: np.ndarray, point: np.ndarray, weights: Optional[np.ndarray] = None
) -> float:
    """Sum of (weighted) Euclidean distances from ``point`` to all rows."""
    mat = ensure_matrix(vectors, name="vectors")
    p = np.asarray(point, dtype=np.float64).reshape(-1)
    dists = np.linalg.norm(mat - p[None, :], axis=1)
    if weights is None:
        return float(dists.sum())
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    if w.shape[0] != mat.shape[0]:
        raise ValueError("weights length must match the number of vectors")
    return float(np.dot(w, dists))


def medoid_index(vectors: np.ndarray, *, dist: Optional[np.ndarray] = None) -> int:
    """Index of the input point minimising the sum of distances to the others.

    ``dist`` optionally supplies the precomputed ``(m, m)`` pairwise
    distance matrix (e.g. from a shared
    :class:`~repro.aggregation.context.AggregationContext`), skipping the
    GEMM-based recomputation.
    """
    mat = ensure_matrix(vectors, name="vectors")
    # Reuse the GEMM-based pairwise computation; O(m^2 d).
    from repro.linalg.distances import resolve_pairwise_matrix

    dist = resolve_pairwise_matrix(mat, dist)
    return int(np.argmin(dist.sum(axis=1)))


def medoid(vectors: np.ndarray) -> np.ndarray:
    """The medoid point itself (a copy of the winning input row)."""
    mat = ensure_matrix(vectors, name="vectors")
    return mat[medoid_index(mat)].copy()


def geometric_median(
    vectors: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: int = 200,
    eps: float = 1e-12,
    initial: Optional[np.ndarray] = None,
    dist: Optional[np.ndarray] = None,
    return_info: bool = False,
) -> np.ndarray | WeiszfeldResult:
    """Compute the geometric median via the Weiszfeld algorithm.

    Parameters
    ----------
    vectors:
        ``(m, d)`` stack of input points.
    weights:
        Optional non-negative per-point weights; defaults to uniform.
    tol:
        Convergence threshold on the Euclidean movement per iteration.
    max_iter:
        Iteration budget.  The paper's experiments use a small budget per
        aggregation call, so the default is modest.
    eps:
        Smoothing constant added to distances to avoid division by zero
        when an iterate coincides with an input point (the standard
        smoothed-Weiszfeld fix; see Pillutla et al. 2022).
    initial:
        Optional warm-start point.  Defaults to the weighted mean.
    dist:
        Optional precomputed ``(m, m)`` pairwise distance matrix of the
        input rows (e.g. from a shared
        :class:`~repro.aggregation.context.AggregationContext`).  Used
        only by the vertex-snap step, whose per-input costs become one
        matrix-vector product instead of an O(m^2 d) Python loop.  The
        snap decision has a 1e-9 relative margin, so supplying the
        GEMM-based matrix changes results at most at that tolerance.
    return_info:
        When true, return a :class:`WeiszfeldResult` instead of the bare
        point.

    Notes
    -----
    For one point the median is the point itself; for two points any
    point on the segment is optimal and the weighted mean (midpoint for
    uniform weights) is returned, which is a valid minimiser.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m, _d = mat.shape
    if weights is None:
        w = np.ones(m, dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64).reshape(-1)
        if w.shape[0] != m:
            raise ValueError("weights length must match the number of vectors")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        if not np.any(w > 0):
            raise ValueError("at least one weight must be positive")
    if tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be at least 1, got {max_iter}")

    if m == 1:
        point = mat[0].copy()
        result = WeiszfeldResult(point=point, iterations=0, converged=True, cost=0.0)
        return result if return_info else point

    if initial is None:
        current = np.average(mat, axis=0, weights=w)
    else:
        current = np.asarray(initial, dtype=np.float64).reshape(-1).copy()
        if current.shape[0] != mat.shape[1]:
            raise ValueError("initial point dimension mismatch")

    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        diffs = mat - current[None, :]
        dists = np.linalg.norm(diffs, axis=1)
        # Smoothed inverse distances: points at (numerically) zero
        # distance still contribute a bounded weight.
        inv = w / np.maximum(dists, eps)
        total = inv.sum()
        new_point = (inv[:, None] * mat).sum(axis=0) / total
        move = float(np.linalg.norm(new_point - current))
        current = new_point
        if move <= tol:
            converged = True
            break

    cost = geometric_median_cost(mat, current, weights=w)
    # Weiszfeld stalls when the optimum coincides with an input point
    # (the smoothed update cannot land exactly on a vertex).  Snapping to
    # the best input point whenever it beats the iterate restores the
    # guarantee that the returned cost is no worse than any input's.
    if dist is not None:
        if dist.shape != (m, m):
            raise ValueError(f"dist must have shape {(m, m)}, got {dist.shape}")
        input_costs = dist @ w
    else:
        input_costs = np.array(
            [geometric_median_cost(mat, row, weights=w) for row in mat]
        )
    best_input = int(np.argmin(input_costs))
    # Snap only on a clear improvement: exact ties (e.g. the two-point
    # case, where every point of the segment is optimal) keep the
    # Weiszfeld iterate so the result stays scale/translation equivariant.
    if cost - input_costs[best_input] > 1e-9 * max(cost, 1.0):
        current = mat[best_input].copy()
        cost = float(input_costs[best_input])
        converged = True
    result = WeiszfeldResult(
        point=current, iterations=iterations, converged=converged, cost=cost
    )
    return result if return_info else current


@dataclass(frozen=True)
class BatchedWeiszfeldResult:
    """Outcome of a batched Weiszfeld run over S independent point sets.

    Attributes
    ----------
    points:
        ``(S, d)`` geometric-median estimates.
    iterations:
        ``(S,)`` int array — iterations each set actually ran before its
        convergence mask froze it.
    converged:
        ``(S,)`` bool array — whether each set's movement dropped below
        the tolerance (or it was snapped to an optimal vertex).
    costs:
        ``(S,)`` final objective values.
    """

    points: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    costs: np.ndarray


def _batched_pairwise_distances(points: np.ndarray) -> np.ndarray:
    """``(S, s, s)`` pairwise distances per set, via one batched GEMM.

    float32 point sets run the batched GEMM in float32 and accumulate
    the squared norms in float64 (the precision policy of
    :mod:`repro.linalg.precision`); the result is float64 either way.
    """
    if points.dtype == np.float64:
        sq_norms = np.einsum("asd,asd->as", points, points)
        sq = sq_norms[:, :, None] + sq_norms[:, None, :] - 2.0 * (
            points @ points.transpose(0, 2, 1)
        )
    else:
        sq_norms = np.einsum("asd,asd->as", points, points, dtype=np.float64)
        sq = sq_norms[:, :, None] + sq_norms[:, None, :] - 2.0 * (
            points @ points.transpose(0, 2, 1)
        ).astype(np.float64)
    np.maximum(sq, 0.0, out=sq)
    diag = np.arange(points.shape[1])
    sq[:, diag, diag] = 0.0
    return np.sqrt(sq)


def batched_geometric_median(
    points: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: int = 200,
    eps: float = 1e-12,
    initial: Optional[np.ndarray] = None,
    pairwise: Optional[np.ndarray] = None,
    return_info: bool = False,
    validate_pairwise: bool = True,
) -> np.ndarray | BatchedWeiszfeldResult:
    """Weiszfeld iteration over ``S`` independent point sets at once.

    Runs the same smoothed fixed-point update as
    :func:`geometric_median`, but on an ``(S, s, d)`` tensor: every
    iteration updates all still-active sets with a handful of fused
    array operations instead of S separate Python-level solves.
    Converged sets are frozen (masked out of subsequent updates) and the
    loop exits as soon as every set has converged.  The iteration body
    itself is supplied by the active kernel backend
    (:func:`repro.linalg.backends.get_kernel_backend`): the numpy
    reference is the pinned ground truth, a compiled backend may trade
    bitwise identity for speed within its documented tier.

    Parameters
    ----------
    points:
        ``(S, s, d)`` tensor — S sets of s points in dimension d.
        float64 and float32 storage are both accepted (anything else is
        promoted to float64): float32 keeps the iteration tensors in
        float32 while accumulating the distance reductions and
        denominators in float64, and the returned medians are float64
        within the float32 tolerance tier
        (:data:`repro.linalg.precision.TOLERANCE_TIERS`).
    weights:
        Optional non-negative weights, shape ``(s,)`` (shared) or
        ``(S, s)`` (per set); defaults to uniform.
    tol, max_iter, eps:
        As in :func:`geometric_median`, applied per set.
    initial:
        Optional ``(S, d)`` warm starts; defaults to the per-set
        weighted mean (the scalar solver's default).
    pairwise:
        Optional ``(S, s, s)`` per-set pairwise distances, used by the
        vertex-snap step; computed with one batched GEMM when absent.
    return_info:
        When true, return a :class:`BatchedWeiszfeldResult`.
    validate_pairwise:
        Pass ``False`` when ``pairwise`` is a gather from an
        already-validated ``(m, m)`` matrix (the chunked subset kernel
        does) to skip the per-chunk dtype/shape re-validation.

    Notes
    -----
    Results match S scalar :func:`geometric_median` calls within a
    tolerance of order ``tol``: both paths run the identical iteration,
    but batched reductions accumulate sums in a different order, so
    bitwise equality is not guaranteed.
    """
    from repro.linalg.backends import get_kernel_backend

    pts = np.asarray(points)
    if pts.dtype != np.float32:
        pts = np.asarray(pts, dtype=np.float64)
    if pts.ndim != 3:
        raise ValueError(f"points must be an (S, s, d) tensor, got shape {pts.shape}")
    num_sets, s, d = pts.shape
    if tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be at least 1, got {max_iter}")
    if weights is None:
        w = np.ones((num_sets, s), dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim == 1:
            w = np.broadcast_to(w, (num_sets, s))
        if w.shape != (num_sets, s):
            raise ValueError(
                f"weights must have shape ({s},) or {(num_sets, s)}, got {w.shape}"
            )
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        if not np.all(np.any(w > 0, axis=1)):
            raise ValueError("every set needs at least one positive weight")
        w = np.ascontiguousarray(w)

    if num_sets == 0 or s == 1:
        current = (
            pts[:, 0, :].astype(np.float64) if s == 1 else np.empty((0, d))
        )
        info = BatchedWeiszfeldResult(
            points=current,
            iterations=np.zeros(num_sets, dtype=np.int64),
            converged=np.ones(num_sets, dtype=bool),
            costs=np.zeros(num_sets, dtype=np.float64),
        )
        return info if return_info else current

    low_precision = pts.dtype != np.float64
    if initial is None:
        totals = w.sum(axis=1)
        if low_precision:
            current = np.einsum("as,asd->ad", w, pts, dtype=np.float64)
        else:
            current = np.einsum("as,asd->ad", w, pts)
        current /= totals[:, None]
    else:
        current = np.asarray(initial, dtype=np.float64).copy()
        if current.shape != (num_sets, d):
            raise ValueError(
                f"initial must have shape {(num_sets, d)}, got {current.shape}"
            )

    current, iterations, converged = get_kernel_backend().weiszfeld_loop(
        pts, w, current, tol=tol, max_iter=max_iter, eps=eps
    )

    # Final objective values, then the same snap-to-best-vertex repair as
    # the scalar solver (clear improvements only, 1e-9 relative margin).
    if low_precision:
        diffs = pts - current.astype(pts.dtype)[:, None, :]
        dists = np.sqrt(np.einsum("asd,asd->as", diffs, diffs, dtype=np.float64))
    else:
        diffs = pts - current[:, None, :]
        dists = np.sqrt(np.einsum("asd,asd->as", diffs, diffs))
    costs = np.einsum("as,as->a", w, dists)
    if pairwise is None:
        pairwise = _batched_pairwise_distances(pts)
    elif validate_pairwise:
        pairwise = np.asarray(pairwise, dtype=np.float64)
        if pairwise.shape != (num_sets, s, s):
            raise ValueError(
                f"pairwise must have shape {(num_sets, s, s)}, got {pairwise.shape}"
            )
    input_costs = np.einsum("ai,aij->aj", w, pairwise)
    best = np.argmin(input_costs, axis=1)
    best_costs = np.take_along_axis(input_costs, best[:, None], axis=1)[:, 0]
    snap = costs - best_costs > 1e-9 * np.maximum(costs, 1.0)
    if snap.any():
        rows = np.flatnonzero(snap)
        current[rows] = pts[rows, best[rows]]
        costs[rows] = best_costs[rows]
        converged[rows] = True
    info = BatchedWeiszfeldResult(
        points=current, iterations=iterations, converged=converged, costs=costs
    )
    return info if return_info else current


def coordinatewise_median(vectors: np.ndarray) -> np.ndarray:
    """Coordinate-wise (marginal) median of the rows.

    Not the same as the geometric median for d >= 2, but coincides with
    it in one dimension; used as a cheap robust baseline and in tests.
    """
    mat = ensure_matrix(vectors, name="vectors")
    return np.median(mat, axis=0)
