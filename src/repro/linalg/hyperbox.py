"""Axis-parallel hyperbox algebra.

The hyperbox (BOX) family of agreement algorithms — the paper's central
contribution — works entirely with coordinate-parallel boxes:

- the *locally trusted hyperbox* ``TH_i`` obtained by trimming the
  ``m_i - (n - t)`` extreme values per coordinate (Definition 2.5),
- the *geometric-median hyperbox* ``GH_i``, the smallest box containing
  all candidate aggregates ``S_geo(i)`` (Definition 3.5),
- their intersection and its midpoint (Definition 3.6), and
- the maximum edge length ``E_max`` (Definition 3.7) that drives the
  convergence argument of Theorem 4.4.

:class:`Hyperbox` is an immutable value object storing lower/upper
corners; all operations are vectorised over coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.utils.validation import ensure_matrix


@dataclass(frozen=True)
class Hyperbox:
    """A (possibly empty) axis-parallel box ``[lower, upper]`` in R^d."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=np.float64).reshape(-1)
        upper = np.asarray(self.upper, dtype=np.float64).reshape(-1)
        if lower.shape != upper.shape:
            raise ValueError(
                f"lower/upper shape mismatch: {lower.shape} vs {upper.shape}"
            )
        if lower.size == 0:
            raise ValueError("hyperbox must have positive dimension")
        if not (np.all(np.isfinite(lower)) and np.all(np.isfinite(upper))):
            raise ValueError("hyperbox corners must be finite")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    # -- basic properties -------------------------------------------------
    @property
    def dimension(self) -> int:
        """Ambient dimension d."""
        return int(self.lower.shape[0])

    @property
    def is_empty(self) -> bool:
        """True when any coordinate interval is empty (lower > upper)."""
        return bool(np.any(self.lower > self.upper))

    @property
    def edge_lengths(self) -> np.ndarray:
        """Per-coordinate edge lengths (0 for degenerate or empty boxes)."""
        return np.maximum(self.upper - self.lower, 0.0)

    def max_edge_length(self) -> float:
        """``E_max`` (Definition 3.7): the longest edge of the box."""
        if self.is_empty:
            return 0.0
        return float(self.edge_lengths.max())

    def diagonal_length(self) -> float:
        """Euclidean length of the main diagonal."""
        if self.is_empty:
            return 0.0
        return float(np.linalg.norm(self.edge_lengths))

    def midpoint(self) -> np.ndarray:
        """Centre of the box (Definition 3.6).

        Raises :class:`ValueError` for empty boxes because the midpoint
        of an empty region is undefined.
        """
        if self.is_empty:
            raise ValueError("midpoint of an empty hyperbox is undefined")
        return (self.lower + self.upper) / 2.0

    def volume(self) -> float:
        """Product of the edge lengths (0 when empty or degenerate)."""
        if self.is_empty:
            return 0.0
        return float(np.prod(self.edge_lengths))

    # -- set operations ----------------------------------------------------
    def contains(self, point: np.ndarray, *, atol: float = 1e-12) -> bool:
        """Whether ``point`` lies inside the box (within tolerance ``atol``)."""
        p = np.asarray(point, dtype=np.float64).reshape(-1)
        if p.shape[0] != self.dimension:
            raise ValueError(
                f"point dimension {p.shape[0]} does not match box dimension {self.dimension}"
            )
        if self.is_empty:
            return False
        return bool(
            np.all(p >= self.lower - atol) and np.all(p <= self.upper + atol)
        )

    def contains_box(self, other: "Hyperbox", *, atol: float = 1e-12) -> bool:
        """Whether ``other`` is entirely contained in this box."""
        if other.dimension != self.dimension:
            raise ValueError("dimension mismatch between hyperboxes")
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return bool(
            np.all(other.lower >= self.lower - atol)
            and np.all(other.upper <= self.upper + atol)
        )

    def intersect(self, other: "Hyperbox") -> "Hyperbox":
        """Coordinate-wise intersection (possibly empty) of two boxes."""
        if other.dimension != self.dimension:
            raise ValueError("dimension mismatch between hyperboxes")
        return Hyperbox(
            lower=np.maximum(self.lower, other.lower),
            upper=np.minimum(self.upper, other.upper),
        )

    def union_bounding(self, other: "Hyperbox") -> "Hyperbox":
        """Smallest box containing both boxes."""
        if other.dimension != self.dimension:
            raise ValueError("dimension mismatch between hyperboxes")
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Hyperbox(
            lower=np.minimum(self.lower, other.lower),
            upper=np.maximum(self.upper, other.upper),
        )

    def expand(self, margin: float) -> "Hyperbox":
        """Box grown by ``margin`` on every side (useful in tests)."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return Hyperbox(lower=self.lower - margin, upper=self.upper + margin)

    def clip(self, point: np.ndarray) -> np.ndarray:
        """Project ``point`` onto the box (nearest point inside it)."""
        if self.is_empty:
            raise ValueError("cannot clip onto an empty hyperbox")
        p = np.asarray(point, dtype=np.float64).reshape(-1)
        if p.shape[0] != self.dimension:
            raise ValueError("point dimension mismatch")
        return np.clip(p, self.lower, self.upper)

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` uniform points inside the box, shape ``(count, d)``."""
        if self.is_empty:
            raise ValueError("cannot sample from an empty hyperbox")
        if count < 1:
            raise ValueError("count must be positive")
        u = rng.random((count, self.dimension))
        return self.lower[None, :] + u * (self.upper - self.lower)[None, :]

    def corners(self, *, max_dimension: int = 16) -> np.ndarray:
        """All 2^d corners of the box (guarded against dimension blow-up)."""
        if self.is_empty:
            raise ValueError("an empty hyperbox has no corners")
        d = self.dimension
        if d > max_dimension:
            raise ValueError(
                f"refusing to enumerate 2^{d} corners; increase max_dimension explicitly"
            )
        grid = np.array(
            np.meshgrid(*[(self.lower[k], self.upper[k]) for k in range(d)], indexing="ij")
        )
        return grid.reshape(d, -1).T


def bounding_hyperbox(vectors: np.ndarray) -> Hyperbox:
    """Smallest axis-parallel hyperbox containing all rows of ``vectors``."""
    mat = ensure_matrix(vectors, name="vectors")
    return Hyperbox(lower=mat.min(axis=0), upper=mat.max(axis=0))


def trimmed_hyperbox(vectors: np.ndarray, trim: int) -> Hyperbox:
    """Locally trusted hyperbox (Definition 2.5).

    Per coordinate, sort the received values and drop the ``trim``
    smallest and ``trim`` largest; the box spans the remaining range.
    With ``m`` received vectors and resilience parameters ``(n, t)`` the
    caller passes ``trim = m - (n - t)``, the maximum possible number of
    Byzantine values per coordinate.

    Raises
    ------
    ValueError
        If trimming would remove every value (``2 * trim >= m``).
    """
    mat = ensure_matrix(vectors, name="vectors")
    m = mat.shape[0]
    if trim < 0:
        raise ValueError(f"trim must be non-negative, got {trim}")
    if trim == 0:
        return bounding_hyperbox(mat)
    if 2 * trim >= m:
        raise ValueError(
            f"cannot trim {trim} values from each side of only {m} vectors"
        )
    ordered = np.sort(mat, axis=0)
    return Hyperbox(lower=ordered[trim], upper=ordered[m - trim - 1])


def intersect_all(boxes: Iterable[Hyperbox]) -> Optional[Hyperbox]:
    """Intersection of an iterable of hyperboxes (None for an empty iterable)."""
    result: Optional[Hyperbox] = None
    for box in boxes:
        result = box if result is None else result.intersect(box)
    return result
