"""Precision policy for the aggregation kernels.

The hot kernels (pairwise distances, subset means/diameters, batched
Weiszfeld) historically ran dense float64 end to end.  This module
defines the **precision tiers** the kernel layer supports and the
equivalence contract each tier promises against the float64 reference:

- ``float64`` — the default.  Results are **bitwise-identical** to the
  pre-tier kernels; every pinned equivalence fixture must keep passing
  unchanged.
- ``float32`` — iteration tensors (the ``(S, s, d)`` Weiszfeld tensor,
  the GEMM inside the Gram-trick distances) are stored and streamed in
  float32, while the reductions where cancellation actually hurts —
  squared-norm accumulations and the Weiszfeld inverse-distance
  denominators — accumulate in float64.  Aggregates are returned as
  float64 and match the float64 reference within the documented
  :class:`ToleranceTier` (see ``docs/performance.md``).

``resolve_dtype`` is the single entry point every knob (config field,
CLI flag, sweep axis, :class:`~repro.aggregation.context.AggregationContext`
argument) funnels through, so an unsupported dtype fails loudly at
configuration time instead of producing silently-degraded numerics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Names accepted by every dtype knob, in preference order.
SUPPORTED_DTYPES = ("float64", "float32")

#: Default tier: bitwise-compatible with the historical kernels.
DEFAULT_DTYPE = "float64"


@dataclass(frozen=True)
class ToleranceTier:
    """Equivalence contract of one precision tier vs. the float64 path.

    Attributes
    ----------
    name:
        Canonical dtype name (``"float64"`` / ``"float32"``).
    bitwise:
        When true, results must be bit-for-bit identical to the
        reference kernels (``rtol``/``atol`` are both zero).
    rtol, atol:
        ``np.allclose``-style bounds for non-bitwise tiers, calibrated
        for unit-to-tens scale inputs (gradients, agreement vectors).
    description:
        One-line summary rendered into docs and error messages.
    """

    name: str
    bitwise: bool
    rtol: float
    atol: float
    description: str

    def check(self, reference: np.ndarray, result: np.ndarray) -> bool:
        """Whether ``result`` satisfies this tier against ``reference``."""
        if self.bitwise:
            return bool(np.array_equal(reference, result))
        return bool(np.allclose(reference, result, rtol=self.rtol, atol=self.atol))


#: The documented equivalence contract per tier.  float32 bounds are
#: calibrated (with margin) on the precision-tier test suite: storage in
#: float32 carries ~6e-8 relative error per element and the Weiszfeld
#: fixed point amplifies it by at most a few orders of magnitude, while
#: all cancellation-prone reductions stay in float64.
TOLERANCE_TIERS = {
    "float64": ToleranceTier(
        name="float64",
        bitwise=True,
        rtol=0.0,
        atol=0.0,
        description="bitwise-identical to the reference kernels",
    ),
    "float32": ToleranceTier(
        name="float32",
        bitwise=False,
        rtol=1e-3,
        atol=1e-3,
        description=(
            "float32 storage with float64 accumulation; matches the "
            "float64 path within rtol=1e-3 / atol=1e-3 for unit-to-tens "
            "scale inputs"
        ),
    ),
}


def resolve_dtype(dtype: "str | np.dtype | type | None") -> np.dtype:
    """Canonical :class:`numpy.dtype` for a precision knob value.

    ``None`` resolves to the :data:`DEFAULT_DTYPE`.  Anything outside
    :data:`SUPPORTED_DTYPES` raises ``ValueError`` so a typo'd sweep
    axis fails before any cell runs.
    """
    if dtype is None:
        return np.dtype(DEFAULT_DTYPE)
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(
            f"unsupported kernel dtype {dtype!r}; supported: {SUPPORTED_DTYPES}"
        ) from exc
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported kernel dtype {dtype!r}; supported: {SUPPORTED_DTYPES}"
        )
    return resolved


def dtype_name(dtype: "str | np.dtype | type | None") -> str:
    """Canonical name (``"float64"`` / ``"float32"``) of a dtype knob."""
    return resolve_dtype(dtype).name


def tolerance_tier(dtype: "str | np.dtype | type | None") -> ToleranceTier:
    """The :class:`ToleranceTier` contract governing ``dtype``."""
    return TOLERANCE_TIERS[dtype_name(dtype)]


def accumulation_dtype(dtype: "str | np.dtype | type | None") -> np.dtype:
    """Accumulator dtype for reductions: always float64.

    Kept as a function (rather than a constant) so call sites document
    *why* a reduction names float64 explicitly — it is the accumulation
    half of the precision policy, not an accidental upcast.
    """
    resolve_dtype(dtype)  # validate, even though the answer is fixed
    return np.dtype(np.float64)


def working_matrix(matrix: np.ndarray, dtype: Optional[str] = None) -> np.ndarray:
    """Cast a validated ``(m, d)`` matrix to the requested tier's storage.

    No-copy when the matrix already has the requested dtype — the
    float64 default therefore never duplicates the received stack.
    """
    return np.asarray(matrix, dtype=resolve_dtype(dtype))
