"""Structure detection for received update stacks.

Adversarial rounds are rarely "generic" dense data: the sign-flip and
omniscient attacks send the *same* corrupted vector from every Byzantine
node (duplicated rows), label-flip poisoning and sparse models zero out
entire coordinates (exact-zero columns), and partition attacks echo
honest vectors verbatim.  The subset kernels pay O(C(m, n-t) · s · d)
for that redundancy when run dense.

This module detects the two structures the fast paths exploit, at the
**bit level** so the float64 default can stay exactly equivalent:

- **Duplicated rows** — rows are grouped by byte-equality
  (:attr:`SparsityProfile.row_group_ids`).  Two subsets whose index
  tuples map to the same group-id pattern gather bit-identical
  ``(s, d)`` point sets, so any per-subset kernel value can be computed
  once per *pattern* and scattered back (:func:`dedup_subsets`).  This
  is exact for every dtype: the representative subset runs through the
  very same kernel, it is merely not run twice.
- **Exact-zero columns** — columns whose entries are all ``+0.0``
  *by bit pattern* (``-0.0`` is excluded: it survives means but flips
  signs under subtraction).  Elision is a **float32-tier-only** fast
  path for every kernel.  It obviously reorders the reductions inside
  distance/Weiszfeld kernels, but it is not even safe for per-column
  means: dropping columns changes the stride of the reduction axis,
  and numpy picks its summation order (sequential vs. unrolled
  pairwise) by that stride, so the mean of an *untouched* column can
  move by an ulp.  Only the float32 tolerance contract
  (:mod:`repro.linalg.precision`) absorbs the reordering.

Profiles are cheap — O(m·d) with small constants — and cached per round
on the :class:`~repro.aggregation.context.AggregationContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Sparsity knob values accepted by the kernels and the context.
SPARSITY_MODES = ("auto", "off")

#: Minimum fraction of exact-zero columns before elision pays for the
#: column gather it introduces.
MIN_ZERO_COLUMN_FRACTION = 0.125


def resolve_sparsity(mode: "str | None") -> str:
    """Validate a sparsity knob value (``None`` means ``"auto"``)."""
    if mode is None:
        return "auto"
    if mode not in SPARSITY_MODES:
        raise ValueError(
            f"unknown sparsity mode {mode!r}; supported: {SPARSITY_MODES}"
        )
    return mode


@dataclass(frozen=True)
class SparsityProfile:
    """Bit-level structure of one ``(m, d)`` received stack.

    Attributes
    ----------
    row_group_ids:
        ``(m,)`` int64 — for every row, the index of the first row with
        byte-identical contents (a row with no duplicate maps to
        itself).
    num_unique_rows:
        Number of distinct row groups.
    nonzero_columns:
        ``(d,)`` bool mask — true where the column holds anything other
        than all-``+0.0`` bit patterns.
    num_zero_columns:
        Count of elidable (all-``+0.0``) columns.
    """

    row_group_ids: np.ndarray
    num_unique_rows: int
    nonzero_columns: np.ndarray
    num_zero_columns: int

    @property
    def num_rows(self) -> int:
        return int(self.row_group_ids.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self.nonzero_columns.shape[0])

    @property
    def has_duplicate_rows(self) -> bool:
        return self.num_unique_rows < self.num_rows

    @property
    def has_zero_columns(self) -> bool:
        return self.num_zero_columns > 0

    @property
    def zero_column_fraction(self) -> float:
        return self.num_zero_columns / self.num_columns if self.num_columns else 0.0

    def elidable(self) -> bool:
        """Whether zero-column elision clears the benefit threshold."""
        # Eliding *every* column would leave nothing to compute on; the
        # degenerate all-zero stack stays on the dense path.
        return (
            self.zero_column_fraction >= MIN_ZERO_COLUMN_FRACTION
            and self.num_zero_columns < self.num_columns
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparsityProfile(rows={self.num_rows}, "
            f"unique_rows={self.num_unique_rows}, "
            f"zero_columns={self.num_zero_columns}/{self.num_columns})"
        )


def detect_structure(matrix: np.ndarray) -> SparsityProfile:
    """Profile duplicated rows and exact-zero columns of a stack.

    Both detections are bit-exact: rows compare by raw bytes and a
    column is "zero" only when every entry is the ``+0.0`` bit pattern,
    so a profile never claims structure that the dense kernels would
    distinguish.
    """
    mat = np.asarray(matrix)
    if mat.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {mat.shape}")
    m = mat.shape[0]

    group_ids = np.empty(m, dtype=np.int64)
    first_seen: dict = {}
    for i in range(m):
        key = mat[i].tobytes()
        group_ids[i] = first_seen.setdefault(key, i)

    plus_zero = (mat == 0.0) & ~np.signbit(mat)
    nonzero_columns = ~plus_zero.all(axis=0)

    return SparsityProfile(
        row_group_ids=group_ids,
        num_unique_rows=len(first_seen),
        nonzero_columns=nonzero_columns,
        num_zero_columns=int(nonzero_columns.size - np.count_nonzero(nonzero_columns)),
    )


def project_profile(
    profile: SparsityProfile, rows: np.ndarray, matrix: np.ndarray
) -> SparsityProfile:
    """Project a batch-level profile through a row selection.

    The batch message plane computes one profile per ``(S, d)`` payload
    matrix and every receiver sees a gather ``matrix = payloads[rows]``
    of it; this derives the receiver's profile without re-running the
    per-row byte hashing of :func:`detect_structure`:

    - **Row groups** project exactly: two gathered rows are byte-equal
      iff their source rows are (gathering copies bytes verbatim), so
      the subset's group ids are the batch's group ids remapped to
      first-occurrence positions *within the selection*.
    - **Zero columns** are recomputed directly on ``matrix`` — one
      vectorized ``O(m·d)`` pass, the cheap half of detection — because
      a column can be all-``+0.0`` in the subset without being so in the
      full batch (and float32-tier consumers hand in a converted matrix
      whose zero set must be measured on *its* bytes).

    The result is exactly what ``detect_structure(matrix)`` would claim
    when ``matrix`` holds the same bytes as ``payloads[rows]``; on a
    dtype-converted matrix the row grouping is a (still exact) refinement
    — byte-equal float64 rows convert to byte-equal rows — so kernels
    never see a claim the dense paths would distinguish.
    """
    group_ids = profile.row_group_ids[np.asarray(rows, dtype=np.int64)]
    _, first, inverse = np.unique(group_ids, return_index=True, return_inverse=True)
    plus_zero = (matrix == 0.0) & ~np.signbit(matrix)
    nonzero_columns = ~plus_zero.all(axis=0)
    return SparsityProfile(
        row_group_ids=first[inverse.reshape(-1)].astype(np.int64, copy=False),
        num_unique_rows=int(first.shape[0]),
        nonzero_columns=nonzero_columns,
        num_zero_columns=int(nonzero_columns.size - np.count_nonzero(nonzero_columns)),
    )


def dedup_subsets(
    indices: np.ndarray, profile: SparsityProfile
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Collapse a subset family to one representative per row pattern.

    Maps every ``(S, s)`` index row through
    :attr:`SparsityProfile.row_group_ids` and groups subsets whose
    patterns coincide; the representative of a group is its **first**
    subset in family order.  Returns ``(representatives, inverse)``
    where ``representatives`` is the reduced ``(U, s)`` index matrix and
    ``kernel(indices)[i] == kernel(representatives)[inverse[i]]``
    bitwise — the representative gathers byte-identical points, so the
    kernel cannot tell the difference.  Returns ``None`` when nothing
    collapses (all patterns distinct), letting callers skip the scatter.
    """
    if not profile.has_duplicate_rows or indices.shape[0] <= 1:
        return None
    patterns = profile.row_group_ids[indices]
    _, first, inverse = np.unique(
        patterns, axis=0, return_index=True, return_inverse=True
    )
    if first.shape[0] == indices.shape[0]:
        return None
    return indices[first], inverse.reshape(-1)
