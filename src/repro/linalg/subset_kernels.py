"""Batched kernels over families of ``(n - t)``-subsets.

The subset-quantified rules (BOX-MEAN / BOX-GEOM, MD-MEAN / MD-GEOM,
``S_geo``) all evaluate one small computation — a mean, a geometric
median, a diameter — on every subset of a family of ``C(m, n - t)``
index tuples.  Evaluating them one tuple at a time costs O(S) Python
round-trips through the scalar solvers; this module restructures the
work into a handful of BLAS-shaped array kernels instead:

- a subset family is a single ``(S, s)`` int64 **index matrix**
  (:func:`subset_index_matrix` for exhaustive lexicographic families,
  :func:`subsets_as_matrix` for sampled tuple lists),
- subset **diameters** are one chunked gather over the precomputed
  ``(m, m)`` pairwise distance matrix (:func:`subset_diameters`),
- subset **means** are one chunked fancy-index + reduction
  (:func:`subset_means`), bitwise-identical to the per-tuple loop,
- subset **geometric medians** run the smoothed Weiszfeld iteration on
  the whole ``(S, s, d)`` tensor simultaneously with per-subset
  convergence masking (:func:`subset_geometric_medians`, built on
  :func:`repro.linalg.geometric_median.batched_geometric_median`).

Every kernel takes a ``chunk_size`` knob (number of subsets per chunk)
so peak memory stays bounded at large ``C(m, n - t)``; ``None`` picks a
chunk from the :data:`DEFAULT_CHUNK_ELEMENTS` element budget.  See
``docs/performance.md`` for the memory/speed trade-off and benchmark
numbers (``benchmarks/bench_subset_kernels.py``).
"""

from __future__ import annotations

from itertools import chain, combinations
from math import comb
from typing import Optional

import numpy as np

#: Element budget (float64 entries per intermediate tensor) used to pick
#: an automatic chunk size.  4M elements = ~32 MiB per temporary.
DEFAULT_CHUNK_ELEMENTS = 4_000_000


def subset_index_matrix(m: int, k: int) -> np.ndarray:
    """All k-subsets of ``range(m)`` as an ``(C(m, k), k)`` int64 matrix.

    Rows are in lexicographic order, matching
    :func:`repro.linalg.subsets.enumerate_subsets` row for row.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    total = comb(m, k) if k <= m else 0
    if total == 0:
        return np.empty((0, k), dtype=np.int64)
    flat = np.fromiter(
        chain.from_iterable(combinations(range(m), k)),
        dtype=np.int64,
        count=total * k,
    )
    return flat.reshape(total, k)


def subsets_as_matrix(subsets, k: Optional[int] = None) -> np.ndarray:
    """Convert a sequence of index tuples to an ``(S, k)`` int64 matrix."""
    rows = list(subsets)
    if not rows:
        if k is None:
            raise ValueError("cannot infer subset size from an empty family")
        return np.empty((0, int(k)), dtype=np.int64)
    mat = np.asarray(rows, dtype=np.int64)
    if mat.ndim != 2:
        raise ValueError(f"subsets must all have the same size, got ragged input")
    if k is not None and mat.shape[1] != int(k):
        raise ValueError(
            f"subsets have size {mat.shape[1]}, expected {int(k)}"
        )
    return mat


def validate_subset_indices(indices: np.ndarray, m: int) -> np.ndarray:
    """Validate an ``(S, s)`` index matrix against a stack of ``m`` rows."""
    idx = np.asarray(indices)
    if idx.ndim != 2:
        raise ValueError(f"index matrix must be 2-D, got shape {idx.shape}")
    if not np.issubdtype(idx.dtype, np.integer):
        raise ValueError(f"index matrix must be integer-typed, got {idx.dtype}")
    if idx.size and (idx.min() < 0 or idx.max() >= m):
        raise ValueError(f"subset indices must lie in [0, {m}), got range "
                         f"[{idx.min()}, {idx.max()}]")
    return idx.astype(np.int64, copy=False)


def resolve_chunk_size(
    chunk_size: Optional[int], per_subset_elements: int, total: int
) -> int:
    """Number of subsets per chunk: explicit, or from the element budget."""
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        return min(int(chunk_size), max(1, total))
    per = max(1, int(per_subset_elements))
    return max(1, min(total if total else 1, DEFAULT_CHUNK_ELEMENTS // per))


def subset_diameters(
    dist: np.ndarray,
    indices: np.ndarray,
    *,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Diameter of every subset, gathered from a pairwise distance matrix.

    Parameters
    ----------
    dist:
        ``(m, m)`` pairwise Euclidean distance matrix (e.g. from
        :attr:`repro.aggregation.context.AggregationContext.distances`).
    indices:
        ``(S, s)`` subset index matrix.
    chunk_size:
        Subsets per chunk; bounds the ``chunk * s * s`` gather temporary.

    Returns
    -------
    ``(S,)`` float64 array.  Values are bitwise-identical to
    ``dist[np.ix_(rows, rows)].max()`` per subset (``max`` is exact).
    """
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError(f"dist must be a square matrix, got shape {dist.shape}")
    idx = validate_subset_indices(indices, dist.shape[0])
    total, s = idx.shape
    out = np.zeros(total, dtype=np.float64)
    if total == 0 or s <= 1:
        return out
    chunk = resolve_chunk_size(chunk_size, s * s, total)
    for start in range(0, total, chunk):
        rows = idx[start : start + chunk]
        gathered = dist[rows[:, :, None], rows[:, None, :]]
        out[start : start + chunk] = gathered.max(axis=(1, 2))
    return out


def subset_means(
    matrix: np.ndarray,
    indices: np.ndarray,
    *,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Mean vector of every subset, as one chunked gather + reduction.

    Bitwise-identical to ``matrix[list(idx)].mean(axis=0)`` per subset:
    the reduction over the subset axis accumulates rows in the same
    order in both layouts.
    """
    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {mat.shape}")
    idx = validate_subset_indices(indices, mat.shape[0])
    total, s = idx.shape
    d = mat.shape[1]
    out = np.empty((total, d), dtype=np.float64)
    if total == 0:
        return out
    if s == 0:
        raise ValueError("subset size must be at least 1 for means")
    chunk = resolve_chunk_size(chunk_size, s * d, total)
    for start in range(0, total, chunk):
        out[start : start + chunk] = mat[idx[start : start + chunk]].mean(axis=1)
    return out


def subset_geometric_medians(
    matrix: np.ndarray,
    indices: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 200,
    eps: float = 1e-12,
    chunk_size: Optional[int] = None,
    dist: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Geometric median of every subset via one batched Weiszfeld solve.

    Parameters
    ----------
    matrix:
        ``(m, d)`` stack of received vectors.
    indices:
        ``(S, s)`` subset index matrix.
    tol, max_iter, eps:
        Forwarded to the batched Weiszfeld iteration; identical meaning
        to the scalar :func:`repro.linalg.geometric_median.geometric_median`.
    chunk_size:
        Subsets per chunk; bounds the ``chunk * s * d`` iteration tensor
        (and the ``chunk * s * s`` pairwise tensor of the vertex-snap
        step).
    dist:
        Optional precomputed ``(m, m)`` pairwise distance matrix.  When
        given, the per-subset pairwise distances needed by the
        vertex-snap step are a free gather instead of a batched GEMM.

    Returns
    -------
    ``(S, d)`` float64 array, matching the scalar per-subset solve
    within a tolerance of order ``tol`` (the two paths run the same
    iteration but accumulate sums in different orders).
    """
    from repro.linalg.geometric_median import batched_geometric_median

    mat = np.asarray(matrix, dtype=np.float64)
    if mat.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {mat.shape}")
    idx = validate_subset_indices(indices, mat.shape[0])
    total, s = idx.shape
    d = mat.shape[1]
    out = np.empty((total, d), dtype=np.float64)
    if total == 0:
        return out
    if s == 0:
        raise ValueError("subset size must be at least 1 for geometric medians")
    if s == 1:
        return mat[idx[:, 0]].copy()
    if dist is not None:
        dist = np.asarray(dist, dtype=np.float64)
        if dist.shape != (mat.shape[0], mat.shape[0]):
            raise ValueError(
                f"dist must have shape {(mat.shape[0], mat.shape[0])}, "
                f"got {dist.shape}"
            )
    chunk = resolve_chunk_size(chunk_size, s * max(s, d), total)
    for start in range(0, total, chunk):
        rows = idx[start : start + chunk]
        points = mat[rows]
        pairwise = None
        if dist is not None:
            pairwise = dist[rows[:, :, None], rows[:, None, :]]
        out[start : start + chunk] = batched_geometric_median(
            points, tol=tol, max_iter=max_iter, eps=eps, pairwise=pairwise
        )
    return out
