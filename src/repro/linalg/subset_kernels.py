"""Batched kernels over families of ``(n - t)``-subsets.

The subset-quantified rules (BOX-MEAN / BOX-GEOM, MD-MEAN / MD-GEOM,
``S_geo``) all evaluate one small computation — a mean, a geometric
median, a diameter — on every subset of a family of ``C(m, n - t)``
index tuples.  Evaluating them one tuple at a time costs O(S) Python
round-trips through the scalar solvers; this module restructures the
work into a handful of BLAS-shaped array kernels instead:

- a subset family is a single ``(S, s)`` int64 **index matrix**
  (:func:`subset_index_matrix` for exhaustive lexicographic families,
  :func:`subsets_as_matrix` for sampled tuple lists),
- subset **diameters** are one chunked gather over the precomputed
  ``(m, m)`` pairwise distance matrix (:func:`subset_diameters`),
- subset **means** are one chunked fancy-index + reduction
  (:func:`subset_means`), bitwise-identical to the per-tuple loop,
- subset **geometric medians** run the smoothed Weiszfeld iteration on
  the whole ``(S, s, d)`` tensor simultaneously with per-subset
  convergence masking (:func:`subset_geometric_medians`, built on
  :func:`repro.linalg.geometric_median.batched_geometric_median`).

Every kernel takes a ``chunk_size`` knob (number of subsets per chunk)
so peak memory stays bounded at large ``C(m, n - t)``; ``None`` picks a
chunk from the :data:`DEFAULT_CHUNK_ELEMENTS` element budget.

On top of chunking, every kernel accepts the precision/sparsity policy
of the kernel layer:

- float32 input matrices keep the gathered tensors in float32 with
  float64 accumulation (see :mod:`repro.linalg.precision`); results are
  always returned as float64.
- ``sparsity="auto"`` routes structured stacks through reduced
  computation (:mod:`repro.linalg.sparsity`): subsets whose index
  patterns gather byte-identical point sets are computed once and
  scattered back (exact for every dtype), and on the float32 tier
  exact-zero columns are elided from the gathered tensors.  Column
  elision is tolerance-safe only — dropping columns changes the
  stride (and hence the summation order) of the reduction axis, so
  even a mean over untouched columns can move by an ulp — which is
  why the bitwise float64 contract keeps every column.
- the innermost loops are supplied by the active kernel backend
  (:mod:`repro.linalg.backends`).

See ``docs/performance.md`` for the memory/speed trade-off, the
tolerance tiers and benchmark numbers
(``benchmarks/bench_subset_kernels.py``).
"""

from __future__ import annotations

from itertools import chain, combinations
from math import comb
from typing import Optional, Tuple

import numpy as np

from repro.linalg.sparsity import (
    SparsityProfile,
    dedup_subsets,
    detect_structure,
    resolve_sparsity,
)

#: Element budget (float64 entries per intermediate tensor) used to pick
#: an automatic chunk size.  4M elements = ~32 MiB per temporary.
DEFAULT_CHUNK_ELEMENTS = 4_000_000


def subset_index_matrix(m: int, k: int) -> np.ndarray:
    """All k-subsets of ``range(m)`` as an ``(C(m, k), k)`` int64 matrix.

    Rows are in lexicographic order, matching
    :func:`repro.linalg.subsets.enumerate_subsets` row for row.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    total = comb(m, k) if k <= m else 0
    if total == 0:
        return np.empty((0, k), dtype=np.int64)
    flat = np.fromiter(
        chain.from_iterable(combinations(range(m), k)),
        dtype=np.int64,
        count=total * k,
    )
    return flat.reshape(total, k)


def subsets_as_matrix(subsets, k: Optional[int] = None) -> np.ndarray:
    """Convert a sequence of index tuples to an ``(S, k)`` int64 matrix."""
    rows = list(subsets)
    if not rows:
        if k is None:
            raise ValueError("cannot infer subset size from an empty family")
        return np.empty((0, int(k)), dtype=np.int64)
    mat = np.asarray(rows, dtype=np.int64)
    if mat.ndim != 2:
        raise ValueError(f"subsets must all have the same size, got ragged input")
    if k is not None and mat.shape[1] != int(k):
        raise ValueError(
            f"subsets have size {mat.shape[1]}, expected {int(k)}"
        )
    return mat


def validate_subset_indices(indices: np.ndarray, m: int) -> np.ndarray:
    """Validate an ``(S, s)`` index matrix against a stack of ``m`` rows."""
    idx = np.asarray(indices)
    if idx.ndim != 2:
        raise ValueError(f"index matrix must be 2-D, got shape {idx.shape}")
    if not np.issubdtype(idx.dtype, np.integer):
        raise ValueError(f"index matrix must be integer-typed, got {idx.dtype}")
    if idx.size and (idx.min() < 0 or idx.max() >= m):
        raise ValueError(f"subset indices must lie in [0, {m}), got range "
                         f"[{idx.min()}, {idx.max()}]")
    return idx.astype(np.int64, copy=False)


def resolve_chunk_size(
    chunk_size: Optional[int], per_subset_elements: int, total: int
) -> int:
    """Number of subsets per chunk: explicit, or from the element budget."""
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        return min(int(chunk_size), max(1, total))
    per = max(1, int(per_subset_elements))
    return max(1, min(total if total else 1, DEFAULT_CHUNK_ELEMENTS // per))


def _as_float_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """2-D float view of ``matrix`` — no copy when already float32/64.

    float32 and float64 storage pass through untouched (the precision
    tiers); any other dtype is promoted to float64, matching the
    historical behaviour for integer/list inputs.
    """
    mat = np.asarray(matrix)
    if mat.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {mat.shape}")
    if mat.dtype not in (np.float32, np.float64):
        mat = mat.astype(np.float64)
    return mat


def _resolve_profile(
    mode: str, profile: Optional[SparsityProfile], matrix: Optional[np.ndarray]
) -> Optional[SparsityProfile]:
    """The structure profile to route with, detecting it when needed.

    ``matrix`` is ``None`` for kernels that never see the row stack
    (the diameter gather); those only exploit structure when the caller
    supplies a profile of the stack behind the distance matrix.
    """
    if mode != "auto":
        return None
    if profile is not None:
        return profile
    if matrix is None:
        return None
    return detect_structure(matrix)


def subset_diameters(
    dist: np.ndarray,
    indices: np.ndarray,
    *,
    chunk_size: Optional[int] = None,
    sparsity: str = "off",
    profile: Optional[SparsityProfile] = None,
) -> np.ndarray:
    """Diameter of every subset, gathered from a pairwise distance matrix.

    Parameters
    ----------
    dist:
        ``(m, m)`` pairwise Euclidean distance matrix (e.g. from
        :attr:`repro.aggregation.context.AggregationContext.distances`).
    indices:
        ``(S, s)`` subset index matrix.
    chunk_size:
        Subsets per chunk; bounds the ``chunk * s * s`` gather temporary.
    sparsity, profile:
        With ``sparsity="auto"`` and a caller-supplied
        :class:`~repro.linalg.sparsity.SparsityProfile` of the row stack
        behind ``dist``, subsets gathering byte-identical point sets are
        computed once per pattern and scattered back — values stay
        bitwise-identical (the representative runs through the same
        gather).  Without a profile the gather has no row stack to
        inspect and runs dense.

    Returns
    -------
    ``(S,)`` float64 array.  Values are bitwise-identical to
    ``dist[np.ix_(rows, rows)].max()`` per subset (``max`` is exact).
    """
    dist = np.asarray(dist)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError(f"dist must be a square matrix, got shape {dist.shape}")
    if not np.issubdtype(dist.dtype, np.floating):
        dist = dist.astype(np.float64)
    idx = validate_subset_indices(indices, dist.shape[0])
    total, s = idx.shape
    if total == 0 or s <= 1:
        return np.zeros(total, dtype=np.float64)

    plan = None
    prof = _resolve_profile(resolve_sparsity(sparsity), profile, None)
    if prof is not None:
        plan = dedup_subsets(idx, prof)
        if plan is not None:
            idx = plan[0]

    from repro.linalg.backends import get_kernel_backend

    backend = get_kernel_backend()
    reduced_total = idx.shape[0]
    out = np.zeros(reduced_total, dtype=np.float64)
    chunk = resolve_chunk_size(chunk_size, s * s, reduced_total)
    for start in range(0, reduced_total, chunk):
        rows = idx[start : start + chunk]
        out[start : start + chunk] = backend.diameter_gather(dist, rows)
    if plan is not None:
        out = out[plan[1]]
    return out


def subset_means(
    matrix: np.ndarray,
    indices: np.ndarray,
    *,
    chunk_size: Optional[int] = None,
    sparsity: str = "off",
    profile: Optional[SparsityProfile] = None,
) -> np.ndarray:
    """Mean vector of every subset, as one chunked gather + reduction.

    Bitwise-identical to ``matrix[list(idx)].mean(axis=0)`` per subset:
    the reduction over the subset axis accumulates rows in the same
    order in both layouts.  Under ``sparsity="auto"``,
    pattern-duplicate subsets are computed once on byte-identical
    gathers and scattered back — still bitwise-exact, because the
    representative runs through the identical reduction.  Exact-zero
    columns are elided only on the float32 tier: although an elided
    column contributes exactly ``+0.0``, dropping columns changes the
    stride of the reduction axis and numpy's summation order with it,
    moving the mean of the *surviving* columns by an ulp.  float32
    matrices accumulate the mean in float64; the result is float64
    either way.
    """
    mat = _as_float_matrix(matrix, "matrix")
    idx = validate_subset_indices(indices, mat.shape[0])
    total, s = idx.shape
    d = mat.shape[1]
    if total == 0:
        return np.empty((total, d), dtype=np.float64)
    if s == 0:
        raise ValueError("subset size must be at least 1 for means")

    prof = _resolve_profile(resolve_sparsity(sparsity), profile, mat)
    plan = None
    columns = None
    if prof is not None:
        plan = dedup_subsets(idx, prof)
        if plan is not None:
            idx = plan[0]
        if mat.dtype == np.float32 and prof.elidable():
            columns = prof.nonzero_columns
            mat = mat[:, columns]

    reduced_total = idx.shape[0]
    reduced = np.empty((reduced_total, mat.shape[1]), dtype=np.float64)
    chunk = resolve_chunk_size(chunk_size, s * d, reduced_total)
    for start in range(0, reduced_total, chunk):
        gathered = mat[idx[start : start + chunk]]
        reduced[start : start + chunk] = gathered.mean(axis=1, dtype=np.float64)

    if columns is not None:
        out = np.zeros((reduced_total, d), dtype=np.float64)
        out[:, columns] = reduced
    else:
        out = reduced
    if plan is not None:
        out = out[plan[1]]
    return out


def subset_geometric_medians(
    matrix: np.ndarray,
    indices: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 200,
    eps: float = 1e-12,
    chunk_size: Optional[int] = None,
    dist: Optional[np.ndarray] = None,
    sparsity: str = "off",
    profile: Optional[SparsityProfile] = None,
) -> np.ndarray:
    """Geometric median of every subset via one batched Weiszfeld solve.

    Parameters
    ----------
    matrix:
        ``(m, d)`` stack of received vectors (float64 or float32; the
        float32 tier iterates in float32 storage with float64
        accumulation, see :mod:`repro.linalg.precision`).
    indices:
        ``(S, s)`` subset index matrix.
    tol, max_iter, eps:
        Forwarded to the batched Weiszfeld iteration; identical meaning
        to the scalar :func:`repro.linalg.geometric_median.geometric_median`.
    chunk_size:
        Subsets per chunk; bounds the ``chunk * s * d`` iteration tensor
        (and the ``chunk * s * s`` pairwise tensor of the vertex-snap
        step).
    dist:
        Optional precomputed ``(m, m)`` pairwise distance matrix.  When
        given, the per-subset pairwise distances needed by the
        vertex-snap step are a free gather instead of a batched GEMM.
        Validated once here — the per-chunk gathers skip re-validation.
    sparsity, profile:
        With ``sparsity="auto"``, pattern-duplicate subsets run one
        Weiszfeld solve per pattern (exact for every dtype — the
        representative solves on byte-identical points), and on the
        float32 tier exact-zero columns are elided from the iteration
        tensor (tolerance-safe only: eliding reorders the float64
        reductions, so the bitwise float64 contract forbids it there).

    Returns
    -------
    ``(S, d)`` float64 array, matching the scalar per-subset solve
    within a tolerance of order ``tol`` (the two paths run the same
    iteration but accumulate sums in different orders).
    """
    from repro.linalg.geometric_median import batched_geometric_median

    mat = _as_float_matrix(matrix, "matrix")
    idx = validate_subset_indices(indices, mat.shape[0])
    total, s = idx.shape
    d = mat.shape[1]
    if total == 0:
        return np.empty((total, d), dtype=np.float64)
    if s == 0:
        raise ValueError("subset size must be at least 1 for geometric medians")
    if s == 1:
        return mat[idx[:, 0]].astype(np.float64)
    if dist is not None:
        dist = np.asarray(dist)
        if not np.issubdtype(dist.dtype, np.floating):
            dist = dist.astype(np.float64)
        if dist.shape != (mat.shape[0], mat.shape[0]):
            raise ValueError(
                f"dist must have shape {(mat.shape[0], mat.shape[0])}, "
                f"got {dist.shape}"
            )

    prof = _resolve_profile(resolve_sparsity(sparsity), profile, mat)
    plan = None
    columns = None
    if prof is not None:
        plan = dedup_subsets(idx, prof)
        if plan is not None:
            idx = plan[0]
        if mat.dtype == np.float32 and prof.elidable():
            columns = prof.nonzero_columns
            mat = mat[:, columns]

    reduced_total = idx.shape[0]
    reduced = np.empty((reduced_total, mat.shape[1]), dtype=np.float64)
    chunk = resolve_chunk_size(chunk_size, s * max(s, d), reduced_total)
    for start in range(0, reduced_total, chunk):
        rows = idx[start : start + chunk]
        points = mat[rows]
        pairwise = None
        if dist is not None:
            pairwise = dist[rows[:, :, None], rows[:, None, :]]
        reduced[start : start + chunk] = batched_geometric_median(
            points,
            tol=tol,
            max_iter=max_iter,
            eps=eps,
            pairwise=pairwise,
            validate_pairwise=False,
        )

    if columns is not None:
        out = np.zeros((reduced_total, d), dtype=np.float64)
        out[:, columns] = reduced
    else:
        out = reduced
    if plan is not None:
        out = out[plan[1]]
    return out


# Re-exported for callers that want to pre-compute or inspect structure.
__all__ = [
    "DEFAULT_CHUNK_ELEMENTS",
    "SparsityProfile",
    "dedup_subsets",
    "detect_structure",
    "resolve_chunk_size",
    "resolve_sparsity",
    "subset_diameters",
    "subset_geometric_medians",
    "subset_index_matrix",
    "subset_means",
    "subsets_as_matrix",
    "validate_subset_indices",
]
