"""Enumeration and sampling of ``(n - t)``-subsets.

Several constructions in the paper quantify over every subset of size
``n - t`` of the received vectors:

- ``S_geo`` (Definition 3.1): geometric medians of all such subsets,
- the candidate means ``A_1 ... A_C(m, n-t)`` in the hyperbox algorithm,
- the minimum-diameter subset ``MD`` (Definition 3.4).

For the paper's scale (n = 10, t <= 3) exhaustive enumeration is cheap;
for larger systems the number of subsets explodes, so every consumer can
switch to uniform random subset sampling with a caller-provided budget.

Subset families are materialised as ``(S, s)`` int64 index matrices
(:func:`subset_family`) and the heavy per-subset work — diameters,
means, geometric medians — runs through the batched kernels in
:mod:`repro.linalg.subset_kernels` instead of per-tuple Python loops.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.linalg.subset_kernels import (
    subset_diameters,
    subset_index_matrix,
    subsets_as_matrix,
)
from repro.utils.rng import as_generator
from repro.utils.validation import ensure_matrix

#: Absolute slack under which two subset diameters count as tied in the
#: sequential minimum scan (kept from the original per-tuple search).
_DIAMETER_TIE_TOL = 1e-15


def subset_count(m: int, k: int) -> int:
    """Number of k-subsets of an m-element set (0 when k > m or k < 0)."""
    if k < 0 or k > m:
        return 0
    return comb(m, k)


def enumerate_subsets(m: int, k: int) -> Iterator[Tuple[int, ...]]:
    """Yield every k-subset of ``range(m)`` as a sorted tuple of indices."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k > m:
        return iter(())
    return combinations(range(m), k)


def sample_subsets(
    m: int,
    k: int,
    count: int,
    *,
    rng: Optional[np.random.Generator] = None,
    unique: bool = True,
    max_attempts: Optional[int] = None,
) -> list[Tuple[int, ...]]:
    """Draw ``count`` k-subsets of ``range(m)`` uniformly at random.

    When ``unique`` is true and the requested count reaches the total
    number of subsets, falls back to exhaustive enumeration (so callers
    always get distinct subsets when that is possible).

    The rejection loop runs for at most ``max_attempts`` draws (default
    ``max(64, 16 * count)``).  If it exhausts the budget — which happens
    with non-negligible probability when ``count`` is close to the total
    number of subsets — the remainder is topped up *deterministically*
    from the lexicographic enumeration, so the function always returns
    exactly ``count`` subsets whenever ``count <= C(m, k)``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    total = subset_count(m, k)
    if total == 0:
        return []
    generator = as_generator(rng)
    if unique and count >= total:
        return list(enumerate_subsets(m, k))
    picks: list[Tuple[int, ...]] = []
    seen: set[Tuple[int, ...]] = set()
    attempts = 0
    limit = max(64, 16 * count) if max_attempts is None else int(max_attempts)
    while len(picks) < count and attempts < limit:
        attempts += 1
        idx = tuple(sorted(generator.choice(m, size=k, replace=False).tolist()))
        if unique:
            if idx in seen:
                continue
            seen.add(idx)
        picks.append(idx)
    if len(picks) < count:
        # Deterministic top-up: the rejection loop ran out of attempts
        # (high count/total ratio).  Fill from the lexicographic
        # enumeration so the contract "exactly count subsets when
        # possible" holds regardless of sampler luck.
        for idx in enumerate_subsets(m, k):
            if len(picks) >= count:
                break
            if idx in seen:
                continue
            seen.add(idx)
            picks.append(idx)
    return picks


def subset_family(
    vectors: np.ndarray,
    subset_size: int,
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    include_full_range_extremes: bool = True,
) -> np.ndarray:
    """The ``(S, subset_size)`` index matrix of a subset family.

    Exhaustive (lexicographic) when ``max_subsets`` is ``None`` or at
    least ``C(m, subset_size)``; otherwise ``max_subsets`` uniformly
    sampled subsets, optionally anchored by the two norm-ordered
    prefix/suffix subsets (see :func:`subset_aggregates`).

    This is the canonical representation consumed by the batched kernels
    in :mod:`repro.linalg.subset_kernels` and cached per round by
    :class:`repro.aggregation.context.AggregationContext`.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m = mat.shape[0]
    if subset_size < 1:
        raise ValueError("subset_size must be at least 1")
    if subset_size > m:
        raise ValueError(
            f"subset_size {subset_size} exceeds the number of vectors {m}"
        )
    total = subset_count(m, subset_size)
    use_sampling = max_subsets is not None and max_subsets < total
    if not use_sampling:
        return subset_index_matrix(m, subset_size)
    subsets = sample_subsets(m, subset_size, int(max_subsets), rng=rng)
    if include_full_range_extremes:
        # The proof of Theorem 4.4 relies on the medians of the
        # `subset_size` smallest and largest vectors (per coordinate
        # order); including the norm-ordered prefix/suffix keeps the
        # sampled aggregate cloud anchored.
        order = np.argsort(np.linalg.norm(mat, axis=1))
        prefix = tuple(sorted(order[:subset_size].tolist()))
        suffix = tuple(sorted(order[-subset_size:].tolist()))
        extra = [s for s in (prefix, suffix) if s not in set(subsets)]
        subsets = list(subsets) + extra
    return subsets_as_matrix(subsets, subset_size)


def subset_aggregates(
    vectors: np.ndarray,
    subset_size: int,
    aggregate: Callable[[np.ndarray], np.ndarray],
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    include_full_range_extremes: bool = True,
) -> np.ndarray:
    """Apply ``aggregate`` to every (or a sample of) ``subset_size``-subsets.

    This is the *generic* per-subset evaluation path (arbitrary Python
    callable).  The mean and geometric-median families the aggregation
    rules need are served by the batched kernels
    (:func:`repro.linalg.subset_kernels.subset_means` /
    :func:`~repro.linalg.subset_kernels.subset_geometric_medians`),
    which are orders of magnitude faster at exhaustive subset counts.

    Parameters
    ----------
    vectors:
        ``(m, d)`` stack of received vectors.
    subset_size:
        Size of each subset (``n - t`` in the paper).
    aggregate:
        Function mapping an ``(s, d)`` matrix to a ``(d,)`` vector, e.g.
        the geometric median or the mean.
    max_subsets:
        When given and smaller than the exhaustive count, only this many
        uniformly sampled subsets are evaluated.
    include_full_range_extremes:
        When sampling, always include the two "sorted prefix" and
        "sorted suffix" subsets per coordinate ordering used by the
        hyperbox intersection proof (g_alpha / g_beta in Theorem 4.4),
        which guarantees the sampled hyperbox still intersects the
        trusted hyperbox.  Only applies when sampling is active.

    Returns
    -------
    ``(num_subsets, d)`` array of aggregate vectors.

    .. note:: **Row-count contract.**  ``num_subsets`` equals the
       exhaustive count when sampling is inactive, and otherwise
       ``max_subsets`` plus *up to 2 extra rows* for the anchored
       prefix/suffix subsets when ``include_full_range_extremes`` is
       true (they are appended only when not already sampled).  Callers
       that need a hard cap must pass
       ``include_full_range_extremes=False`` or budget for
       ``max_subsets + 2`` rows.
    """
    mat = ensure_matrix(vectors, name="vectors")
    indices = subset_family(
        mat,
        subset_size,
        max_subsets=max_subsets,
        rng=rng,
        include_full_range_extremes=include_full_range_extremes,
    )
    out = np.empty((indices.shape[0], mat.shape[1]), dtype=np.float64)
    for row in range(indices.shape[0]):
        out[row] = np.asarray(
            aggregate(mat[indices[row]]), dtype=np.float64
        ).reshape(-1)
    return out


def _candidate_indices(
    dist: np.ndarray,
    m: int,
    subset_size: int,
    max_subsets: Optional[int],
    rng: Optional[np.random.Generator],
) -> np.ndarray:
    """Candidate index matrix for the minimum-diameter search."""
    total = subset_count(m, subset_size)
    if max_subsets is not None and max_subsets < total:
        candidates = sample_subsets(m, subset_size, int(max_subsets), rng=rng)
        # Greedy candidates anchored at each point: take its subset_size-1
        # nearest neighbours.  These are usually close to optimal.
        for anchor in range(m):
            neighbours = np.argsort(dist[anchor])[:subset_size]
            candidates.append(tuple(sorted(neighbours.tolist())))
        return subsets_as_matrix(candidates, subset_size)
    return subset_index_matrix(m, subset_size)


def _resolve_distances(
    mat: np.ndarray, dist: Optional[np.ndarray]
) -> np.ndarray:
    """Validate a caller-supplied distance matrix or compute one."""
    from repro.linalg.distances import resolve_pairwise_matrix

    return resolve_pairwise_matrix(mat, dist)


def select_minimum_diameter(
    indices: np.ndarray, diameters: np.ndarray
) -> Tuple[Tuple[int, ...], float]:
    """Sequential minimum scan over precomputed subset diameters.

    Replicates the original per-tuple search exactly: a candidate
    replaces the running best when it is more than ``1e-15`` smaller, or
    when it ties within ``1e-15`` and its index tuple is
    lexicographically smaller.  The scan itself is O(S) cheap Python
    over a float list — the expensive part (the diameters) is batched.
    """
    if indices.shape[0] == 0:
        raise ValueError("candidate family must be non-empty")
    diams: List[float] = np.asarray(diameters, dtype=np.float64).tolist()
    best_row = 0
    best_diam = diams[0]
    for row in range(1, len(diams)):
        diam = diams[row]
        if diam < best_diam - _DIAMETER_TIE_TOL:
            best_diam = diam
            best_row = row
        elif abs(diam - best_diam) <= _DIAMETER_TIE_TOL and tuple(
            indices[row].tolist()
        ) < tuple(indices[best_row].tolist()):
            best_diam = diam
            best_row = row
    return tuple(int(i) for i in indices[best_row]), float(best_diam)


def select_minimum_diameter_ties(
    indices: np.ndarray,
    diameters: np.ndarray,
    *,
    tolerance: float = 1e-12,
) -> Tuple[list[Tuple[int, ...]], float]:
    """All subsets whose diameter ties the minimum within ``tolerance``."""
    if indices.shape[0] == 0:
        raise ValueError("candidate family must be non-empty")
    diams = np.asarray(diameters, dtype=np.float64)
    best = float(diams.min())
    slack = tolerance * max(1.0, best)
    rows = np.flatnonzero(diams <= best + slack)
    tied = sorted({tuple(int(i) for i in indices[r]) for r in rows})
    return tied, best


def minimum_diameter_subset(
    vectors: np.ndarray,
    subset_size: int,
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    dist: Optional[np.ndarray] = None,
    chunk_size: Optional[int] = None,
) -> Tuple[Tuple[int, ...], float]:
    """Indices of a ``subset_size``-subset with minimum diameter (Def. 3.4).

    Returns the (sorted) index tuple and its diameter.  Exhaustive by
    default; a greedy seeded sampling mode is used when ``max_subsets``
    caps the search.  Ties are broken by the lexicographically smallest
    index tuple, which makes the choice deterministic.  ``dist``
    optionally supplies the precomputed pairwise distance matrix.

    All candidate diameters are computed in one chunked gather over the
    distance matrix (:func:`repro.linalg.subset_kernels.subset_diameters`);
    ``chunk_size`` bounds the gather temporary.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m = mat.shape[0]
    if subset_size < 1 or subset_size > m:
        raise ValueError(
            f"subset_size must be in [1, {m}], got {subset_size}"
        )
    dist = _resolve_distances(mat, dist)
    indices = _candidate_indices(dist, m, subset_size, max_subsets, rng)
    diams = subset_diameters(dist, indices, chunk_size=chunk_size)
    return select_minimum_diameter(indices, diams)


def minimum_diameter_subsets(
    vectors: np.ndarray,
    subset_size: int,
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    tolerance: float = 1e-12,
    dist: Optional[np.ndarray] = None,
    chunk_size: Optional[int] = None,
) -> Tuple[list[Tuple[int, ...]], float]:
    """*All* minimum-diameter ``subset_size``-subsets (within ``tolerance``).

    The minimum-diameter set of Definition 3.4 is generally not unique;
    Lemma 4.2's non-convergence argument relies on an adversarial choice
    among the tied subsets.  This variant returns every subset whose
    diameter is within ``tolerance`` (relative to the spread) of the
    minimum, so callers can implement worst-case tie-breaking.  ``dist``
    optionally supplies the precomputed pairwise distance matrix.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m = mat.shape[0]
    if subset_size < 1 or subset_size > m:
        raise ValueError(f"subset_size must be in [1, {m}], got {subset_size}")
    dist = _resolve_distances(mat, dist)
    indices = _candidate_indices(dist, m, subset_size, max_subsets, rng)
    diams = subset_diameters(dist, indices, chunk_size=chunk_size)
    return select_minimum_diameter_ties(indices, diams, tolerance=tolerance)
