"""Enumeration and sampling of ``(n - t)``-subsets.

Several constructions in the paper quantify over every subset of size
``n - t`` of the received vectors:

- ``S_geo`` (Definition 3.1): geometric medians of all such subsets,
- the candidate means ``A_1 ... A_C(m, n-t)`` in the hyperbox algorithm,
- the minimum-diameter subset ``MD`` (Definition 3.4).

For the paper's scale (n = 10, t <= 3) exhaustive enumeration is cheap;
for larger systems the number of subsets explodes, so every consumer can
switch to uniform random subset sampling with a caller-provided budget.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Callable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import ensure_matrix


def subset_count(m: int, k: int) -> int:
    """Number of k-subsets of an m-element set (0 when k > m or k < 0)."""
    if k < 0 or k > m:
        return 0
    return comb(m, k)


def enumerate_subsets(m: int, k: int) -> Iterator[Tuple[int, ...]]:
    """Yield every k-subset of ``range(m)`` as a sorted tuple of indices."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k > m:
        return iter(())
    return combinations(range(m), k)


def sample_subsets(
    m: int,
    k: int,
    count: int,
    *,
    rng: Optional[np.random.Generator] = None,
    unique: bool = True,
) -> list[Tuple[int, ...]]:
    """Draw ``count`` k-subsets of ``range(m)`` uniformly at random.

    When ``unique`` is true and the requested count reaches the total
    number of subsets, falls back to exhaustive enumeration (so callers
    always get distinct subsets when that is possible).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    total = subset_count(m, k)
    if total == 0:
        return []
    generator = as_generator(rng)
    if unique and count >= total:
        return list(enumerate_subsets(m, k))
    picks: list[Tuple[int, ...]] = []
    seen: set[Tuple[int, ...]] = set()
    attempts = 0
    max_attempts = max(64, 16 * count)
    while len(picks) < count and attempts < max_attempts:
        attempts += 1
        idx = tuple(sorted(generator.choice(m, size=k, replace=False).tolist()))
        if unique:
            if idx in seen:
                continue
            seen.add(idx)
        picks.append(idx)
    return picks


def subset_aggregates(
    vectors: np.ndarray,
    subset_size: int,
    aggregate: Callable[[np.ndarray], np.ndarray],
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    include_full_range_extremes: bool = True,
) -> np.ndarray:
    """Apply ``aggregate`` to every (or a sample of) ``subset_size``-subsets.

    Parameters
    ----------
    vectors:
        ``(m, d)`` stack of received vectors.
    subset_size:
        Size of each subset (``n - t`` in the paper).
    aggregate:
        Function mapping an ``(s, d)`` matrix to a ``(d,)`` vector, e.g.
        the geometric median or the mean.
    max_subsets:
        When given and smaller than the exhaustive count, only this many
        uniformly sampled subsets are evaluated.
    include_full_range_extremes:
        When sampling, always include the two "sorted prefix" and
        "sorted suffix" subsets per coordinate ordering used by the
        hyperbox intersection proof (g_alpha / g_beta in Theorem 4.4),
        which guarantees the sampled hyperbox still intersects the
        trusted hyperbox.  Only applies when sampling is active.

    Returns
    -------
    ``(num_subsets, d)`` array of aggregate vectors.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m = mat.shape[0]
    if subset_size < 1:
        raise ValueError("subset_size must be at least 1")
    if subset_size > m:
        raise ValueError(
            f"subset_size {subset_size} exceeds the number of vectors {m}"
        )
    total = subset_count(m, subset_size)
    use_sampling = max_subsets is not None and max_subsets < total
    if not use_sampling:
        subsets: Sequence[Tuple[int, ...]] = list(enumerate_subsets(m, subset_size))
    else:
        subsets = sample_subsets(m, subset_size, int(max_subsets), rng=rng)
        if include_full_range_extremes:
            # The proof of Theorem 4.4 relies on the medians of the
            # `subset_size` smallest and largest vectors (per coordinate
            # order); including the norm-ordered prefix/suffix keeps the
            # sampled aggregate cloud anchored.
            order = np.argsort(np.linalg.norm(mat, axis=1))
            prefix = tuple(sorted(order[:subset_size].tolist()))
            suffix = tuple(sorted(order[-subset_size:].tolist()))
            extra = [s for s in (prefix, suffix) if s not in set(subsets)]
            subsets = list(subsets) + extra
    out = np.empty((len(subsets), mat.shape[1]), dtype=np.float64)
    for row, idx in enumerate(subsets):
        out[row] = np.asarray(aggregate(mat[list(idx)]), dtype=np.float64).reshape(-1)
    return out


def _candidate_subsets(
    dist: np.ndarray,
    m: int,
    subset_size: int,
    max_subsets: Optional[int],
    rng: Optional[np.random.Generator],
) -> list[Tuple[int, ...]]:
    total = subset_count(m, subset_size)
    if max_subsets is not None and max_subsets < total:
        candidates = sample_subsets(m, subset_size, int(max_subsets), rng=rng)
        # Greedy candidates anchored at each point: take its subset_size-1
        # nearest neighbours.  These are usually close to optimal.
        for anchor in range(m):
            neighbours = np.argsort(dist[anchor])[:subset_size]
            candidates.append(tuple(sorted(neighbours.tolist())))
        return candidates
    return list(enumerate_subsets(m, subset_size))


def _resolve_distances(
    mat: np.ndarray, dist: Optional[np.ndarray]
) -> np.ndarray:
    """Validate a caller-supplied distance matrix or compute one."""
    from repro.linalg.distances import resolve_pairwise_matrix

    return resolve_pairwise_matrix(mat, dist)


def minimum_diameter_subset(
    vectors: np.ndarray,
    subset_size: int,
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    dist: Optional[np.ndarray] = None,
) -> Tuple[Tuple[int, ...], float]:
    """Indices of a ``subset_size``-subset with minimum diameter (Def. 3.4).

    Returns the (sorted) index tuple and its diameter.  Exhaustive by
    default; a greedy seeded sampling mode is used when ``max_subsets``
    caps the search.  Ties are broken by the lexicographically smallest
    index tuple, which makes the choice deterministic.  ``dist``
    optionally supplies the precomputed pairwise distance matrix.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m = mat.shape[0]
    if subset_size < 1 or subset_size > m:
        raise ValueError(
            f"subset_size must be in [1, {m}], got {subset_size}"
        )
    dist = _resolve_distances(mat, dist)
    candidates = _candidate_subsets(dist, m, subset_size, max_subsets, rng)

    best_idx: Optional[Tuple[int, ...]] = None
    best_diam = np.inf
    for idx in candidates:
        rows = list(idx)
        sub = dist[np.ix_(rows, rows)]
        diam = float(sub.max())
        if diam < best_diam - 1e-15 or (
            abs(diam - best_diam) <= 1e-15 and (best_idx is None or idx < best_idx)
        ):
            best_diam = diam
            best_idx = tuple(idx)
    assert best_idx is not None
    return best_idx, best_diam


def minimum_diameter_subsets(
    vectors: np.ndarray,
    subset_size: int,
    *,
    max_subsets: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    tolerance: float = 1e-12,
    dist: Optional[np.ndarray] = None,
) -> Tuple[list[Tuple[int, ...]], float]:
    """*All* minimum-diameter ``subset_size``-subsets (within ``tolerance``).

    The minimum-diameter set of Definition 3.4 is generally not unique;
    Lemma 4.2's non-convergence argument relies on an adversarial choice
    among the tied subsets.  This variant returns every subset whose
    diameter is within ``tolerance`` (relative to the spread) of the
    minimum, so callers can implement worst-case tie-breaking.  ``dist``
    optionally supplies the precomputed pairwise distance matrix.
    """
    mat = ensure_matrix(vectors, name="vectors")
    m = mat.shape[0]
    if subset_size < 1 or subset_size > m:
        raise ValueError(f"subset_size must be in [1, {m}], got {subset_size}")
    dist = _resolve_distances(mat, dist)
    candidates = _candidate_subsets(dist, m, subset_size, max_subsets, rng)
    diameters = []
    for idx in candidates:
        rows = list(idx)
        diameters.append(float(dist[np.ix_(rows, rows)].max()))
    best = min(diameters)
    slack = tolerance * max(1.0, best)
    tied = [idx for idx, diam in zip(candidates, diameters) if diam <= best + slack]
    return sorted(set(tied)), best
