"""Synchronous peer-to-peer network simulation.

The paper assumes (Section 2.3):

- reliable broadcast: if two non-faulty nodes deliver a message from the
  same sender in the same round, the delivered contents are identical
  (a Byzantine sender cannot equivocate), and
- synchronous rounds: every message sent in round ``r`` is delivered
  before round ``r + 1`` starts, though a Byzantine sender may *omit*
  its message towards any subset of receivers (this is exactly the power
  the adversary uses in the Lemma 4.2 non-convergence construction).

This package simulates those assumptions so agreement algorithms and the
decentralized learning loop run against the same adversary model the
theory analyses.
"""

from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan, ReliableBroadcast
from repro.network.synchronous import RoundResult, SynchronousNetwork
from repro.network.topology import complete_topology, validate_topology

__all__ = [
    "BroadcastPlan",
    "Message",
    "ReliableBroadcast",
    "RoundResult",
    "SynchronousNetwork",
    "complete_topology",
    "validate_topology",
]
