"""Synchronous peer-to-peer network simulation.

The paper assumes (Section 2.3):

- reliable broadcast: if two non-faulty nodes deliver a message from the
  same sender in the same round, the delivered contents are identical
  (a Byzantine sender cannot equivocate), and
- synchronous rounds: every message sent in round ``r`` is delivered
  before round ``r + 1`` starts, though a Byzantine sender may *omit*
  its message towards any subset of receivers (this is exactly the power
  the adversary uses in the Lemma 4.2 non-convergence construction).

This package simulates those assumptions so agreement algorithms and the
decentralized learning loop run against the same adversary model the
theory analyses.

The synchronous-rounds assumption is no longer baked in: this package
owns message *delivery* (plans, reliable-broadcast validation, quorum,
:class:`RoundResult`), while :mod:`repro.engine` owns the *timing*
models built on top of it (lock-step, partially synchronous, lossy) —
see ``docs/architecture.md`` for the layer map.  An empty inbox raises
:class:`EmptyInboxError` so lossy-scheduler consumers can tell "the
network dropped everything" apart from malformed input.
"""

from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan, ReliableBroadcast
from repro.network.delivery import (
    EmptyInboxError,
    RoundResult,
    collect_plans,
    enforce_quorum,
    full_broadcast_plan,
)
from repro.network.topology import (
    TOPOLOGY_NAMES,
    Topology,
    complete_topology,
    make_topology,
    resolve_topology_name,
    validate_topology,
)

__all__ = [
    "BroadcastPlan",
    "EmptyInboxError",
    "Message",
    "ReliableBroadcast",
    "RoundResult",
    "SynchronousNetwork",
    "TOPOLOGY_NAMES",
    "Topology",
    "collect_plans",
    "complete_topology",
    "enforce_quorum",
    "full_broadcast_plan",
    "make_topology",
    "resolve_topology_name",
    "validate_topology",
]


def __getattr__(name: str):
    # Imported lazily (PEP 562): ``network.synchronous`` re-layers the
    # historical ``SynchronousNetwork`` on ``repro.engine``, whose base
    # classes import this package's delivery core — resolving the name
    # on first access instead of at package init breaks that cycle.
    if name == "SynchronousNetwork":
        from repro.network.synchronous import SynchronousNetwork

        return SynchronousNetwork
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
