"""Array-backed batch message plane.

The object plane materialises one :class:`~repro.network.message.Message`
per delivered (sender, receiver) link — per-message validation, payload
copies and list churn dominate simulation cost long before the linear
algebra does, capping the practical node axis in the low hundreds.  The
batch plane replaces that with one dense representation per round:

- :class:`RoundBatch` — the round's ``(S, d)`` payload matrix (one row
  per speaking sender, sender-ascending), the ``(S,)`` sender ids, the
  optional ``(S, n)`` boolean delivery mask (``None`` means every sender
  broadcasts to all), and per-row metadata / adversarial delay maps.
- :class:`BatchInbox` — a receiver's view into one or more batches: a
  :class:`~collections.abc.Sequence` of messages that stores only
  ``(batch, row)`` index pairs and materialises ``Message`` objects
  lazily (the thin compatibility view), while
  :meth:`BatchInbox.matrix` gathers the received ``(m, d)`` stack with
  one fancy-index per batch — zero-copy when a receiver delivered an
  entire batch in order.

Sparse-structure transport rides along: a batch computes its
:class:`~repro.linalg.sparsity.SparsityProfile` once (lazily) and
single-batch inboxes hand consumers a *projection* of it instead of
letting every receiver re-run ``detect_structure`` on its own gather —
see :func:`repro.linalg.sparsity.project_profile`.  The projected
profile is exactly what self-detection would claim for duplicate rows
(byte-equality is preserved by row gathering) and the zero-column mask
is recomputed exactly on the consumer's matrix, so kernel results are
bitwise-unchanged in every precision tier.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.message import Message

#: Message-plane names accepted by the engines: "batch" (default, the
#: vectorized plane) and "object" (the per-message reference plane the
#: pinned fixtures were generated on).
MESSAGE_PLANES = ("batch", "object")


def resolve_message_plane(plane: "str | None") -> str:
    """Validate a message-plane name (``None`` means ``"batch"``)."""
    if plane is None:
        return "batch"
    key = str(plane).strip().lower()
    if key not in MESSAGE_PLANES:
        raise ValueError(
            f"unknown message plane {plane!r}; supported: {MESSAGE_PLANES}"
        )
    return key


class TransportMatrix(np.ndarray):
    """A received ``(m, d)`` stack carrying transported structure metadata.

    Consumers that understand the transport
    (:class:`repro.aggregation.context.AggregationContext`) read
    ``_profile_provider`` — a callable mapping the validated matrix to a
    :class:`~repro.linalg.sparsity.SparsityProfile` (or ``None``) —
    before validation strips the subclass; everyone else sees a plain
    ndarray.  Views and ufunc results deliberately drop the provider
    (``__array_finalize__``): a profile describes one exact matrix, not
    anything derived from it.
    """

    _profile_provider: Optional[Callable[[np.ndarray], object]] = None

    def __array_finalize__(self, obj) -> None:
        self._profile_provider = None


def _as_transport(matrix: np.ndarray, provider) -> np.ndarray:
    view = matrix.view(TransportMatrix)
    view._profile_provider = provider
    return view


class RoundBatch:
    """One round's broadcast traffic in array form.

    Attributes
    ----------
    round_index:
        The send round of every row.
    n:
        Number of nodes in the engine (width of the delivery mask).
    senders:
        ``(S,)`` int64, strictly ascending — the speaking senders.
    payloads:
        ``(S, d)`` float64, C-contiguous, read-only.  Row ``i`` is the
        payload of ``senders[i]``; message views alias these rows.
    delivers:
        ``(S, n)`` bool mask (``delivers[i, r]`` — does receiver ``r``
        deliver row ``i``), or ``None`` when every row broadcasts to all
        (the honest common case, kept implicit so full broadcasts cost
        no mask at all).
    metadata:
        Per-row plan metadata mappings (copied into each materialised
        ``Message``).
    delays:
        Per-row adversarial delay maps (``None`` for rows without one).
    """

    __slots__ = (
        "round_index", "n", "senders", "payloads", "delivers",
        "metadata", "delays", "_profile",
    )

    def __init__(
        self,
        round_index: int,
        n: int,
        senders: np.ndarray,
        payloads: np.ndarray,
        delivers: Optional[np.ndarray],
        metadata: Tuple[dict, ...],
        delays: Tuple[Optional[Dict[int, int]], ...],
    ) -> None:
        self.round_index = int(round_index)
        self.n = int(n)
        self.senders = senders
        self.payloads = payloads
        self.delivers = delivers
        self.metadata = metadata
        self.delays = delays
        self._profile = None

    @property
    def num_senders(self) -> int:
        return int(self.senders.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.payloads.shape[1])

    @property
    def profile(self):
        """Bit-level structure of the payload matrix (computed once).

        Receivers project this through their row selection instead of
        re-detecting structure per inbox — the transported analogue of
        :attr:`repro.aggregation.context.AggregationContext.profile`.
        """
        if self._profile is None:
            from repro.linalg.sparsity import detect_structure

            self._profile = detect_structure(self.payloads)
        return self._profile

    def delivers_mask(self) -> np.ndarray:
        """The ``(S, n)`` delivery mask, materialised if implicit."""
        if self.delivers is not None:
            return self.delivers
        return np.ones((self.num_senders, self.n), dtype=bool)

    def full_rows(self) -> np.ndarray:
        """Row index array selecting the whole batch (cached arange)."""
        return np.arange(self.num_senders, dtype=np.int64)

    def restrict(self, mask: np.ndarray) -> None:
        """Intersect delivery with an ``(n, n)`` link mask in place.

        ``mask[s, r]`` gates whether sender ``s`` can reach receiver
        ``r`` at all — this is how a sparse :class:`~repro.network.
        topology.Topology` composes with the schedulers' own drop /
        crash / delay masks: the topology cut happens once here, before
        any scheduler looks at :attr:`delivers`.  A full-broadcast batch
        (``delivers is None``) materialises its mask from the topology
        rows; an already-restricted batch intersects in place.
        """
        selected = mask[self.senders]  # fancy index -> fresh (S, n) array
        if self.delivers is None:
            self.delivers = selected
        else:
            self.delivers &= selected

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoundBatch(round={self.round_index}, senders={self.num_senders}, "
            f"d={self.dimension}, masked={self.delivers is not None})"
        )


def build_round_batch(
    by_sender: Dict[int, object], round_index: int, n: int
) -> Optional[RoundBatch]:
    """Materialise one :class:`RoundBatch` from validated plans.

    ``by_sender`` maps sender id to its (already validated)
    :class:`~repro.network.reliable_broadcast.BroadcastPlan`; silent
    plans (``payload is None``) contribute no row.  Returns ``None``
    when no sender speaks.  Unlike the object plane — where a dimension
    mismatch only surfaced when a receiver stacked its inbox — the batch
    build checks all payloads share one dimension up front.
    """
    speaking = [s for s in sorted(by_sender) if by_sender[s].payload is not None]
    if not speaking:
        return None
    first = by_sender[speaking[0]].payload
    d = int(first.shape[0])
    payloads = np.empty((len(speaking), d), dtype=np.float64)
    metadata: List[dict] = []
    delays: List[Optional[Dict[int, int]]] = []
    delivers: Optional[np.ndarray] = None
    for i, sender in enumerate(speaking):
        plan = by_sender[sender]
        payload = plan.payload
        if payload.shape[0] != d:
            raise ValueError(
                f"payload dimension mismatch in round {round_index}: sender "
                f"{speaking[0]} sent d={d}, sender {sender} sent d={payload.shape[0]}"
            )
        payloads[i] = payload
        metadata.append(plan.metadata)
        delays.append(plan.delays)
        if plan.recipients is not None and delivers is None:
            delivers = np.zeros((len(speaking), n), dtype=bool)
            delivers[:i] = True  # earlier rows were full broadcasts
        if delivers is not None:
            if plan.recipients is None:
                delivers[i] = True
            else:
                delivers[i, list(plan.recipients)] = True
    payloads.setflags(write=False)
    return RoundBatch(
        round_index=round_index,
        n=n,
        senders=np.asarray(speaking, dtype=np.int64),
        payloads=payloads,
        delivers=delivers,
        metadata=tuple(metadata),
        delays=tuple(delays),
    )


class BatchInbox(Sequence):
    """One receiver's delivered messages, stored as batch references.

    Sequence-compatible with the object plane's ``List[Message]``:
    ``len`` / indexing / iteration materialise frozen ``Message``
    objects lazily through the trusted zero-copy payload path (each
    payload is a read-only row view into its batch matrix).  Consumers
    on the hot path call :meth:`matrix` instead, which never builds a
    message at all.
    """

    __slots__ = ("_batches", "_bids", "_rows", "_cache")

    def __init__(
        self,
        batches: Tuple[RoundBatch, ...],
        rows: np.ndarray,
        bids: Optional[np.ndarray] = None,
    ) -> None:
        self._batches = batches
        self._rows = rows
        self._bids = bids  # None: every row references batches[0]
        self._cache: Optional[List[Optional[Message]]] = None

    @classmethod
    def empty(cls) -> "BatchInbox":
        return cls((), np.empty(0, dtype=np.int64))

    @classmethod
    def single(cls, batch: RoundBatch, rows: np.ndarray) -> "BatchInbox":
        return cls((batch,), rows)

    def __len__(self) -> int:
        return int(self._rows.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        if self._cache is None:
            self._cache = [None] * len(self)
        message = self._cache[index]
        if message is None:
            batch = self._batches[0 if self._bids is None else int(self._bids[index])]
            row = int(self._rows[index])
            message = Message(
                sender=int(batch.senders[row]),
                round_index=batch.round_index,
                payload=batch.payloads[row],
                metadata=dict(batch.metadata[row]),
            )
            self._cache[index] = message
        return message

    def senders(self) -> List[int]:
        """Sender ids in delivery order (no message materialisation)."""
        if self._bids is None:
            if not self._batches:
                return []
            return self._batches[0].senders[self._rows].tolist()
        return [
            int(self._batches[int(b)].senders[int(r)])
            for b, r in zip(self._bids, self._rows)
        ]

    def matrix(self) -> np.ndarray:
        """The received ``(m, d)`` payload stack in delivery order.

        Values are bitwise-identical to stacking the materialised
        message payloads.  Single-batch inboxes return a
        :class:`TransportMatrix` whose profile provider projects the
        batch's structure profile (zero-copy — the shared read-only
        payload matrix itself — when the whole batch was delivered in
        order); multi-batch inboxes (cross-round stragglers) gather per
        batch and fall back to consumer-side detection.
        """
        if len(self) == 0:
            raise ValueError("cannot build a matrix from an empty inbox")
        if self._bids is None:
            batch, rows = self._batches[0], self._rows
            if rows.shape[0] == batch.num_senders and int(rows[0]) == 0 and (
                np.array_equal(rows, batch.full_rows())
            ):
                return _as_transport(batch.payloads, _profile_projector(batch, None))
            gathered = batch.payloads[rows]
            return _as_transport(gathered, _profile_projector(batch, rows))
        out = np.empty((len(self), self._batches[0].dimension), dtype=np.float64)
        for bid, batch in enumerate(self._batches):
            mask = self._bids == bid
            if mask.any():
                out[mask] = batch.payloads[self._rows[mask]]
        return out


def _profile_projector(batch: RoundBatch, rows: Optional[np.ndarray]):
    """Provider closure handed to consumers via :class:`TransportMatrix`."""
    def provider(matrix: np.ndarray):
        from repro.linalg.sparsity import project_profile

        expected = batch.num_senders if rows is None else int(rows.shape[0])
        if matrix.shape != (expected, batch.dimension):
            return None  # not the matrix this profile describes
        return project_profile(
            batch.profile,
            batch.full_rows() if rows is None else rows,
            matrix,
        )

    return provider
