"""Shared delivery core of the round schedulers.

Every scheduler in :mod:`repro.engine` executes the same three steps per
round — collect one :class:`BroadcastPlan` per node, let reliable
broadcast materialise messages, enforce the quorum policy — and only
differs in *when* each (sender, receiver) link delivers.  This module
holds the scheduler-independent pieces, refactored out of the original
``SynchronousNetwork.run_round``:

- :class:`RoundResult` — the per-round delivery outcome handed to the
  consumers (agreement algorithms, trainers),
- :class:`EmptyInboxError` — raised when a node's inbox is empty, so
  lossy-scheduler callers can distinguish "the network dropped
  everything" from malformed input,
- :func:`collect_plans` — gathers and validates the honest and
  adversarial broadcast plans of one round (the adversary is rushing:
  it observes the honest payloads before choosing its own),
- :func:`enforce_quorum` — the ``m_i >= n - t`` delivery check, either
  raising or reporting the starved nodes depending on policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.network.batch import BatchInbox
from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan

HonestPlanFn = Callable[[int, int], BroadcastPlan]
AdversaryPlanFn = Callable[[int, int, Dict[int, np.ndarray]], BroadcastPlan]


class EmptyInboxError(ValueError):
    """A node delivered no messages in a round.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the generic error keep working; lossy-scheduler consumers catch this
    type specifically to treat "dropped everything" as a stall rather
    than bad input.
    """


@dataclass
class RoundResult:
    """Delivery outcome of one scheduled round.

    Attributes
    ----------
    round_index:
        The round the result belongs to.
    inboxes:
        Receiver id -> delivered messages, ordered deterministically
        (arrival round, then sender id).
    starved:
        Honest nodes that delivered fewer messages than the required
        quorum this round.  Only populated under the ``"starve"`` quorum
        policy; the ``"raise"`` policy aborts the round instead.
    """

    round_index: int
    inboxes: Dict[int, List[Message]] = field(default_factory=dict)
    starved: Tuple[int, ...] = ()

    def received_matrix(self, node: int) -> np.ndarray:
        """Stack of payloads node ``node`` delivered this round, ``(m, d)``.

        On the batch message plane this is a single vectorized gather
        (zero-copy when the node delivered a whole batch in order) that
        also carries the batch's transported sparsity profile; values are
        bitwise-identical to stacking the materialised messages.
        """
        messages = self.inboxes.get(node, [])
        if not len(messages):
            raise EmptyInboxError(
                f"node {node} received no messages in round {self.round_index}"
            )
        if isinstance(messages, BatchInbox):
            return messages.matrix()
        return np.stack([msg.payload for msg in messages], axis=0)

    def senders(self, node: int) -> List[int]:
        """Sender ids of the messages node ``node`` delivered this round."""
        messages = self.inboxes.get(node, [])
        if isinstance(messages, BatchInbox):
            return messages.senders()
        return [msg.sender for msg in messages]


def full_broadcast_plan(
    node: int, payload: np.ndarray, metadata: Optional[dict] = None
) -> BroadcastPlan:
    """Convenience constructor for the plan an honest node always uses."""
    return BroadcastPlan(
        sender=node, payload=np.asarray(payload, dtype=np.float64), recipients=None,
        metadata=metadata or {},
    )


def collect_plans(
    honest: Iterable[int],
    byzantine: Iterable[int],
    round_index: int,
    honest_plan: HonestPlanFn,
    adversary_plan: Optional[AdversaryPlanFn] = None,
) -> List[BroadcastPlan]:
    """Gather and validate one round's broadcast plans.

    ``honest_plan(node, round)`` must return a full-broadcast plan for
    every honest node.  ``adversary_plan(node, round, honest_values)``
    is called for every Byzantine node with a read-only view of the
    honest payloads of this round (Byzantine nodes are rushing: they
    may inspect honest messages before choosing their own).  A ``None``
    adversary means Byzantine nodes stay silent (crash).
    """
    plans: List[BroadcastPlan] = []
    honest_values: Dict[int, np.ndarray] = {}
    for node in honest:
        plan = honest_plan(node, round_index)
        if plan.sender != node:
            raise ValueError(
                f"honest plan for node {node} reports sender {plan.sender}"
            )
        if plan.payload is None:
            raise ValueError(f"honest node {node} must broadcast a payload")
        plans.append(plan)
        honest_values[node] = np.asarray(plan.payload, dtype=np.float64)

    if adversary_plan is not None:
        for node in sorted(byzantine):
            plan = adversary_plan(node, round_index, dict(honest_values))
            if plan.sender != node:
                raise ValueError(
                    f"adversary plan for node {node} reports sender {plan.sender}"
                )
            plans.append(plan)
    return plans


def enforce_quorum(
    inboxes: Dict[int, List[Message]],
    honest: Iterable[int],
    quorum: int,
    round_index: int,
    *,
    policy: str = "raise",
) -> Tuple[int, ...]:
    """Apply the per-round delivery quorum.

    With ``policy="raise"`` (the synchronous default) any honest node
    below ``quorum`` aborts the round with :class:`RuntimeError` — under
    a synchronous scheduler that can only mean a protocol violation.
    With ``policy="starve"`` the under-supplied nodes are returned so the
    caller can stall them for a round (the natural reading under lossy /
    partially synchronous delivery, where missing messages are the
    scheduler's doing, not the protocol's).
    """
    if policy not in ("raise", "starve"):
        raise ValueError(f"unknown quorum policy {policy!r}")
    if quorum <= 0:
        return ()
    starved = tuple(
        node for node in honest if len(inboxes.get(node, [])) < quorum
    )
    if starved and policy == "raise":
        node = starved[0]
        got = len(inboxes.get(node, []))
        raise RuntimeError(
            f"honest node {node} delivered only {got} messages in round "
            f"{round_index}, quorum is {quorum}"
        )
    return starved
