"""Message value object exchanged by simulated nodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Message:
    """A single payload sent from ``sender`` in a given round.

    Attributes
    ----------
    sender:
        Index of the sending node.
    round_index:
        Synchronous round in which the message was broadcast.
    payload:
        The vector being shared.  Stored as an immutable (non-writeable)
        float64 array so a Byzantine "sender" cannot mutate a message
        after reliable broadcast accepted it.
    metadata:
        Optional free-form annotations (attack name, iteration id, ...).
        Used only for diagnostics, never by the algorithms themselves.
    """

    sender: int
    round_index: int
    payload: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.sender < 0:
            raise ValueError(f"sender must be non-negative, got {self.sender}")
        if self.round_index < 0:
            raise ValueError(f"round_index must be non-negative, got {self.round_index}")
        payload = np.array(self.payload, dtype=np.float64, copy=True).reshape(-1)
        if payload.size == 0:
            raise ValueError("payload must be non-empty")
        payload.setflags(write=False)
        object.__setattr__(self, "payload", payload)

    @property
    def dimension(self) -> int:
        """Dimension of the payload vector."""
        return int(self.payload.shape[0])

    def with_payload(self, payload: np.ndarray) -> "Message":
        """Copy of this message carrying a different payload."""
        return Message(
            sender=self.sender,
            round_index=self.round_index,
            payload=np.asarray(payload, dtype=np.float64),
            metadata=dict(self.metadata),
        )
