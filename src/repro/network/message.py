"""Message value object exchanged by simulated nodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Message:
    """A single payload sent from ``sender`` in a given round.

    Attributes
    ----------
    sender:
        Index of the sending node.
    round_index:
        Synchronous round in which the message was broadcast.
    payload:
        The vector being shared.  Stored as an immutable (non-writeable)
        float64 array so a Byzantine "sender" cannot mutate a message
        after reliable broadcast accepted it.
    metadata:
        Optional free-form annotations (attack name, iteration id, ...).
        Used only for diagnostics, never by the algorithms themselves.
    """

    sender: int
    round_index: int
    payload: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.sender < 0:
            raise ValueError(f"sender must be non-negative, got {self.sender}")
        if self.round_index < 0:
            raise ValueError(f"round_index must be non-negative, got {self.round_index}")
        payload = self.payload
        if _is_trusted_payload(payload):
            # Already-validated immutable view (a batch-plane payload
            # row, or a payload lifted from another Message): adopting
            # it without the defensive copy cannot weaken mutation
            # protection, because neither the view nor anything it
            # aliases is writeable.
            if payload.size == 0:
                raise ValueError("payload must be non-empty")
            return
        payload = np.array(payload, dtype=np.float64, copy=True).reshape(-1)
        if payload.size == 0:
            raise ValueError("payload must be non-empty")
        payload.setflags(write=False)
        object.__setattr__(self, "payload", payload)

    @property
    def dimension(self) -> int:
        """Dimension of the payload vector."""
        return int(self.payload.shape[0])

    def with_payload(self, payload: np.ndarray) -> "Message":
        """Copy of this message carrying a different payload.

        The payload is handed to the constructor as-is: a trusted
        (already immutable) array is adopted without a second
        copy/validate cycle, anything else goes through the usual
        defensive copy exactly once.
        """
        return Message(
            sender=self.sender,
            round_index=self.round_index,
            payload=payload,
            metadata=dict(self.metadata),
        )


def _is_trusted_payload(payload: object) -> bool:
    """Whether a payload can be adopted without the defensive copy.

    Trusted means: a 1-D C-contiguous float64 ndarray that is
    non-writeable all the way down its base chain, so no caller holds a
    writeable alias of the underlying buffer.  A read-only view of a
    *writeable* array is not trusted — the owner could still mutate the
    message through its own reference.
    """
    if (
        type(payload) is not np.ndarray
        or payload.dtype != np.float64
        or payload.ndim != 1
        or not payload.flags.c_contiguous
    ):
        return False
    base = payload
    while isinstance(base, np.ndarray):
        if base.flags.writeable:
            return False
        base = base.base
    return base is None
