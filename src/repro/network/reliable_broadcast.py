"""Reliable-broadcast semantics.

Bracha-style reliable broadcast guarantees that all non-faulty nodes
that deliver a message from a given sender deliver the *same* message.
Rather than simulating the three-phase echo protocol message by message,
the simulator enforces its guarantee directly: a sender contributes at
most one payload per round, and the only freedom a Byzantine sender
retains is *which* non-faulty nodes deliver it (selective omission),
which is consistent with an asynchronous adversary delaying deliveries
past the round boundary.

:class:`BroadcastPlan` captures one sender's behaviour for one round;
:class:`ReliableBroadcast` validates plans and materialises the per-node
delivery lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.network.message import Message


@dataclass(frozen=True)
class BroadcastPlan:
    """What one sender broadcasts in one round.

    Attributes
    ----------
    sender:
        Sending node index.
    payload:
        The single payload reliable broadcast will deliver, or ``None``
        for a silent (crashed / omitting) sender.
    recipients:
        Nodes that deliver the payload this round.  ``None`` means every
        node.  Non-faulty senders must always use ``None`` (they follow
        the protocol); Byzantine senders may restrict the set.
    delays:
        Optional mapping receiver id -> extra rounds the adversary wants
        this delivery held back.  Only Byzantine senders may request
        delays; schedulers that model asynchrony honour them up to their
        delivery horizon, the synchronous scheduler ignores them (every
        message arrives in its own round by definition).
    """

    sender: int
    payload: Optional[np.ndarray]
    recipients: Optional[frozenset[int]] = None
    metadata: dict = field(default_factory=dict, compare=False)
    delays: Optional[Dict[int, int]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.sender < 0:
            raise ValueError("sender must be non-negative")
        if self.payload is not None:
            payload = np.asarray(self.payload, dtype=np.float64).reshape(-1)
            if payload.size == 0:
                raise ValueError("payload must be non-empty when present")
            object.__setattr__(self, "payload", payload)
        if self.recipients is not None:
            object.__setattr__(self, "recipients", frozenset(int(r) for r in self.recipients))
        if self.delays is not None:
            clean = {int(node): int(lag) for node, lag in self.delays.items()}
            if any(lag < 0 for lag in clean.values()):
                raise ValueError("delivery delays must be non-negative")
            object.__setattr__(self, "delays", clean)

    def delay_to(self, node: int) -> int:
        """Adversary-requested extra rounds before ``node`` delivers."""
        if self.delays is None:
            return 0
        return self.delays.get(node, 0)

    def delivers_to(self, node: int) -> bool:
        """Whether ``node`` delivers this sender's message this round."""
        if self.payload is None:
            return False
        return self.recipients is None or node in self.recipients


class ReliableBroadcast:
    """Materialises per-receiver delivery sets for one synchronous round.

    Parameters
    ----------
    n:
        Number of nodes (ids ``0 .. n-1``).
    byzantine:
        Ids of Byzantine nodes.  Only these senders may restrict their
        recipient sets or stay silent while holding a payload.
    require_full_broadcast:
        With the default ``True``, non-faulty senders must address every
        node (the agreement protocols' reliable-broadcast contract).
        ``False`` admits honest recipient restriction for non-broadcast
        round structures — the centralized trainer's star exchange sends
        each gradient to the server link only.
    """

    def __init__(
        self,
        n: int,
        byzantine: Iterable[int] = (),
        *,
        require_full_broadcast: bool = True,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        self.n = int(n)
        self.byzantine = frozenset(int(b) for b in byzantine)
        self.require_full_broadcast = bool(require_full_broadcast)
        invalid = [b for b in self.byzantine if b < 0 or b >= self.n]
        if invalid:
            raise ValueError(f"byzantine ids out of range: {invalid}")

    def validate_plan(self, plan: BroadcastPlan) -> None:
        """Reject plans that violate the reliable-broadcast guarantees."""
        if plan.sender >= self.n:
            raise ValueError(f"sender {plan.sender} out of range for n={self.n}")
        if plan.recipients is not None:
            out_of_range = [r for r in plan.recipients if r < 0 or r >= self.n]
            if out_of_range:
                raise ValueError(f"recipients out of range: {sorted(out_of_range)}")
            if (
                self.require_full_broadcast
                and plan.sender not in self.byzantine
                and plan.recipients != frozenset(range(self.n))
            ):
                raise ValueError(
                    "non-faulty senders must broadcast to all nodes "
                    f"(sender {plan.sender} restricted its recipients)"
                )
        if plan.delays:
            out_of_range = [r for r in plan.delays if r < 0 or r >= self.n]
            if out_of_range:
                raise ValueError(f"delayed receivers out of range: {sorted(out_of_range)}")
            if plan.sender not in self.byzantine:
                raise ValueError(
                    "non-faulty senders cannot delay their deliveries "
                    f"(sender {plan.sender} requested delays)"
                )

    def deliver(
        self, plans: Sequence[BroadcastPlan], round_index: int
    ) -> Dict[int, List[Message]]:
        """Return the messages each node delivers this round.

        The result maps receiver id to the list of delivered messages,
        ordered by sender id (deterministic, which keeps experiments
        reproducible).
        """
        by_sender: Dict[int, BroadcastPlan] = {}
        for plan in plans:
            self.validate_plan(plan)
            if plan.sender in by_sender:
                raise ValueError(
                    f"sender {plan.sender} submitted two broadcast plans in round {round_index}; "
                    "reliable broadcast admits at most one message per sender per round"
                )
            by_sender[plan.sender] = plan

        inbox: Dict[int, List[Message]] = {node: [] for node in range(self.n)}
        for sender in sorted(by_sender):
            plan = by_sender[sender]
            if plan.payload is None:
                continue
            message = Message(
                sender=sender,
                round_index=round_index,
                payload=plan.payload,
                metadata=dict(plan.metadata),
            )
            for node in range(self.n):
                if plan.delivers_to(node):
                    inbox[node].append(message)
        return inbox
