"""Synchronous round scheduler (compatibility surface).

Historically this module held the only round loop in the library.  The
delivery core now lives in :mod:`repro.network.delivery` and the
scheduling in :mod:`repro.engine`; :class:`SynchronousNetwork` remains
as the established name for "a lock-step engine with history retention",
re-layered on :class:`~repro.engine.synchronous.SynchronousScheduler`
(same behaviour, bitwise — the engine equivalence suite pins it).

:class:`RoundResult` and :func:`full_broadcast_plan` are re-exported
here for backwards compatibility.
"""

from __future__ import annotations

from repro.engine.synchronous import SynchronousScheduler
from repro.network.delivery import (
    AdversaryPlanFn,
    EmptyInboxError,
    HonestPlanFn,
    RoundResult,
    full_broadcast_plan,
)

__all__ = [
    "AdversaryPlanFn",
    "EmptyInboxError",
    "HonestPlanFn",
    "RoundResult",
    "SynchronousNetwork",
    "full_broadcast_plan",
]


class SynchronousNetwork(SynchronousScheduler):
    """Lock-step network of ``n`` nodes with a static Byzantine set.

    A :class:`~repro.engine.synchronous.SynchronousScheduler` that keeps
    its round history by default (the original behaviour).  Pass
    ``keep_history=False`` or ``max_history=`` to bound memory when
    driving thousands of rounds — the trainers do.
    """
