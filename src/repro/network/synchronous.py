"""Synchronous round scheduler.

:class:`SynchronousNetwork` drives a lock-step protocol: each round it
collects one :class:`~repro.network.reliable_broadcast.BroadcastPlan`
per node (honest plans from a callback, Byzantine plans from an
adversary callback), applies reliable-broadcast delivery, and hands each
honest node its inbox.  The agreement package builds its multi-round
algorithms on top of this scheduler; the decentralized learning loop
reuses it for the gradient-exchange sub-rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.network.message import Message
from repro.network.reliable_broadcast import BroadcastPlan, ReliableBroadcast

HonestPlanFn = Callable[[int, int], BroadcastPlan]
AdversaryPlanFn = Callable[[int, int, Dict[int, np.ndarray]], BroadcastPlan]


@dataclass
class RoundResult:
    """Delivery outcome of one synchronous round."""

    round_index: int
    inboxes: Dict[int, List[Message]] = field(default_factory=dict)

    def received_matrix(self, node: int) -> np.ndarray:
        """Stack of payloads node ``node`` delivered this round, ``(m, d)``."""
        messages = self.inboxes.get(node, [])
        if not messages:
            raise ValueError(f"node {node} received no messages in round {self.round_index}")
        return np.stack([msg.payload for msg in messages], axis=0)

    def senders(self, node: int) -> List[int]:
        """Sender ids of the messages node ``node`` delivered this round."""
        return [msg.sender for msg in self.inboxes.get(node, [])]


class SynchronousNetwork:
    """Lock-step network of ``n`` nodes with a static Byzantine set.

    Parameters
    ----------
    n:
        Number of nodes.
    byzantine:
        Ids of Byzantine nodes.
    min_honest_messages:
        Safety check: every honest node must deliver at least this many
        messages per round (defaults to ``n - t`` when ``t`` is supplied
        via :meth:`require_quorum`).  Set to 0 to disable.
    """

    def __init__(self, n: int, byzantine: Iterable[int] = ()) -> None:
        self.broadcast = ReliableBroadcast(n, byzantine)
        self.n = self.broadcast.n
        self.byzantine = self.broadcast.byzantine
        self.honest = tuple(sorted(set(range(self.n)) - set(self.byzantine)))
        self._min_honest_messages = 0
        self.history: List[RoundResult] = []

    def require_quorum(self, quorum: int) -> None:
        """Require every honest node to deliver at least ``quorum`` messages."""
        if quorum < 0:
            raise ValueError("quorum must be non-negative")
        self._min_honest_messages = int(quorum)

    def run_round(
        self,
        round_index: int,
        honest_plan: HonestPlanFn,
        adversary_plan: Optional[AdversaryPlanFn] = None,
    ) -> RoundResult:
        """Execute one synchronous round.

        ``honest_plan(node, round)`` must return a full-broadcast plan for
        every honest node.  ``adversary_plan(node, round, honest_values)``
        is called for every Byzantine node with a read-only view of the
        honest payloads of this round (Byzantine nodes are rushing: they
        may inspect honest messages before choosing their own).  A
        ``None`` adversary means Byzantine nodes stay silent (crash).
        """
        plans: List[BroadcastPlan] = []
        honest_values: Dict[int, np.ndarray] = {}
        for node in self.honest:
            plan = honest_plan(node, round_index)
            if plan.sender != node:
                raise ValueError(
                    f"honest plan for node {node} reports sender {plan.sender}"
                )
            if plan.payload is None:
                raise ValueError(f"honest node {node} must broadcast a payload")
            plans.append(plan)
            honest_values[node] = np.asarray(plan.payload, dtype=np.float64)

        if adversary_plan is not None:
            for node in sorted(self.byzantine):
                plan = adversary_plan(node, round_index, dict(honest_values))
                if plan.sender != node:
                    raise ValueError(
                        f"adversary plan for node {node} reports sender {plan.sender}"
                    )
                plans.append(plan)

        inboxes = self.broadcast.deliver(plans, round_index)
        result = RoundResult(round_index=round_index, inboxes=inboxes)
        if self._min_honest_messages:
            for node in self.honest:
                got = len(result.inboxes.get(node, []))
                if got < self._min_honest_messages:
                    raise RuntimeError(
                        f"honest node {node} delivered only {got} messages in round "
                        f"{round_index}, quorum is {self._min_honest_messages}"
                    )
        self.history.append(result)
        return result

    def reset_history(self) -> None:
        """Drop recorded round results (used between learning iterations)."""
        self.history.clear()


def full_broadcast_plan(node: int, payload: np.ndarray, metadata: Optional[dict] = None) -> BroadcastPlan:
    """Convenience constructor for the plan an honest node always uses."""
    return BroadcastPlan(
        sender=node, payload=np.asarray(payload, dtype=np.float64), recipients=None,
        metadata=metadata or {},
    )
