"""Communication topologies.

The paper's algorithms assume all-to-all communication (every node can
reliably broadcast to every other node); historically the simulator
hard-coded that complete graph.  This module makes the communication
graph a first-class axis instead:

- :class:`Topology` — a frozen adjacency representation: sorted
  neighbour arrays (self included) plus a precomputed ``(n, n)`` boolean
  delivery mask with a ``True`` diagonal.  ``mask[s, r]`` answers "does
  ``s``'s broadcast reach ``r``?", which is exactly the shape the batch
  message plane's per-sender delivery masks use — the engines intersect
  it with their drop/crash/delay masks (see
  :meth:`repro.engine.base.RoundEngine.set_topology`).
- :func:`make_topology` — a registry of seeded, deterministic named
  generators (:data:`TOPOLOGY_NAMES`): ``complete``, ``ring``,
  ``torus``, ``random-regular`` (the "expander" family) and ``clusters``
  (geographic clusters bridged into a ring).
- :func:`validate_topology` — structural diagnostics with actionable
  errors: node coverage, connectivity (a disconnected graph silently
  starves whole components), and quorum feasibility against the
  Byzantine tolerance ``t`` (full agreement needs every node to *be
  able* to receive ``n - t`` messages, i.e. closed degree ``>= n - t``).

The legacy :mod:`networkx` helpers (:func:`complete_topology`,
:func:`neighbours`) remain for callers that work on graphs directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np


def complete_topology(n: int) -> nx.Graph:
    """Complete graph over ``n`` nodes with self-loops added.

    Self-loops encode that every node "delivers" its own broadcast to
    itself, which the agreement algorithms rely on (a node's own vector
    is always part of its received set).
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    graph = nx.complete_graph(n)
    graph.add_edges_from((i, i) for i in range(n))
    return graph


def neighbours(graph: nx.Graph, node: int) -> list[int]:
    """Sorted list of nodes that receive ``node``'s broadcasts (incl. itself)."""
    if node not in graph:
        raise ValueError(f"node {node} is not part of the topology")
    out = set(graph.neighbors(node))
    out.add(node)
    return sorted(out)


class Topology:
    """Frozen adjacency representation of a communication graph.

    Attributes
    ----------
    name:
        The generator name this topology was built from (``"complete"``,
        ``"ring"``, ...; derived names like ``"ring+cut"`` mark edge
        removals).
    n:
        Number of nodes (ids ``0..n-1``).
    mask:
        Read-only ``(n, n)`` boolean delivery mask, symmetric with a
        ``True`` diagonal: ``mask[s, r]`` — does ``s``'s broadcast reach
        ``r``?  This is the array the engines intersect with their own
        delivery masks, so building it once here keeps the per-round
        cost at a single vectorized ``&``.
    """

    __slots__ = ("name", "n", "mask", "is_complete", "_degrees", "_neighbours")

    def __init__(self, name: str, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2 or mask.shape[0] != mask.shape[1]:
            raise ValueError(f"topology mask must be square, got shape {mask.shape}")
        if mask.shape[0] < 1:
            raise ValueError("topology needs at least one node")
        if not np.array_equal(mask, mask.T):
            raise ValueError("topology mask must be symmetric (links are undirected)")
        if not mask.diagonal().all():
            raise ValueError(
                "topology mask must have a True diagonal (a node always "
                "delivers its own broadcast to itself)"
            )
        mask = mask.copy()
        mask.setflags(write=False)
        self.name = str(name)
        self.n = int(mask.shape[0])
        self.mask = mask
        self.is_complete = bool(mask.all())
        self._degrees: Optional[np.ndarray] = None
        self._neighbours: Dict[int, np.ndarray] = {}

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_graph(cls, name: str, graph: nx.Graph, n: int) -> "Topology":
        """Build from a :mod:`networkx` graph over nodes ``0..n-1``.

        Self-loops are implied (the diagonal is forced ``True``), so
        generators need not add them.
        """
        nodes = set(graph.nodes)
        expected = set(range(n))
        if nodes != expected:
            raise ValueError(
                f"topology nodes {sorted(nodes)} do not match expected {sorted(expected)}"
            )
        mask = np.zeros((n, n), dtype=bool)
        for u, v in graph.edges:
            mask[u, v] = True
            mask[v, u] = True
        np.fill_diagonal(mask, True)
        return cls(name, mask)

    # -- structure ------------------------------------------------------------
    @property
    def degrees(self) -> np.ndarray:
        """Open degrees (neighbour counts excluding self), ``(n,)`` int64."""
        if self._degrees is None:
            degrees = self.mask.sum(axis=1, dtype=np.int64) - 1
            degrees.setflags(write=False)
            self._degrees = degrees
        return self._degrees

    @property
    def min_degree(self) -> int:
        return int(self.degrees.min())

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max())

    @property
    def num_edges(self) -> int:
        """Undirected non-self edges."""
        return int(self.mask.sum() - self.n) // 2

    def neighbours(self, node: int) -> np.ndarray:
        """Sorted read-only neighbour ids of ``node``, self included."""
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} is not part of the topology (n={self.n})")
        cached = self._neighbours.get(node)
        if cached is None:
            cached = np.flatnonzero(self.mask[node]).astype(np.int64)
            cached.setflags(write=False)
            self._neighbours[node] = cached
        return cached

    def edges(self) -> List[Tuple[int, int]]:
        """Sorted list of undirected non-self edges ``(u, v)`` with ``u < v``."""
        u, v = np.nonzero(np.triu(self.mask, k=1))
        return list(zip(u.tolist(), v.tolist()))

    def connected_components(self) -> List[List[int]]:
        """Connected components as sorted node lists (largest first)."""
        unseen = set(range(self.n))
        components: List[List[int]] = []
        while unseen:
            frontier = [unseen.pop()]
            component = set(frontier)
            while frontier:
                reachable = np.flatnonzero(self.mask[frontier].any(axis=0))
                frontier = [int(v) for v in reachable if v in unseen]
                component.update(frontier)
                unseen.difference_update(frontier)
            components.append(sorted(component))
        components.sort(key=lambda c: (-len(c), c[0]))
        return components

    @property
    def is_connected(self) -> bool:
        return len(self.connected_components()) == 1

    # -- derivation -----------------------------------------------------------
    def without_edges(self, edges: Iterable[Sequence[int]]) -> "Topology":
        """Copy with the given undirected edges removed (self-loops kept).

        This is the partition primitive: removing every edge that
        crosses two groups splits the communication graph; *healing*
        simply re-installs the original topology object (see
        :class:`repro.byzantine.partition.TopologyPartition`).
        """
        mask = self.mask.copy()
        for edge in edges:
            u, v = (int(x) for x in edge)
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
            if u == v:
                raise ValueError("self-delivery cannot be removed from a topology")
            mask[u, v] = False
            mask[v, u] = False
        name = self.name if self.name.endswith("+cut") else f"{self.name}+cut"
        return Topology(name, mask)

    def summary(self) -> Dict[str, object]:
        """Compact JSON-safe reading for sweep rows and reports."""
        degrees = self.degrees
        return {
            "name": self.name,
            "n": self.n,
            "edges": self.num_edges,
            "min_degree": int(degrees.min()),
            "max_degree": int(degrees.max()),
            "mean_degree": float(degrees.mean()),
            "complete": self.is_complete,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(name={self.name!r}, n={self.n}, edges={self.num_edges}, "
            f"degree=[{self.min_degree}, {self.max_degree}])"
        )


# -- generators ---------------------------------------------------------------

def _generate_complete(n: int, rng: np.random.Generator) -> nx.Graph:
    return nx.complete_graph(n)


def _generate_ring(n: int, rng: np.random.Generator) -> nx.Graph:
    if n < 3:
        raise ValueError(f"topology 'ring' needs n >= 3 nodes, got {n}")
    return nx.cycle_graph(n)


def _near_square_factors(n: int) -> Tuple[int, int]:
    rows = int(np.sqrt(n))
    while rows > 1 and n % rows:
        rows -= 1
    return rows, n // rows


def _generate_torus(
    n: int, rng: np.random.Generator, *, rows: Optional[int] = None,
    cols: Optional[int] = None,
) -> nx.Graph:
    if rows is None and cols is None:
        rows, cols = _near_square_factors(n)
    elif rows is None:
        rows = n // int(cols)  # type: ignore[arg-type]
    elif cols is None:
        cols = n // int(rows)
    rows, cols = int(rows), int(cols)  # type: ignore[arg-type]
    if rows < 1 or cols < 1 or rows * cols != n:
        raise ValueError(
            f"topology 'torus' needs rows*cols == n, got rows={rows} cols={cols} n={n}"
        )
    if min(rows, cols) == 1 and max(rows, cols) < 3:
        raise ValueError(f"topology 'torus' needs at least 3 nodes per ring, got {n}")
    grid = nx.grid_2d_graph(rows, cols, periodic=True)
    return nx.relabel_nodes(grid, {(r, c): r * cols + c for r, c in grid.nodes})


def _generate_random_regular(
    n: int, rng: np.random.Generator, *, degree: int = 4
) -> nx.Graph:
    degree = int(degree)
    if degree < 1 or degree >= n:
        raise ValueError(
            f"topology 'random-regular' needs 1 <= degree < n, got degree={degree} n={n}"
        )
    if (n * degree) % 2:
        raise ValueError(
            f"topology 'random-regular' needs n*degree even, got n={n} degree={degree}; "
            f"use degree={degree + 1} or an even n"
        )
    # networkx takes an integer seed; derive it from our generator so one
    # (name, n, seed, kwargs) tuple always yields the same graph.
    return nx.random_regular_graph(degree, n, seed=int(rng.integers(0, 2**31 - 1)))


def _generate_clusters(
    n: int, rng: np.random.Generator, *, clusters: int = 2, bridges: int = 1
) -> nx.Graph:
    """Geographic clusters: dense groups bridged into a ring of clusters.

    Nodes are split into ``clusters`` contiguous, near-equal groups, each
    internally complete; consecutive clusters (cyclically) are joined by
    ``bridges`` seeded random cross edges.  ``bridges=0`` deliberately
    builds a *disconnected* graph (it fails validation) — useful for
    exercising the diagnostics and for partition scenarios.
    """
    clusters, bridges = int(clusters), int(bridges)
    if not 1 <= clusters <= n:
        raise ValueError(
            f"topology 'clusters' needs 1 <= clusters <= n, got clusters={clusters} n={n}"
        )
    if bridges < 0:
        raise ValueError(f"topology 'clusters' needs bridges >= 0, got {bridges}")
    bounds = np.linspace(0, n, clusters + 1).astype(int)
    groups = [list(range(bounds[i], bounds[i + 1])) for i in range(clusters)]
    graph: nx.Graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for group in groups:
        graph.add_edges_from(nx.complete_graph(group).edges)
    if clusters > 1 and bridges:
        for i in range(clusters if clusters > 2 else 1):
            left, right = groups[i], groups[(i + 1) % clusters]
            for _ in range(bridges):
                graph.add_edge(
                    int(left[int(rng.integers(len(left)))]),
                    int(right[int(rng.integers(len(right)))]),
                )
    return graph


_GENERATORS = {
    "complete": _generate_complete,
    "ring": _generate_ring,
    "torus": _generate_torus,
    "random-regular": _generate_random_regular,
    "clusters": _generate_clusters,
}

#: Topology names accepted by :func:`make_topology` (and the
#: ``ExperimentConfig.topology`` field / sweep axis).
TOPOLOGY_NAMES: Tuple[str, ...] = tuple(_GENERATORS)

#: Convenience aliases resolved by :func:`resolve_topology_name`.
_ALIASES = {"expander": "random-regular", "random_regular": "random-regular"}


def resolve_topology_name(name: str) -> str:
    """Canonical generator name for ``name`` (aliases resolved)."""
    key = str(name).strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _GENERATORS:
        raise ValueError(
            f"unknown topology {name!r}; supported: {TOPOLOGY_NAMES} "
            f"(aliases: {tuple(sorted(_ALIASES))})"
        )
    return key


def make_topology(name: str, n: int, *, seed: int = 0, **kwargs) -> "Topology":
    """Build a named topology over ``n`` nodes, seeded and deterministic.

    ``kwargs`` are generator-specific: ``torus`` takes ``rows``/``cols``
    (default: the near-square factorisation of ``n``), ``random-regular``
    takes ``degree`` (default 4), ``clusters`` takes ``clusters``
    (default 2) and ``bridges`` (cross edges between consecutive
    clusters, default 1).  The same ``(name, n, seed, kwargs)`` always
    yields the same graph.  Connectivity is checked here — a generator
    parameterised into a disconnected graph fails fast with the
    :func:`validate_topology` diagnostic instead of silently starving
    components mid-run.
    """
    key = resolve_topology_name(name)
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    try:
        graph = _GENERATORS[key](n, rng, **kwargs)
    except TypeError as exc:
        raise ValueError(f"bad topology kwargs for {key!r}: {exc}") from None
    topology = Topology.from_graph(key, graph, n)
    validate_topology(topology, n)
    return topology


# -- validation ---------------------------------------------------------------

def _as_topology(graph: Union[Topology, nx.Graph], n: int) -> Topology:
    if isinstance(graph, Topology):
        if graph.n != n:
            raise ValueError(
                f"topology is over n={graph.n} nodes but n={n} was expected"
            )
        return graph
    return Topology.from_graph("graph", graph, n)


def validate_topology(
    graph: Union[Topology, nx.Graph], n: int, *, t: Optional[int] = None
) -> None:
    """Structural diagnostics for a topology, with actionable errors.

    Always checked: the node set covers exactly ``0..n-1`` and the graph
    is **connected** — a disconnected topology silently partitions the
    protocol (each component converges on its own, which looks like a
    successful run while being a different experiment entirely).

    With ``t`` given, additionally checks **quorum feasibility** for
    full approximate agreement: every node must be able to receive the
    ``n - t`` quorum, i.e. have closed degree (neighbours + self) of at
    least ``n - t``.  Sparser graphs are still usable with gossip-style
    neighbourhood averaging (``exchange='gossip'``), which only needs
    connectivity.
    """
    topology = _as_topology(graph, n)
    components = topology.connected_components()
    if len(components) > 1:
        preview = ", ".join(str(c[:6]) for c in components[:3])
        raise ValueError(
            f"topology {topology.name!r} is disconnected "
            f"({len(components)} components: {preview}...); messages can never "
            f"cross components, so the protocol silently degenerates to "
            f"per-component runs.  Add bridging edges (clusters topology: "
            f"bridges >= 1) or pick a connected generator."
        )
    if t is not None:
        quorum = n - int(t)
        closed = topology.min_degree + 1
        if closed < quorum:
            worst = int(topology.degrees.argmin())
            raise ValueError(
                f"topology {topology.name!r} cannot sustain the agreement "
                f"quorum: node {worst} can receive at most {closed} messages "
                f"per round (closed degree) but n - t = {n} - {t} = {quorum} "
                f"are required.  Use a denser topology (e.g. "
                f"random-regular with degree >= {quorum - 1}) or switch the "
                f"trainer to exchange='gossip', which only needs connectivity."
            )
