"""Communication topologies.

The paper's algorithms assume all-to-all communication (every node can
reliably broadcast to every other node); the decentralized learning loop
therefore uses a complete graph.  The helpers here build and validate
topologies as :mod:`networkx` graphs so alternative topologies (for
extensions / ablations) plug into the same simulator.
"""

from __future__ import annotations

import networkx as nx


def complete_topology(n: int) -> nx.Graph:
    """Complete graph over ``n`` nodes with self-loops added.

    Self-loops encode that every node "delivers" its own broadcast to
    itself, which the agreement algorithms rely on (a node's own vector
    is always part of its received set).
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    graph = nx.complete_graph(n)
    graph.add_edges_from((i, i) for i in range(n))
    return graph


def validate_topology(graph: nx.Graph, n: int) -> None:
    """Check a topology covers exactly nodes ``0..n-1``."""
    nodes = set(graph.nodes)
    expected = set(range(n))
    if nodes != expected:
        raise ValueError(
            f"topology nodes {sorted(nodes)} do not match expected {sorted(expected)}"
        )


def neighbours(graph: nx.Graph, node: int) -> list[int]:
    """Sorted list of nodes that receive ``node``'s broadcasts (incl. itself)."""
    if node not in graph:
        raise ValueError(f"node {node} is not part of the topology")
    out = set(graph.neighbors(node))
    out.add(node)
    return sorted(out)
