"""Pure-NumPy neural-network substrate.

The paper trains its models with TensorFlow; this reproduction replaces
that dependency with a small, explicit NumPy implementation of exactly
the pieces the experiments need:

- layers with hand-written backward passes (:mod:`repro.nn.layers`),
- softmax + categorical cross-entropy loss (:mod:`repro.nn.losses`),
- a :class:`~repro.nn.model.Sequential` container exposing *flat*
  parameter and gradient vectors — the representation the aggregation
  and agreement layers operate on,
- an SGD optimiser with the global-round learning-rate decay the paper
  uses (:mod:`repro.nn.optimizers`), and
- the two architectures of the evaluation: a 3-layer MLP for the
  MNIST-like task and a small convolutional "CifarNet" for the
  CIFAR-like task (:mod:`repro.nn.architectures`).
"""

from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, Layer, MaxPool2D, ReLU
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD
from repro.nn.architectures import build_cifarnet, build_mlp
from repro.nn.metrics import accuracy

__all__ = [
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "MaxPool2D",
    "ReLU",
    "SGD",
    "Sequential",
    "accuracy",
    "build_cifarnet",
    "build_mlp",
    "softmax",
    "softmax_cross_entropy",
]
