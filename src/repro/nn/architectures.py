"""Model architectures used in the paper's evaluation.

- :func:`build_mlp` — the 3-layer MultiLayer Perceptron the paper trains
  on MNIST.
- :func:`build_cifarnet` — a medium-sized convolutional network ("CifarNet")
  for the CIFAR-like task: two conv/pool blocks followed by two dense
  layers.  Kept deliberately small so the decentralized experiments with
  10 clients remain laptop-scale, but structurally it exercises every
  layer type (convolution, pooling, flatten, dense).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.model import Sequential
from repro.utils.rng import as_generator


def build_mlp(
    input_dim: int = 28 * 28,
    hidden_sizes: Sequence[int] = (128, 64),
    num_classes: int = 10,
    *,
    seed=0,
) -> Sequential:
    """3-layer MLP (two hidden ReLU layers + softmax output).

    The input is assumed to be a flattened image; the learning loop
    flattens images before calling the model, mirroring how the paper's
    MLP consumes MNIST.
    """
    if input_dim < 1 or num_classes < 2:
        raise ValueError("input_dim must be positive and num_classes >= 2")
    if len(hidden_sizes) == 0:
        raise ValueError("MLP needs at least one hidden layer")
    rng = as_generator(seed)
    layers = []
    previous = input_dim
    for width in hidden_sizes:
        if width < 1:
            raise ValueError("hidden layer widths must be positive")
        layers.append(Dense(previous, int(width), rng=rng))
        layers.append(ReLU())
        previous = int(width)
    layers.append(Dense(previous, num_classes, rng=rng))
    return Sequential(layers, name="mlp")


def build_cifarnet(
    input_shape: Tuple[int, int, int] = (32, 32, 3),
    num_classes: int = 10,
    *,
    conv_channels: Sequence[int] = (8, 16),
    dense_width: int = 64,
    seed=0,
) -> Sequential:
    """Small convolutional network for the CIFAR-like task.

    Architecture: ``[Conv3x3 -> ReLU -> MaxPool2]`` per entry of
    ``conv_channels``, then ``Flatten -> Dense -> ReLU -> Dense``.
    """
    h, w, c = input_shape
    if min(h, w, c) < 1 or num_classes < 2:
        raise ValueError("invalid input_shape or num_classes")
    rng = as_generator(seed)
    layers = []
    in_channels = c
    spatial_h, spatial_w = h, w
    for out_channels in conv_channels:
        layers.append(Conv2D(in_channels, int(out_channels), kernel_size=3, padding=1, rng=rng))
        layers.append(ReLU())
        layers.append(MaxPool2D(pool_size=2))
        in_channels = int(out_channels)
        spatial_h //= 2
        spatial_w //= 2
        if spatial_h < 1 or spatial_w < 1:
            raise ValueError("too many conv/pool blocks for the input resolution")
    layers.append(Flatten())
    flat_dim = spatial_h * spatial_w * in_channels
    layers.append(Dense(flat_dim, int(dense_width), rng=rng))
    layers.append(ReLU())
    layers.append(Dense(int(dense_width), num_classes, rng=rng))
    return Sequential(layers, name="cifarnet")


def model_for_dataset(dataset_name: str, image_shape: Tuple[int, ...], num_classes: int, *, seed=0) -> Sequential:
    """Pick the paper's architecture for a dataset by name.

    ``"mnist"``-like names map to the MLP over flattened inputs;
    ``"cifar"``-like names map to CifarNet.
    """
    lowered = dataset_name.lower()
    if "cifar" in lowered:
        if len(image_shape) != 3:
            raise ValueError("CifarNet requires (h, w, c) images")
        return build_cifarnet(tuple(int(s) for s in image_shape), num_classes, seed=seed)
    input_dim = int(np.prod(image_shape))
    return build_mlp(input_dim, num_classes=num_classes, seed=seed)
