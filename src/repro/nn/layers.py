"""Neural-network layers with explicit forward/backward passes.

Every layer follows the same contract:

- ``forward(x, training)`` consumes a batch and caches whatever the
  backward pass needs,
- ``backward(grad_output)`` consumes the gradient w.r.t. the layer's
  output, accumulates parameter gradients into ``self.grads`` and
  returns the gradient w.r.t. the layer's input,
- ``params`` / ``grads`` are dictionaries of NumPy arrays with matching
  keys, so the model can expose flat parameter/gradient vectors.

The convolution uses the im2col formulation: the input windows are
unfolded into a matrix so the convolution becomes a single GEMM, which
is the standard way to keep NumPy convolutions fast (vectorise the loop,
as the HPC guides insist).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

import numpy as np


class Layer(abc.ABC):
    """Base class for all layers."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    @abc.abstractmethod
    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        """Compute the layer output for a batch ``x``."""
        raise NotImplementedError

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the input gradient."""
        raise NotImplementedError

    def zero_grads(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be positive")
        generator = rng if rng is not None else np.random.default_rng(0)
        # He initialisation: suited to the ReLU activations used throughout.
        scale = np.sqrt(2.0 / in_features)
        self.params["W"] = generator.normal(0.0, scale, size=(in_features, out_features))
        self.params["b"] = np.zeros(out_features)
        self.zero_grads()
        self._cache_x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.params["W"].shape[0]:
            raise ValueError(
                f"Dense expected input of shape (batch, {self.params['W'].shape[0]}), got {x.shape}"
            )
        self._cache_x = x if training else None
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        x = self._cache_x
        self.grads["W"] += x.T @ grad_output
        self.grads["b"] += grad_output.sum(axis=0)
        return grad_output @ self.params["W"].T


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        return grad_output * self._mask


class Flatten(Layer):
    """Reshape ``(batch, ...)`` to ``(batch, features)``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; a no-op at evaluation time."""

    def __init__(self, rate: float = 0.5, *, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


# ---------------------------------------------------------------------------
# Convolution via im2col
# ---------------------------------------------------------------------------

def _im2col(x: np.ndarray, kernel: int, stride: int, pad: int) -> Tuple[np.ndarray, int, int]:
    """Unfold ``(batch, h, w, c)`` into ``(batch * oh * ow, kernel*kernel*c)``."""
    batch, h, w, c = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)), mode="constant")
    oh = (h + 2 * pad - kernel) // stride + 1
    ow = (w + 2 * pad - kernel) // stride + 1
    # Gather all kernel-window views with stride tricks, then reorder.
    shape = (batch, oh, ow, kernel, kernel, c)
    strides = (
        x.strides[0],
        x.strides[1] * stride,
        x.strides[2] * stride,
        x.strides[1],
        x.strides[2],
        x.strides[3],
    )
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = windows.reshape(batch * oh * ow, kernel * kernel * c)
    return np.ascontiguousarray(cols), oh, ow


def _col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Fold column gradients back onto the (padded) input, then un-pad."""
    batch, h, w, c = input_shape
    padded = np.zeros((batch, h + 2 * pad, w + 2 * pad, c), dtype=cols.dtype)
    cols6 = cols.reshape(batch, oh, ow, kernel, kernel, c)
    for ky in range(kernel):
        for kx in range(kernel):
            padded[:, ky : ky + stride * oh : stride, kx : kx + stride * ow : stride, :] += (
                cols6[:, :, :, ky, kx, :]
            )
    if pad:
        return padded[:, pad:-pad, pad:-pad, :]
    return padded


class Conv2D(Layer):
    """2-D convolution over channels-last inputs ``(batch, h, w, c)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        *,
        stride: int = 1,
        padding: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) < 1 or padding < 0:
            raise ValueError("invalid Conv2D hyper-parameters")
        generator = rng if rng is not None else np.random.default_rng(0)
        fan_in = kernel_size * kernel_size * in_channels
        scale = np.sqrt(2.0 / fan_in)
        self.params["W"] = generator.normal(
            0.0, scale, size=(fan_in, out_channels)
        )
        self.params["b"] = np.zeros(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.zero_grads()
        self._cache = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (batch, h, w, {self.in_channels}), got {x.shape}"
            )
        cols, oh, ow = _im2col(x, self.kernel_size, self.stride, self.padding)
        out = cols @ self.params["W"] + self.params["b"]
        out = out.reshape(x.shape[0], oh, ow, self.out_channels)
        self._cache = (x.shape, cols, oh, ow) if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        input_shape, cols, oh, ow = self._cache
        batch = input_shape[0]
        grad_flat = grad_output.reshape(batch * oh * ow, self.out_channels)
        self.grads["W"] += cols.T @ grad_flat
        self.grads["b"] += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ self.params["W"].T
        return _col2im(
            grad_cols, input_shape, self.kernel_size, self.stride, self.padding, oh, ow
        )


class MaxPool2D(Layer):
    """Max pooling over channels-last inputs with a square window."""

    def __init__(self, pool_size: int = 2, *, stride: Optional[int] = None) -> None:
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be positive")
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else int(pool_size)
        self._cache = None

    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"MaxPool2D expects (batch, h, w, c), got {x.shape}")
        batch, h, w, c = x.shape
        k, s = self.pool_size, self.stride
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        shape = (batch, oh, ow, k, k, c)
        strides = (
            x.strides[0],
            x.strides[1] * s,
            x.strides[2] * s,
            x.strides[1],
            x.strides[2],
            x.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
        windows = windows.reshape(batch, oh, ow, k * k, c)
        arg = windows.argmax(axis=3)
        out = np.take_along_axis(windows, arg[:, :, :, None, :], axis=3)[:, :, :, 0, :]
        self._cache = (x.shape, arg, oh, ow) if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        input_shape, arg, oh, ow = self._cache
        batch, h, w, c = input_shape
        k, s = self.pool_size, self.stride
        grad_input = np.zeros(input_shape, dtype=grad_output.dtype)
        # Scatter each output gradient back to the argmax position.
        ky = arg // k
        kx = arg % k
        b_idx, oy_idx, ox_idx, c_idx = np.indices((batch, oh, ow, c))
        y_idx = oy_idx * s + ky
        x_idx = ox_idx * s + kx
        np.add.at(grad_input, (b_idx, y_idx, x_idx, c_idx), grad_output)
        return grad_input
