"""Softmax and categorical cross-entropy.

The paper trains classification models with categorical cross-entropy;
combining the softmax and the cross-entropy in one function gives the
numerically stable ``softmax(logits) - one_hot`` gradient.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the max-subtraction stability trick."""
    z = np.asarray(logits, dtype=np.float64)
    if z.ndim == 1:
        z = z.reshape(1, -1)
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels into shape ``(batch, num_classes)``."""
    y = np.asarray(labels, dtype=np.int64).reshape(-1)
    if y.size and (y.min() < 0 or y.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    out = np.zeros((y.shape[0], num_classes), dtype=np.float64)
    out[np.arange(y.shape[0]), y] = 1.0
    return out


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, *, eps: float = 1e-12
) -> Tuple[float, np.ndarray]:
    """Mean categorical cross-entropy and its gradient w.r.t. the logits.

    Returns
    -------
    (loss, grad):
        ``loss`` is the scalar mean cross-entropy over the batch;
        ``grad`` has the same shape as ``logits`` and already includes the
        ``1 / batch`` factor, so back-propagating it yields mean-gradient
        parameter updates.
    """
    z = np.asarray(logits, dtype=np.float64)
    if z.ndim == 1:
        z = z.reshape(1, -1)
    probs = softmax(z)
    batch, num_classes = probs.shape
    targets = one_hot(labels, num_classes)
    if targets.shape[0] != batch:
        raise ValueError("labels batch size does not match logits batch size")
    loss = float(-(targets * np.log(probs + eps)).sum() / batch)
    grad = (probs - targets) / batch
    return loss, grad
