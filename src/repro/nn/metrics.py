"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions matching the labels."""
    preds = np.asarray(predictions).reshape(-1)
    y = np.asarray(labels).reshape(-1)
    if preds.shape != y.shape:
        raise ValueError(f"shape mismatch: predictions {preds.shape} vs labels {y.shape}")
    if y.size == 0:
        raise ValueError("cannot compute accuracy on empty arrays")
    return float((preds == y).mean())


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` confusion matrix (rows = true class)."""
    preds = np.asarray(predictions).reshape(-1)
    y = np.asarray(labels).reshape(-1)
    if preds.shape != y.shape:
        raise ValueError("shape mismatch between predictions and labels")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y, preds), 1)
    return matrix
