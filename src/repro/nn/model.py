"""Sequential model with flat parameter / gradient views.

The collaborative-learning layer exchanges *flat vectors*: a client's
stochastic gradient is the concatenation of all parameter gradients, and
a model update sets all parameters from one flat vector.  The
:class:`Sequential` container therefore exposes

- :meth:`get_flat_parameters` / :meth:`set_flat_parameters`,
- :meth:`gradient` — loss + flat gradient for a batch, and
- :meth:`predict` / :meth:`evaluate_accuracy` for the reporting loop.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import softmax, softmax_cross_entropy


class Sequential:
    """A feed-forward stack of layers trained with softmax cross-entropy."""

    def __init__(self, layers: Sequence[Layer], name: str = "model") -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.name = name

    # -- forward / backward ---------------------------------------------------
    def forward(self, x: np.ndarray, *, training: bool = True) -> np.ndarray:
        """Logits for a batch of inputs."""
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_logits: np.ndarray) -> None:
        """Back-propagate a gradient w.r.t. the logits through every layer."""
        grad = grad_logits
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def zero_grads(self) -> None:
        """Clear accumulated gradients in every layer."""
        for layer in self.layers:
            layer.zero_grads()

    # -- flat parameter interface ----------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Total scalar parameter count across all layers."""
        return int(sum(layer.num_parameters for layer in self.layers))

    def _parameter_items(self):
        for layer in self.layers:
            for key in sorted(layer.params):
                yield layer, key

    def get_flat_parameters(self) -> np.ndarray:
        """All parameters concatenated into one ``(num_parameters,)`` vector."""
        chunks = [layer.params[key].ravel() for layer, key in self._parameter_items()]
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks)

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector (inverse of ``get_flat_parameters``)."""
        vec = np.asarray(flat, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {vec.shape[0]}"
            )
        offset = 0
        for layer, key in self._parameter_items():
            size = layer.params[key].size
            layer.params[key] = vec[offset : offset + size].reshape(layer.params[key].shape).copy()
            offset += size

    def get_flat_gradients(self) -> np.ndarray:
        """Accumulated gradients concatenated in the same order as parameters."""
        chunks = [layer.grads[key].ravel() for layer, key in self._parameter_items()]
        if not chunks:
            return np.empty(0)
        return np.concatenate(chunks)

    # -- training-facing helpers ------------------------------------------------
    def gradient(self, images: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Loss and flat gradient of the mean cross-entropy on a batch."""
        self.zero_grads()
        logits = self.forward(images, training=True)
        loss, grad_logits = softmax_cross_entropy(logits, labels)
        self.backward(grad_logits)
        return loss, self.get_flat_gradients()

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted class labels for a batch."""
        logits = self.forward(images, training=False)
        return np.argmax(logits, axis=1)

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        """Predicted class probabilities for a batch."""
        return softmax(self.forward(images, training=False))

    def evaluate_accuracy(
        self, images: np.ndarray, labels: np.ndarray, *, batch_size: int = 256
    ) -> float:
        """Classification accuracy computed in mini-batches."""
        y = np.asarray(labels).reshape(-1)
        if y.size == 0:
            raise ValueError("cannot evaluate accuracy on an empty set")
        correct = 0
        for start in range(0, y.shape[0], batch_size):
            stop = start + batch_size
            preds = self.predict(images[start:stop])
            correct += int((preds == y[start:stop]).sum())
        return correct / y.shape[0]

    def clone_architecture(self) -> "Sequential":
        """A structurally identical model with freshly initialised parameters.

        Used by the decentralized loop where each client holds its own
        model instance; parameters are then synchronised explicitly via
        ``set_flat_parameters``.
        """
        import copy

        clone = copy.deepcopy(self)
        return clone
