"""Optimisers operating on flat parameter vectors.

Only plain SGD is needed for the reproduction; the learning-rate decay
follows the paper: ``decay = eta / rounds`` computed from the number of
*global* communication rounds (Zhao et al. 2018), i.e.
``lr(t) = eta / (1 + decay * t)``.
"""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with global-round learning-rate decay.

    Parameters
    ----------
    learning_rate:
        Initial learning rate ``eta`` (paper uses 0.01).
    total_rounds:
        Number of global communication rounds ``T``; the decay constant
        is ``eta / T``.  ``None`` disables decay.
    """

    def __init__(self, learning_rate: float = 0.01, total_rounds: int | None = None) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if total_rounds is not None and total_rounds < 1:
            raise ValueError(f"total_rounds must be positive, got {total_rounds}")
        self.learning_rate = float(learning_rate)
        self.total_rounds = total_rounds

    def decay(self) -> float:
        """Decay constant ``eta / T`` (0 when decay is disabled)."""
        if self.total_rounds is None:
            return 0.0
        return self.learning_rate / float(self.total_rounds)

    def effective_learning_rate(self, round_index: int) -> float:
        """Learning rate applied at global round ``round_index`` (0-based)."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        return self.learning_rate / (1.0 + self.decay() * round_index)

    def step(
        self, parameters: np.ndarray, gradient: np.ndarray, round_index: int = 0
    ) -> np.ndarray:
        """Return updated parameters ``theta - lr(t) * gradient``."""
        theta = np.asarray(parameters, dtype=np.float64).reshape(-1)
        grad = np.asarray(gradient, dtype=np.float64).reshape(-1)
        if theta.shape != grad.shape:
            raise ValueError(
                f"parameter/gradient shape mismatch: {theta.shape} vs {grad.shape}"
            )
        return theta - self.effective_learning_rate(round_index) * grad
