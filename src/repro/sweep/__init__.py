"""Batched scenario sweeps: declarative grids over experiment configs.

``ScenarioGrid`` expands axis specs into experiment configurations with
deterministic per-cell seeds; ``SweepRunner`` executes them through a
pluggable execution backend — serially, on a process pool, or as one
shard of a multi-host run (``repro.sweep.executors``) — streaming one
JSONL row per cell and resuming interrupted runs.  ``repro.sweep.merge``
folds per-shard files back into the canonical single-host stream.  See
``docs/sweeps.md`` for the spec format and CLI.
"""

from repro.sweep.executors import (
    BACKEND_NAMES,
    ERROR_ROW_SCHEMA_VERSION,
    ROW_SCHEMA_VERSION,
    ExecutionBackend,
    LeaseStore,
    ProcessPoolBackend,
    SerialBackend,
    ShardBackend,
    assign_shard,
    default_owner_id,
    execute_payload,
    grid_fingerprint,
    make_backend,
    row_matches_grid,
    run_cell,
)
from repro.sweep.grid import (
    CONFIG_FIELDS,
    ScenarioGrid,
    SweepCell,
    config_from_dict,
    config_to_dict,
    escape_axis_value,
    parse_cell_id,
    unescape_axis_value,
)
from repro.sweep.merge import MergeReport, merge_shard_rows, merge_shards
from repro.sweep.runner import (
    SweepRunner,
    failed_rows,
    iter_rows_to_histories,
    rows_to_histories,
)

__all__ = [
    "BACKEND_NAMES",
    "CONFIG_FIELDS",
    "ERROR_ROW_SCHEMA_VERSION",
    "ExecutionBackend",
    "LeaseStore",
    "MergeReport",
    "ProcessPoolBackend",
    "ROW_SCHEMA_VERSION",
    "ScenarioGrid",
    "SerialBackend",
    "ShardBackend",
    "SweepCell",
    "SweepRunner",
    "assign_shard",
    "config_from_dict",
    "config_to_dict",
    "default_owner_id",
    "escape_axis_value",
    "execute_payload",
    "failed_rows",
    "grid_fingerprint",
    "iter_rows_to_histories",
    "make_backend",
    "merge_shard_rows",
    "merge_shards",
    "parse_cell_id",
    "row_matches_grid",
    "rows_to_histories",
    "run_cell",
    "unescape_axis_value",
]
