"""Batched scenario sweeps: declarative grids over experiment configs.

``ScenarioGrid`` expands axis specs into experiment configurations with
deterministic per-cell seeds; ``SweepRunner`` executes them — serially
or on a process pool — streaming one JSONL row per cell and resuming
interrupted runs.  See ``docs/sweeps.md`` for the spec format and CLI.
"""

from repro.sweep.grid import (
    CONFIG_FIELDS,
    ScenarioGrid,
    SweepCell,
    config_from_dict,
    config_to_dict,
)
from repro.sweep.runner import (
    ROW_SCHEMA_VERSION,
    SweepRunner,
    rows_to_histories,
    run_cell,
)

__all__ = [
    "CONFIG_FIELDS",
    "ROW_SCHEMA_VERSION",
    "ScenarioGrid",
    "SweepCell",
    "SweepRunner",
    "config_from_dict",
    "config_to_dict",
    "rows_to_histories",
    "run_cell",
]
