"""Pluggable execution backends for scenario sweeps.

:class:`~repro.sweep.runner.SweepRunner` owns the *policy* of a sweep —
expansion, resume bookkeeping, streaming, ordering — and delegates the
*mechanics* of running cells to an :class:`ExecutionBackend`:

- :class:`SerialBackend` — in-process, one cell at a time (the
  ``workers=1`` path of the original runner, byte-identical output);
- :class:`ProcessPoolBackend` — a ``multiprocessing`` pool consuming
  results in submission order (the ``workers=N`` path, byte-identical);
- :class:`ShardBackend` — one worker of a multi-host run.  In *static*
  mode (``shard_index``/``shard_count``) cells are assigned round-robin
  by grid index, so the partition is a pure function of the grid; in
  *lease* mode (``lease_dir``) workers claim cells dynamically through
  atomic lease files in a shared directory, with stale-lease reclaim so
  a crashed worker's cells are picked up by the survivors.

Every backend yields **rows** (the JSONL dicts of
:func:`~repro.sweep.executors.run_cell`).  Exhaustive backends (serial,
process pool) yield exactly one row per submitted payload, in submission
order — the contract the single-host byte-identity guarantee rests on.
The shard backend is *partial*: it yields rows only for the cells this
worker ran; ``repro.sweep.merge`` folds the per-shard files back into
the canonical single-host stream.

A cell that raises does not abort the sweep: :func:`execute_payload`
retries it up to ``max_retries`` times and then emits a schema-versioned
**error row** (``cell_id``, exception, traceback tail) in place of the
result.  Error rows are never trusted by resume, so re-running the same
command after a fix re-runs exactly the failed cells.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import re
import socket
import threading
import time
import traceback
from functools import partial
from hashlib import sha1
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.io.results import history_to_dict
from repro.learning.experiment import run_experiment
from repro.sweep.grid import config_from_dict, config_to_dict
from repro.utils.logging import get_logger

_logger = get_logger("sweep.executors")

PathLike = Union[str, Path]

#: Bumped when the row layout changes incompatibly.
#: v2: corrected delivery accounting (crashed senders are `suppressed`,
#: not `sent`; in-flight messages expire as `expired_at_reset`, not
#: `dropped`; drop RNG decoupled from crash schedules) plus per-round
#: delivery traces (`history.delivery_trace`, `summary.trace`).  Rows
#: written by earlier versions are re-run on resume.
ROW_SCHEMA_VERSION = 2

#: Schema of the ``"error"`` sub-object of an error row.  Versioned
#: independently of the row schema: an error row is a placeholder, not a
#: result, so its layout can evolve without invalidating result rows.
ERROR_ROW_SCHEMA_VERSION = 1

#: How many trailing traceback lines an error row keeps.
TRACEBACK_TAIL_LINES = 10

#: Backend names accepted by :func:`make_backend` and the CLI.
BACKEND_NAMES = ("serial", "process", "shard")


def run_cell(payload: dict) -> dict:
    """Execute one grid cell and build its result row.

    Module-level (not a closure) so ``multiprocessing`` can ship it to
    worker processes under any start method.  The row is a pure function
    of the cell's configuration — the property the parallel == serial,
    shard-merge and resume guarantees rest on.
    """
    config = config_from_dict(payload["config"])
    history = run_experiment(config)
    summary = {
        "final_accuracy": history.final_accuracy(),
        "best_accuracy": history.best_accuracy(),
        "final_loss": history.losses()[-1] if history.records else None,
        "rounds": history.rounds,
    }
    if history.network_stats:
        # Non-synchronous cells report their delivery counters next to
        # the accuracies (synchronous cells stay byte-identical to the
        # pre-engine row layout).
        summary["network"] = dict(history.network_stats)
    if history.delivery_trace:
        # Compact per-round reading for the summary table; the full
        # trace rides along in the row's "history".
        from repro.analysis.reporting import delivery_trace_summary

        summary["trace"] = delivery_trace_summary(history.delivery_trace)
    if history.node_stats:
        # Per-node resolution (node_trace cells only): compact worst-node
        # reading in the summary, full per-node counters in "history".
        from repro.analysis.reporting import node_stats_summary

        summary["node"] = node_stats_summary(history.node_stats)
    if config.topology != "complete":
        # Sparse-topology cells carry the graph's shape next to the
        # delivery stats (and, with node_trace on, the per-node delivery
        # counters normalised by each node's closed degree).  Complete
        # cells elide the key entirely — row byte-identity again.
        from repro.analysis.reporting import topology_delivery_summary
        from repro.network.topology import make_topology
        from repro.utils.rng import stable_component_seed

        topology = make_topology(
            config.topology,
            config.num_clients,
            seed=stable_component_seed(config.seed, "topology", config.topology),
            **config.topology_kwargs,
        )
        summary["topology"] = topology_delivery_summary(
            topology, history.node_stats
        )
    return {
        "schema": ROW_SCHEMA_VERSION,
        "index": payload["index"],
        "cell_id": payload["cell_id"],
        "axes": payload["axes"],
        "config": payload["config"],
        "summary": summary,
        "history": history_to_dict(history),
    }


def grid_fingerprint(cells: Sequence) -> str:
    """Deterministic digest of a grid's full identity.

    Hashes every cell id and configuration plus the row schema version,
    so any spec revision (or schema bump) yields a new fingerprint.
    Used to namespace lease files: completion markers from a previous
    spec must never satisfy a different grid.
    """
    payload = json.dumps(
        [[cell.cell_id, config_to_dict(cell.config)] for cell in cells],
        sort_keys=True,
    )
    return sha1(f"v{ROW_SCHEMA_VERSION}\n{payload}".encode("utf-8")).hexdigest()


def row_matches_grid(row: dict, expected: Dict[str, dict]) -> bool:
    """Does a row belong to the grid it is being joined against?

    The single vetting rule shared by resume
    (:meth:`~repro.sweep.runner.SweepRunner.completed_rows`) and
    :func:`repro.sweep.merge.merge_shard_rows`: the row's cell id must
    be a grid cell, its schema the current version, and its embedded
    configuration identical to that cell's (``expected`` maps cell id to
    config dict).  Error rows *do* match — resume additionally rejects
    them (the cell re-runs), merge keeps them as last-resort
    placeholders.
    """
    cell_id = row.get("cell_id")
    return (
        isinstance(cell_id, str)
        and cell_id in expected
        and row.get("schema") == ROW_SCHEMA_VERSION
        and row.get("config") == expected[cell_id]
    )


def build_error_row(payload: dict, exc: BaseException, attempts: int) -> dict:
    """Placeholder row for a cell that kept raising.

    Carries the cell identity and configuration (so the row joins
    against the grid like any other) plus a versioned ``"error"``
    object.  Resume never trusts error rows — the failed cell re-runs on
    the next invocation.
    """
    tail = traceback.format_exception(type(exc), exc, exc.__traceback__)
    tail_lines = "".join(tail).rstrip("\n").splitlines()[-TRACEBACK_TAIL_LINES:]
    return {
        "schema": ROW_SCHEMA_VERSION,
        "index": payload["index"],
        "cell_id": payload["cell_id"],
        "axes": payload["axes"],
        "config": payload["config"],
        "error": {
            "schema": ERROR_ROW_SCHEMA_VERSION,
            "exception": f"{type(exc).__name__}: {exc}",
            "traceback": tail_lines,
            "attempts": attempts,
        },
    }


def execute_payload(payload: dict, max_retries: int = 0) -> dict:
    """Run one cell, retrying on failure; never raises.

    Success returns :func:`run_cell`'s row unchanged (byte-identical to
    the pre-backend runner).  After ``max_retries`` failed re-attempts
    the cell's exception is converted into an error row, so one bad cell
    cannot kill a worker pool hours into a sweep.  Module-level so
    ``functools.partial(execute_payload, max_retries=...)`` pickles into
    pool workers.
    """
    last: Optional[BaseException] = None
    attempts = max_retries + 1
    for attempt in range(attempts):
        try:
            return run_cell(payload)
        except Exception as exc:  # noqa: BLE001 - converted into an error row
            last = exc
            _logger.warning(
                "cell %s failed (attempt %d/%d): %s",
                payload["cell_id"], attempt + 1, attempts, exc,
            )
    assert last is not None
    return build_error_row(payload, last, attempts)


class ExecutionBackend:
    """Protocol every sweep execution backend implements.

    ``submit(payloads)`` returns an iterator of result rows.  When
    :attr:`exhaustive` is true the iterator yields exactly one row per
    payload, in submission order (serial / process pool); otherwise it
    yields only the rows this worker executed, as they complete (shard).
    ``stats()`` exposes lifecycle counters for CLI summaries, and
    ``close()`` releases any external resources.
    """

    #: Human-readable backend name (CLI ``--backend`` value).
    name = "?"
    #: One row per payload, in submission order?
    exhaustive = True
    #: Can the runner honour ``resume=False`` (re-run every cell)?
    #: Lease-mode sharding cannot: done markers in the shared lease dir
    #: would still suppress re-execution, silently yielding no rows.
    supports_no_resume = True
    #: Does this backend require the runner to stream rows to a file?
    #: Lease-mode sharding does: a done marker tells every other worker
    #: the row is durable *somewhere* — without an output file it would
    #: be durable nowhere and the cell lost to the whole fleet.
    requires_output_path = False

    def __init__(self, *, max_retries: int = 0) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = int(max_retries)
        self.grid_id: Optional[str] = None
        self._stats: Dict[str, int] = {"executed": 0, "failed": 0, "skipped": 0}

    def submit(self, payloads: Sequence[dict]) -> Iterator[dict]:
        raise NotImplementedError

    def bind_grid(self, fingerprint: str) -> None:
        """Hear the grid fingerprint before any cell state is touched.

        The runner calls this (with :func:`grid_fingerprint` of the full
        expansion) ahead of :meth:`note_completed`/:meth:`submit`; the
        lease-mode shard backend namespaces its lease files with it so a
        reused lease directory never satisfies a different spec.
        """
        self.grid_id = fingerprint

    def note_completed(self, cell_ids: Sequence[str]) -> None:
        """Hear about cells the runner resumed from its output file.

        Called before :meth:`submit` with the cells whose rows are
        already durable in this worker's stream.  Default: nothing to
        do; the lease-mode shard backend re-announces their done
        markers so peers stop waiting on leases a crashed predecessor
        left behind.
        """

    def stats(self) -> Dict[str, int]:
        """Counters: cells executed / failed here, cells skipped (other
        shards')."""
        return dict(self._stats)

    def close(self) -> None:
        """Release backend resources; the runner calls this after run().

        The built-in backends are stateless across submit (pools close
        inside ``submit`` itself), so the default is a no-op — but the
        hook is part of the protocol so resource-holding backends are
        not silently leaked by the runner.
        """

    def _record(self, row: dict) -> dict:
        self._stats["executed"] += 1
        if "error" in row:
            self._stats["failed"] += 1
        return row

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class SerialBackend(ExecutionBackend):
    """Run every cell in-process, one at a time."""

    name = "serial"

    def submit(self, payloads: Sequence[dict]) -> Iterator[dict]:
        for payload in payloads:
            yield self._record(execute_payload(payload, self.max_retries))


class ProcessPoolBackend(ExecutionBackend):
    """Run cells on a ``multiprocessing`` pool, consuming results in
    submission order (``imap``), so the streamed output is byte-identical
    to the serial backend for any worker count."""

    name = "process"

    def __init__(self, workers: int, *, max_retries: int = 0) -> None:
        super().__init__(max_retries=max_retries)
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = int(workers)

    def submit(self, payloads: Sequence[dict]) -> Iterator[dict]:
        if len(payloads) <= 1:
            # Not worth a pool; identical rows either way.
            for payload in payloads:
                yield self._record(execute_payload(payload, self.max_retries))
            return
        run = partial(execute_payload, max_retries=self.max_retries)
        # imap preserves submission order, so the streamed JSONL matches
        # the serial execution byte for byte even when cells finish out
        # of order.
        with multiprocessing.Pool(processes=min(self.workers, len(payloads))) as pool:
            for row in pool.imap(run, payloads):
                yield self._record(row)


# -- multi-host sharding -----------------------------------------------------

def assign_shard(index: int, shard_count: int) -> int:
    """Static cell→shard assignment: round-robin by grid index.

    A pure function of the grid expansion, so every worker derives the
    same partition for any shard count without coordination, and the
    shards stay balanced to within one cell.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be positive, got {shard_count}")
    return index % shard_count


def _lease_key(cell_id: str, namespace: str = "") -> str:
    """Filesystem-safe, collision-free key for a cell id.

    ``namespace`` (the grid fingerprint) is folded into the digest so a
    spec revision yields fresh keys: a reused lease directory can never
    satisfy a different grid with old completion markers.
    """
    digest = sha1(f"{namespace}\n{cell_id}".encode("utf-8")).hexdigest()[:10]
    readable = re.sub(r"[^A-Za-z0-9._=-]", "_", cell_id)[:80]
    return f"{readable}-{digest}"


class LeaseStore:
    """Atomic lease files coordinating dynamic cell claiming.

    Layout (one pair per cell, under the shared ``lease_dir``):

    - ``<key>.lease`` — created with ``O_EXCL`` by the claiming worker
      (atomic on a shared POSIX filesystem); holds owner + claim time.
    - ``<key>.done`` — written *after* the owner's row is durably in its
      shard file; holds ``{"ok": bool}`` so failed cells stay
      reclaimable.

    A lease with no done marker whose age exceeds ``timeout`` is
    **stale** (its owner is presumed dead) and may be taken over via an
    atomic ``os.replace`` followed by an ownership read-back.  The
    read-back closes most of the take-over race; the residual window can
    at worst run a cell twice on two hosts, which is harmless — cells
    are deterministic, and the merge step deduplicates by cell id.
    There is no heartbeat renewal, so ``timeout`` must exceed the
    slowest cell's runtime.

    Staleness uses two clocks: the lease file's mtime age (fast, but
    subject to cross-host clock skew on shared filesystems) *or* how
    long this worker has locally observed the same unchanged lease
    (monotonic, skew-free).  The second clock guarantees reclaim within
    ``timeout`` of first observation even when a skewed writer stamps
    lease mtimes in the future; skew in the other direction can at
    worst reclaim early, which degrades into the harmless duplicate-run
    case above.
    """

    def __init__(
        self,
        lease_dir: PathLike,
        *,
        owner: str,
        timeout: float,
        namespace: str = "",
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"lease timeout must be > 0, got {timeout}")
        self.root = Path(lease_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.owner = str(owner)
        self.timeout = float(timeout)
        #: Grid fingerprint folded into every key: markers written for a
        #: different spec (or schema version) are simply invisible here.
        self.namespace = str(namespace)
        #: When this store (≈ this worker's run) began: failures that
        #: predate it are immediately retryable, failures observed
        #: during our own run are another worker's fresh verdict.
        self.started_unix = time.time()
        # cell_id -> (lease mtime, local monotonic time first observed).
        self._observed: Dict[str, tuple] = {}

    # -- paths ---------------------------------------------------------------
    def lease_path(self, cell_id: str) -> Path:
        return self.root / f"{_lease_key(cell_id, self.namespace)}.lease"

    def done_path(self, cell_id: str) -> Path:
        return self.root / f"{_lease_key(cell_id, self.namespace)}.done"

    # -- state reads ---------------------------------------------------------
    def is_done(self, cell_id: str) -> bool:
        """True when some worker durably recorded this cell (ok or not)."""
        return self.done_path(cell_id).exists()

    def done_ok(self, cell_id: str) -> Optional[bool]:
        """The done marker's ok flag, or None when the cell is not done."""
        try:
            data = json.loads(self.done_path(cell_id).read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return bool(data.get("ok", False))

    def lease_owner(self, cell_id: str) -> Optional[str]:
        try:
            data = json.loads(self.lease_path(cell_id).read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            # A lease mid-write parses as garbage; treat as unknown owner.
            return None
        owner = data.get("owner")
        return str(owner) if owner is not None else None

    def is_stale(self, cell_id: str) -> bool:
        """Lease present, cell not done, and the lease older than timeout
        (by mtime age, or by how long *we* have watched it sit unchanged)."""
        lease = self.lease_path(cell_id)
        try:
            mtime = lease.stat().st_mtime
        except FileNotFoundError:
            self._observed.pop(cell_id, None)
            return False
        if self.is_done(cell_id):
            return False
        now_mono = time.monotonic()
        seen_mtime, first_seen = self._observed.get(cell_id, (None, None))
        if seen_mtime != mtime:
            # New or replaced lease: restart the local observation clock.
            self._observed[cell_id] = (mtime, now_mono)
            first_seen = now_mono
        return (
            time.time() - mtime > self.timeout
            or now_mono - first_seen > self.timeout
        )

    # -- transitions ---------------------------------------------------------
    def _lease_body(self) -> str:
        return json.dumps(
            {"owner": self.owner, "claimed_unix": time.time()}, sort_keys=True
        )

    def claim(self, cell_id: str) -> bool:
        """Try to take ownership of a cell; True means *run it*.

        Won when: the cell had no lease (fresh ``O_EXCL`` create), its
        lease went stale, its holder is a provably dead process on this
        host (a restarted worker reclaims its own crashed run's cells
        immediately instead of sitting out the timeout), or a previous
        attempt ended in an error row (``done.ok == false`` — the
        claimant retries the failure).
        """
        lease = self.lease_path(cell_id)
        ok = self.done_ok(cell_id)
        if ok:
            return False  # completed successfully elsewhere
        if ok is False:
            # A failed cell is retryable — but a failure recorded
            # *during our own run* is a peer's fresh verdict on the same
            # code: re-running it immediately would multiply the
            # advertised max_retries by the fleet size.  A failure that
            # predates this run (an operator re-running after a fix) or
            # has aged past the timeout is picked up at once.
            try:
                done_mtime = self.done_path(cell_id).stat().st_mtime
            except FileNotFoundError:
                done_mtime = 0.0
            fresh_verdict = (
                done_mtime >= self.started_unix
                and time.time() - done_mtime <= self.timeout
            )
            if fresh_verdict:
                return False
            return self._take_over(cell_id, clear_done=True)
        try:
            with lease.open("x", encoding="utf-8") as handle:
                handle.write(self._lease_body())
            return True
        except FileExistsError:
            pass
        holder = self.lease_owner(cell_id)
        if holder == self.owner:
            return True  # already ours (idempotent re-claim)
        if self.is_stale(cell_id) or _owner_is_dead_local_process(holder):
            return self._take_over(cell_id, clear_done=False)
        return False

    def _take_over(self, cell_id: str, *, clear_done: bool) -> bool:
        lease = self.lease_path(cell_id)
        temp = lease.with_name(f"{lease.name}.{_lease_key(self.owner)}.tmp")
        temp.write_text(self._lease_body(), encoding="utf-8")
        os.replace(temp, lease)
        if clear_done:
            try:
                self.done_path(cell_id).unlink()
            except FileNotFoundError:
                pass
        won = self.lease_owner(cell_id) == self.owner
        if won:
            _logger.info("reclaimed lease for cell %s", cell_id)
        return won

    def mark_done(self, cell_id: str, *, ok: bool) -> None:
        """Record a durably-written row (call *after* the JSONL append)."""
        done = self.done_path(cell_id)
        temp = done.with_name(f"{done.name}.{_lease_key(self.owner)}.tmp")
        temp.write_text(
            json.dumps(
                {"ok": bool(ok), "owner": self.owner, "done_unix": time.time()},
                sort_keys=True,
            ),
            encoding="utf-8",
        )
        os.replace(temp, done)


def default_owner_id() -> str:
    """Host + pid + thread identity for lease files.

    The thread id matters: two lease workers in one process (threads
    sharing a lease dir) must not see each other's leases as "already
    ours", or every cell would run twice.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{threading.get_ident()}"


def lease_keys_for_cells(cells: Sequence) -> Dict[str, str]:
    """Map each cell id to its lease-file key under the grid's namespace.

    The namespace is the grid fingerprint — the same one
    :class:`ShardBackend` folds into its :class:`LeaseStore` — so the
    returned keys are exactly the ``<key>.lease`` / ``<key>.done`` base
    names a sweep over ``cells`` produces.
    """
    namespace = grid_fingerprint(cells)
    return {cell.cell_id: _lease_key(cell.cell_id, namespace) for cell in cells}


def scan_lease_dir(lease_dir: PathLike, *, timeout: float = 300.0) -> dict:
    """Aggregate per-shard sweep progress from a lease directory.

    Reads every ``<key>.lease`` / ``<key>.done`` pair a
    :class:`LeaseStore` fleet has written and returns a JSON-safe
    summary: totals (``done_ok`` / ``done_failed`` / ``in_progress`` /
    ``stale``), a per-owner breakdown, and the per-key state mapping
    (``keys``) so callers holding the grid (via
    :func:`lease_keys_for_cells`) can compute unclaimed cells.  A lease
    without a done marker whose mtime age exceeds ``timeout`` counts as
    **stale** — its owner is presumed dead and any live worker will
    reclaim it.  Read-only: never mutates the directory, so it is safe
    to run next to an active fleet.
    """
    root = Path(lease_dir)
    if not root.is_dir():
        raise FileNotFoundError(f"lease dir {root} does not exist")
    if timeout <= 0:
        raise ValueError(f"lease timeout must be > 0, got {timeout}")
    now = time.time()
    leases: Dict[str, dict] = {}
    dones: Dict[str, dict] = {}
    for path in sorted(root.iterdir()):
        name = path.name
        if name.endswith(".tmp"):
            continue  # a writer mid-os.replace
        if name.endswith(".lease"):
            key = name[: -len(".lease")]
            try:
                age = max(0.0, now - path.stat().st_mtime)
            except FileNotFoundError:
                continue  # released between listing and stat
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                data = {}  # mid-write; owner unknown
            owner = data.get("owner")
            leases[key] = {
                "owner": str(owner) if owner is not None else None,
                "age": age,
            }
        elif name.endswith(".done"):
            key = name[: -len(".done")]
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                data = {}
            owner = data.get("owner")
            dones[key] = {
                "ok": bool(data.get("ok", False)),
                "owner": str(owner) if owner is not None else None,
            }

    owners: Dict[str, Dict[str, int]] = {}

    def owner_row(owner: Optional[str]) -> Dict[str, int]:
        return owners.setdefault(
            owner or "<unknown>",
            {"claimed": 0, "stale": 0, "done_ok": 0, "done_failed": 0},
        )

    keys: Dict[str, str] = {}
    totals = {"done_ok": 0, "done_failed": 0, "in_progress": 0, "stale": 0}
    for key, entry in dones.items():
        row = owner_row(entry["owner"])
        if entry["ok"]:
            totals["done_ok"] += 1
            row["done_ok"] += 1
            keys[key] = "done"
        else:
            totals["done_failed"] += 1
            row["done_failed"] += 1
            keys[key] = "failed"
    for key, entry in leases.items():
        if key in dones:
            continue
        row = owner_row(entry["owner"])
        row["claimed"] += 1
        totals["in_progress"] += 1
        if entry["age"] > timeout:
            totals["stale"] += 1
            row["stale"] += 1
            keys[key] = "stale"
        else:
            keys[key] = "claimed"
    return {
        "lease_dir": str(root),
        "timeout": float(timeout),
        **totals,
        "owners": {name: owners[name] for name in sorted(owners)},
        "keys": keys,
    }


def _owner_is_dead_local_process(owner: Optional[str]) -> bool:
    """True only when ``owner`` names a provably dead pid on *this* host.

    Owner ids from :func:`default_owner_id` look like
    ``host:pid:thread``; anything else (custom owners, other hosts,
    pid-reuse ambiguity) conservatively returns False and leaves
    reclaim to the staleness timeout.
    """
    if not owner:
        return False
    parts = owner.rsplit(":", 2)
    if len(parts) != 3:
        return False
    host, pid_text, _thread = parts
    if host != socket.gethostname() or not pid_text.isdigit():
        return False
    pid = int(pid_text)
    if pid == os.getpid():
        return False  # our own process — alive by definition
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False  # alive, owned by another user
    return False


class ShardBackend(ExecutionBackend):
    """One worker of a multi-host sweep.

    Exactly one of the two modes is active:

    - **static** — ``shard_index``/``shard_count`` given: this worker
      runs the cells :func:`assign_shard` maps to its index.  No shared
      state, no coordination; every worker must be launched with the
      same grid and a distinct index.
    - **lease** — ``lease_dir`` given: workers race to claim cells
      through a shared :class:`LeaseStore`; faster hosts simply claim
      more cells, and cells leased by a worker that died are reclaimed
      after ``lease_timeout`` seconds.

    Rows are yielded as executed (grid order in static mode; claim order
    in lease mode), each destined for this worker's *own* shard JSONL;
    ``repro.sweep.merge`` rebuilds the canonical single-host stream.
    """

    name = "shard"
    exhaustive = False

    def __init__(
        self,
        *,
        shard_index: Optional[int] = None,
        shard_count: Optional[int] = None,
        lease_dir: Optional[PathLike] = None,
        lease_timeout: float = 300.0,
        poll_interval: Optional[float] = None,
        owner: Optional[str] = None,
        max_retries: int = 0,
    ) -> None:
        super().__init__(max_retries=max_retries)
        static = shard_index is not None or shard_count is not None
        if static == (lease_dir is not None):
            raise ValueError(
                "shard backend needs exactly one mode: shard_index/shard_count "
                "(static) or lease_dir (dynamic)"
            )
        if static:
            if shard_index is None or shard_count is None:
                raise ValueError("static mode needs both shard_index and shard_count")
            if not 0 <= shard_index < shard_count:
                raise ValueError(
                    f"shard_index must be in [0, {shard_count}), got {shard_index}"
                )
            self.shard_index: Optional[int] = int(shard_index)
            self.shard_count: Optional[int] = int(shard_count)
            self.lease_dir: Optional[Path] = None
        else:
            if lease_timeout <= 0:
                raise ValueError(f"lease timeout must be > 0, got {lease_timeout}")
            self.shard_index = None
            self.shard_count = None
            self.lease_dir = Path(lease_dir)  # type: ignore[arg-type]
            # Cell completion lives in the shared lease dir, not just in
            # this worker's file, so a local "re-run everything" request
            # cannot be honoured (the operator clears the lease dir),
            # and rows must be streamed to a file before cells are
            # marked done for the rest of the fleet.
            self.supports_no_resume = False
            self.requires_output_path = True
        self.lease_timeout = float(lease_timeout)
        self.owner = owner
        #: Created on first submit so that merely *constructing* the
        #: backend (e.g. CLI flag validation under --dry-run) never
        #: touches the shared lease directory.
        self.store: Optional[LeaseStore] = None
        self.poll_interval = (
            float(poll_interval)
            if poll_interval is not None
            else min(1.0, lease_timeout / 5.0)
        )

    def _ensure_store(self) -> LeaseStore:
        if self.store is None:
            self.store = LeaseStore(
                self.lease_dir,  # type: ignore[arg-type]
                owner=self.owner if self.owner is not None else default_owner_id(),
                timeout=self.lease_timeout,
                namespace=self.grid_id or "",
            )
        return self.store

    def note_completed(self, cell_ids: Sequence[str]) -> None:
        """Re-announce done markers for cells resumed from our own file.

        A worker that crashed between the JSONL append and ``mark_done``
        resumes the row on restart but would otherwise leave the shared
        lease unmarked — peers would sit out the full lease timeout and
        then re-run a cell whose row already exists.  The rows are
        durable in this worker's stream, so marking them done is the
        promise the protocol wants; if a peer already reclaimed and is
        mid-re-run, the duplicate row is identical and merge dedups it.
        """
        if self.lease_dir is None or not cell_ids:
            return
        store = self._ensure_store()
        for cell_id in cell_ids:
            if not store.is_done(cell_id):
                store.claim(cell_id)  # best effort; done is what matters
                store.mark_done(cell_id, ok=True)

    def submit(self, payloads: Sequence[dict]) -> Iterator[dict]:
        if self.lease_dir is None:
            yield from self._submit_static(payloads)
        else:
            self._ensure_store()
            yield from self._submit_leased(payloads)

    def _submit_static(self, payloads: Sequence[dict]) -> Iterator[dict]:
        assert self.shard_index is not None and self.shard_count is not None
        for payload in payloads:
            if assign_shard(payload["index"], self.shard_count) != self.shard_index:
                self._stats["skipped"] += 1
                continue
            yield self._record(execute_payload(payload, self.max_retries))

    def _submit_leased(self, payloads: Sequence[dict]) -> Iterator[dict]:
        """Claim-execute-mark loop until every payload is accounted for.

        The done marker is written *after* ``yield`` hands the row to
        the runner, which appends and flushes it to this worker's shard
        file first — so a crash between claim and write leaves a lease
        that goes stale and is reclaimed, never a done cell without a
        row.  Each worker attempts a given cell at most once per run.
        """
        store = self.store
        assert store is not None
        outstanding: Dict[str, dict] = {p["cell_id"]: p for p in payloads}
        while outstanding:
            progressed = False
            for cell_id in list(outstanding):
                payload = outstanding[cell_id]
                if store.claim(cell_id):
                    row = self._record(
                        execute_payload(payload, self.max_retries)
                    )
                    yield row  # runner appends + flushes before we resume
                    store.mark_done(cell_id, ok="error" not in row)
                    del outstanding[cell_id]
                    progressed = True
                elif store.is_done(cell_id):
                    # Another worker finished it (its row lives in that
                    # worker's shard file; merge folds them together).
                    self._stats["skipped"] += 1
                    del outstanding[cell_id]
                    progressed = True
            if outstanding and not progressed:
                # Everything left is leased by live peers; wait for done
                # markers or for a lease to go stale.
                time.sleep(self.poll_interval)


def make_backend(
    name: str,
    *,
    workers: int = 1,
    max_retries: int = 0,
    shard_index: Optional[int] = None,
    shard_count: Optional[int] = None,
    lease_dir: Optional[PathLike] = None,
    lease_timeout: float = 300.0,
    owner: Optional[str] = None,
) -> ExecutionBackend:
    """Build a backend by CLI name (see :data:`BACKEND_NAMES`)."""
    if name == "serial":
        return SerialBackend(max_retries=max_retries)
    if name == "process":
        return ProcessPoolBackend(workers, max_retries=max_retries)
    if name == "shard":
        return ShardBackend(
            shard_index=shard_index,
            shard_count=shard_count,
            lease_dir=lease_dir,
            lease_timeout=lease_timeout,
            owner=owner,
            max_retries=max_retries,
        )
    raise ValueError(f"unknown backend {name!r}; available: {BACKEND_NAMES}")


__all__ = [
    "BACKEND_NAMES",
    "ERROR_ROW_SCHEMA_VERSION",
    "ROW_SCHEMA_VERSION",
    "ExecutionBackend",
    "LeaseStore",
    "ProcessPoolBackend",
    "SerialBackend",
    "ShardBackend",
    "assign_shard",
    "build_error_row",
    "default_owner_id",
    "execute_payload",
    "grid_fingerprint",
    "make_backend",
    "row_matches_grid",
    "run_cell",
]
