"""Declarative scenario grids.

The paper's figures are grids of experiments — setting × heterogeneity ×
attack × aggregation rule — but :class:`ExperimentConfig` describes one
cell at a time.  :class:`ScenarioGrid` expands a base configuration plus
a mapping of axis specs (``{"heterogeneity": ["uniform", "extreme"],
"aggregation": ["krum", "box-geom"]}``) into the full Cartesian product
of configurations, each with:

- a stable, human-readable **cell id** built from its axis values, and
- a **deterministic per-cell seed** derived from the base seed and the
  cell id via :func:`repro.utils.rng.stable_component_seed`, so cells
  are decorrelated from each other yet identical across runs, worker
  counts and resumes.

Grids are JSON-serialisable ("spec" files) so sweeps can be launched
from the command line: ``python -m repro.cli sweep spec.json``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.learning.experiment import ExperimentConfig
from repro.utils.rng import stable_component_seed
from repro.utils.validation import require

#: Field names an axis may vary (everything the config dataclass has).
CONFIG_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(ExperimentConfig)
)


def config_to_dict(config: ExperimentConfig) -> dict:
    """JSON-safe dictionary form of a configuration (tuples become lists)."""
    data = dataclasses.asdict(config)
    data["mlp_hidden"] = list(data["mlp_hidden"])
    data["crash_schedule"] = [list(window) for window in data["crash_schedule"]]
    # Elide the node_trace flag at its default so serialised configs —
    # and the sweep rows embedding them — stay byte-identical to the
    # pre-flag format (row byte-identity is a pinned-fixture contract).
    if not data.get("node_trace"):
        data.pop("node_trace", None)
    # Same contract for the topology/exchange axes: a complete-topology
    # agreement config serialises exactly as it did before the fields
    # existed, so pinned sweep-row fixtures and resume files from older
    # runs stay byte-identical and loadable.
    if data.get("topology") == "complete":
        data.pop("topology", None)
        data.pop("topology_kwargs", None)
    elif not data.get("topology_kwargs"):
        data.pop("topology_kwargs", None)
    if data.get("exchange") == "agreement":
        data.pop("exchange", None)
    # And for the rng_mode axis: scalar is the bitwise default, so
    # scalar-mode configs serialise exactly as pre-axis ones.
    if data.get("rng_mode") == "scalar":
        data.pop("rng_mode", None)
    return data


def config_from_dict(data: Mapping[str, object]) -> ExperimentConfig:
    """Inverse of :func:`config_to_dict`; validates field names."""
    unknown = sorted(set(data) - set(CONFIG_FIELDS))
    if unknown:
        raise ValueError(f"unknown ExperimentConfig fields: {unknown}")
    kwargs = dict(data)
    if "mlp_hidden" in kwargs:
        hidden = kwargs["mlp_hidden"]
        if isinstance(hidden, (str, bytes)) or not hasattr(hidden, "__iter__"):
            raise ValueError(
                f"mlp_hidden must be a sequence of layer sizes, got {hidden!r}"
            )
        kwargs["mlp_hidden"] = tuple(hidden)
    if "crash_schedule" in kwargs:
        schedule = kwargs["crash_schedule"]
        if isinstance(schedule, (str, bytes)) or not hasattr(schedule, "__iter__"):
            raise ValueError(
                f"crash_schedule must be a sequence of (node, start, stop) windows, "
                f"got {schedule!r}"
            )
        kwargs["crash_schedule"] = tuple(tuple(window) for window in schedule)
    return ExperimentConfig(**kwargs)  # type: ignore[arg-type]


def escape_axis_value(text: str) -> str:
    """Percent-encode the cell-id separators inside one axis value.

    Cell ids join ``name=value`` pairs with ``/``, so a value containing
    ``/`` or ``=`` (a fraction like ``"1/4"``, a dataset path, a kwargs
    dict) would otherwise produce an *ambiguous* id — aliasing derived
    per-cell seeds, lease keys and resume dedup.  Only the three
    characters that break parsing are touched (``%`` first, as the
    escape introducer), so every id that never needed escaping is
    byte-identical to the historical format.
    """
    return text.replace("%", "%25").replace("/", "%2F").replace("=", "%3D")


def unescape_axis_value(text: str) -> str:
    """Inverse of :func:`escape_axis_value` (``%25`` decoded last)."""
    return text.replace("%2F", "/").replace("%3D", "=").replace("%25", "%")


def parse_cell_id(cell_id: str) -> Dict[str, str]:
    """Split a cell id back into its ``{axis name: value string}`` pairs.

    Values come back *unescaped*, i.e. as :func:`_format_axis_value`
    rendered them before escaping.  Legacy ids whose values embed raw
    ``/`` or ``=`` cannot be parsed unambiguously — consumers should
    prefer a row's ``"axes"`` mapping and treat this as a fallback (see
    :func:`repro.analysis.reporting.sweep_summary_table`).
    """
    pairs: Dict[str, str] = {}
    for part in cell_id.split("/"):
        name, _, value = part.partition("=")
        pairs[unescape_axis_value(name)] = unescape_axis_value(value)
    return pairs


def _format_axis_value(value: object) -> str:
    """Render one axis value for a cell id (`None` means "no attack").

    Nested sequences (a ``crash_schedule`` axis value is a list of
    windows) join the inner level with ``-``: ``[[2, 0, 3]]`` becomes
    ``2-0-3``.  The rendered text is escaped via
    :func:`escape_axis_value` so the cell-id separators ``/`` and ``=``
    never leak out of a value.
    """
    if value is None:
        return "none"
    if isinstance(value, (list, tuple)):
        rendered = "x".join(
            "-".join(str(u) for u in v) if isinstance(v, (list, tuple)) else str(v)
            for v in value
        )
    else:
        rendered = str(value)
    return escape_axis_value(rendered)


@dataclass(frozen=True)
class SweepCell:
    """One cell of a scenario grid: a ready-to-run configuration.

    Attributes
    ----------
    index:
        Position in the grid's deterministic expansion order.
    cell_id:
        Stable identifier built from the axis values, used for resume
        bookkeeping and result joins.
    axes:
        The axis values this cell was expanded from.
    config:
        The fully materialised experiment configuration (per-cell seed
        already applied).
    """

    index: int
    cell_id: str
    axes: Dict[str, object]
    config: ExperimentConfig


class ScenarioGrid:
    """Cartesian product of axis specs over a base configuration.

    Parameters
    ----------
    base:
        Configuration every cell starts from.
    axes:
        Mapping from :class:`ExperimentConfig` field name to the
        sequence of values that axis takes.  Axis order (insertion
        order) fixes the expansion order: the last axis varies fastest,
        like :func:`itertools.product`.
    derive_seeds:
        With the default ``True``, each cell's seed is derived from the
        base seed and the cell id, decorrelating the cells.  Pass
        ``False`` for *paired* comparisons — every cell then keeps the
        base seed, so e.g. all aggregation rules of one figure panel
        train on identical data, partitions and initial weights.
        Ignored for the ``seed`` axis itself.
    """

    def __init__(
        self,
        base: ExperimentConfig,
        axes: Mapping[str, Sequence[object]],
        *,
        derive_seeds: bool = True,
    ) -> None:
        require(len(axes) > 0, "a scenario grid needs at least one axis")
        self.axes: Dict[str, List[object]] = {}
        for name, values in axes.items():
            require(name in CONFIG_FIELDS,
                    f"unknown axis {name!r}; valid axes: {sorted(CONFIG_FIELDS)}")
            if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
                raise ValueError(
                    f"axis {name!r} must be a sequence of values, got {values!r}"
                )
            seq = list(values)
            require(len(seq) > 0, f"axis {name!r} has no values")
            require(len(set(map(repr, seq))) == len(seq),
                    f"axis {name!r} contains duplicate values")
            self.axes[name] = seq
        self.base = base
        self.derive_seeds = bool(derive_seeds)

    def __len__(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def axis_names(self) -> List[str]:
        """Axis names in expansion order."""
        return list(self.axes)

    def cell_id(self, overrides: Mapping[str, object]) -> str:
        """Cell id for one combination of axis values."""
        return "/".join(
            f"{name}={_format_axis_value(overrides[name])}" for name in self.axes
        )

    def cells(self) -> List[SweepCell]:
        """Expand the grid into its deterministic list of cells.

        Unless ``seed`` is itself an axis (or ``derive_seeds`` is off),
        each cell's seed is derived from the base seed and the cell id,
        so results are reproducible but cells do not share random
        streams.
        """
        names = self.axis_names()
        cells: List[SweepCell] = []
        seen: Dict[str, tuple] = {}
        for index, combo in enumerate(product(*self.axes.values())):
            overrides = dict(zip(names, combo))
            cell_id = self.cell_id(overrides)
            # Collision guard: distinct combos must yield distinct ids.
            # Escaping removes separator ambiguity, but two values can
            # still *render* identically (e.g. the int 1 and the string
            # "1" on different axes); seeds, leases and resume all key
            # on the id, so aliasing would silently drop cells.
            if cell_id in seen:
                raise ValueError(
                    f"cell id collision: combos {seen[cell_id]!r} and "
                    f"{combo!r} both render as {cell_id!r}; make the axis "
                    f"values render distinctly"
                )
            seen[cell_id] = combo
            if self.derive_seeds and "seed" not in overrides:
                overrides["seed"] = stable_component_seed(
                    self.base.seed, "sweep-cell", cell_id
                )
            config = self.base.with_overrides(**overrides)
            cells.append(
                SweepCell(
                    index=index,
                    cell_id=cell_id,
                    axes=dict(zip(names, combo)),
                    config=config,
                )
            )
        return cells

    def validate(self) -> List[SweepCell]:
        """Expand the grid and fail fast on anything a cell run would hit.

        :meth:`cells` already applies :class:`ExperimentConfig`'s own
        field validation; this additionally resolves the aggregation /
        attack names against their registries, so a typo'd rule name
        surfaces before the sweep starts instead of crashing some cell
        hours in.  Returns the validated cells.
        """
        from repro.aggregation.registry import available_rules
        from repro.agreement.registry import available_algorithms
        from repro.byzantine.registry import available_attacks

        cells = self.cells()
        for cell in cells:
            config = cell.config
            known = (
                available_rules()
                if config.setting == "centralized"
                else available_algorithms()
            )
            if config.aggregation not in known:
                raise ValueError(
                    f"cell {cell.cell_id!r}: unknown {config.setting} aggregation "
                    f"{config.aggregation!r}; available: {known}"
                )
            if config.attack is not None and config.attack not in available_attacks():
                raise ValueError(
                    f"cell {cell.cell_id!r}: unknown attack {config.attack!r}; "
                    f"available: {available_attacks()}"
                )
        return cells

    # -- (de)serialisation ---------------------------------------------------
    def to_spec(self) -> dict:
        """JSON-safe specification (inverse of :meth:`from_spec`)."""
        spec = {"base": config_to_dict(self.base), "axes": dict(self.axes)}
        if not self.derive_seeds:
            spec["derive_seeds"] = False
        return spec

    @classmethod
    def from_spec(cls, spec: Mapping[str, object]) -> "ScenarioGrid":
        """Build a grid from a spec dictionary.

        The spec keys: ``"base"`` — any subset of
        :class:`ExperimentConfig` fields (missing fields take the config
        defaults) — ``"axes"`` — the axis mapping — and optionally
        ``"derive_seeds"`` (default true).
        """
        if not isinstance(spec, Mapping):
            raise ValueError("sweep spec must be a JSON object")
        unknown = sorted(set(spec) - {"base", "axes", "derive_seeds"})
        if unknown:
            raise ValueError(f"unknown sweep spec keys: {unknown}")
        axes = spec.get("axes")
        if not isinstance(axes, Mapping) or not axes:
            raise ValueError('sweep spec needs a non-empty "axes" mapping')
        base_data = spec.get("base", {})
        if not isinstance(base_data, Mapping):
            raise ValueError('sweep spec "base" must be an object')
        derive_seeds = spec.get("derive_seeds", True)
        if not isinstance(derive_seeds, bool):
            raise ValueError('sweep spec "derive_seeds" must be a boolean')
        base = config_from_dict(base_data)
        return cls(base, axes, derive_seeds=derive_seeds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = " x ".join(f"{name}[{len(v)}]" for name, v in self.axes.items())
        return f"ScenarioGrid({shape}, {len(self)} cells)"
