"""Folding per-shard sweep files into the canonical single-host stream.

A multi-host sweep leaves one JSONL file per shard worker, each holding
the rows that worker executed (plus, under lease mode, possibly a few
duplicates from reclaim races and error rows from failed attempts).
:func:`merge_shard_rows` rebuilds the exact stream a single-host run
would have produced:

- rows are deduplicated by cell id (a successful row always beats an
  error row; among equals the later file wins, mirroring the runner's
  own fresh-row-wins read-back),
- sorted into grid order by their ``index``, and
- verified for completeness (every grid cell when a spec is supplied;
  contiguous indices otherwise).

Because cells are deterministic and every JSONL writer serialises with
:func:`repro.io.jsonl.dump_row` (sorted keys, non-finite floats nulled),
the merged file is **byte-for-byte identical** to the single-host run —
reporting and ``rows_to_histories`` consume it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.io.jsonl import iter_jsonl, write_jsonl
from repro.sweep.executors import row_matches_grid
from repro.sweep.grid import ScenarioGrid, config_to_dict

PathLike = Union[str, Path]


@dataclass
class MergeReport:
    """What a merge saw: totals for logging and CI assertions."""

    rows_read: int = 0
    cells: int = 0
    failed: int = 0
    duplicates: int = 0
    stale: int = 0
    renumbered: int = 0
    missing: List[str] = field(default_factory=list)


def _better(current: Optional[dict], candidate: dict) -> dict:
    """Pick the surviving row for one cell id (success > error; later wins)."""
    if current is None:
        return candidate
    if ("error" in current) and ("error" not in candidate):
        return candidate
    if ("error" not in current) and ("error" in candidate):
        return current
    return candidate


def merge_shard_rows(
    paths: Sequence[PathLike],
    *,
    grid: Optional[ScenarioGrid] = None,
    require_complete: bool = True,
) -> tuple:
    """Merge shard JSONL files into grid-ordered rows.

    Returns ``(rows, report)``.  With ``grid``, rows are additionally
    vetted the way resume vets them (schema version and configuration
    must match the grid — stale rows from an older spec are dropped) and
    completeness means *every* cell of the grid; without it, rows are
    taken at face value and completeness means contiguous indices —
    which cannot detect a truncated *tail* (missing cells above the
    highest observed index), so pass ``grid`` whenever the spec is
    available.  ``require_complete`` turns missing cells into a
    ``ValueError`` (otherwise they are just listed in the report).

    The winning rows are held in memory until written — the same
    profile as a single-host ``SweepRunner.run()``, which returns every
    row as a list (lease-mode shard files arrive in claim order, so a
    streaming k-way merge is not possible anyway).
    """
    expected: Optional[Dict[str, dict]] = None
    order: Optional[Dict[str, int]] = None
    if grid is not None:
        cells = grid.validate()
        expected = {cell.cell_id: config_to_dict(cell.config) for cell in cells}
        order = {cell.cell_id: cell.index for cell in cells}

    report = MergeReport()
    merged: Dict[str, dict] = {}
    for path in paths:
        for row in iter_jsonl(path):
            report.rows_read += 1
            cell_id = row.get("cell_id")
            if not isinstance(cell_id, str) or not isinstance(row.get("index"), int):
                report.stale += 1
                continue
            if expected is not None and not row_matches_grid(row, expected):
                report.stale += 1
                continue
            if cell_id in merged:
                report.duplicates += 1
            merged[cell_id] = _better(merged.get(cell_id), row)

    if order is not None:
        # Stamp the *grid's* enumeration over the rows' embedded
        # indices: reordering values within an axis keeps every cell id
        # and config — so old rows pass vetting — but renumbers the
        # cells.  Normalising here keeps the merged file byte-identical
        # to a fresh single-host run of the edited spec.
        for cell_id, row in list(merged.items()):
            if row["index"] != order[cell_id]:
                merged[cell_id] = dict(row, index=order[cell_id])
                report.renumbered += 1
    rows = sorted(merged.values(), key=lambda row: row["index"])
    report.cells = len(rows)
    report.failed = sum(1 for row in rows if "error" in row)
    if require_complete and not rows and order is None:
        # Without a grid an empty merge would vacuously satisfy the
        # contiguity check — but zero rows is never a complete sweep.
        raise ValueError(
            f"merged zero rows from {len(paths)} shard file(s); pass a "
            f"spec to verify completeness or allow_incomplete to accept"
        )
    if order is not None:
        report.missing = sorted(
            set(order) - set(merged), key=lambda cell_id: order[cell_id]
        )
    else:
        indices = {row["index"] for row in rows}
        report.missing = [
            f"index={i}" for i in range(max(indices, default=-1) + 1)
            if i not in indices
        ]
    if require_complete and report.missing:
        raise ValueError(
            f"merge is missing {len(report.missing)} cell(s): "
            + ", ".join(report.missing[:5])
            + ("..." if len(report.missing) > 5 else "")
        )
    return rows, report


def merge_shards(
    paths: Sequence[PathLike],
    output_path: PathLike,
    *,
    grid: Optional[ScenarioGrid] = None,
    require_complete: bool = True,
) -> MergeReport:
    """Merge shard files and write the canonical grid-order JSONL.

    The output is byte-identical to a single-host run of the same grid
    (same rows, same order, same serialisation).
    """
    rows, report = merge_shard_rows(
        paths, grid=grid, require_complete=require_complete
    )
    write_jsonl(output_path, rows)
    return report


__all__ = ["MergeReport", "merge_shard_rows", "merge_shards"]
