"""Batched execution of scenario grids.

:class:`SweepRunner` executes every cell of a :class:`ScenarioGrid`,
either serially or on a ``multiprocessing`` worker pool, and streams one
JSONL row per completed cell.  Three properties make sweeps safe to run
at scale:

- **Determinism** — each cell's experiment is fully determined by its
  configuration (which embeds a per-cell seed), so a sweep produces the
  same rows for any worker count.  Results are consumed in submission
  order, so the output file is byte-for-byte identical as well.
- **Streaming** — a row is appended and flushed as soon as its cell
  finishes; an interrupt loses at most the cells in flight.
- **Resume** — rows already present in the output file are trusted
  (matched by cell id *and* configuration) and their cells skipped, so
  re-running the same command after an interrupt completes the sweep
  instead of restarting it.

Cells sharing their data axes (dataset, sample budget, heterogeneity,
partition seed) reuse one in-process build of the dataset and client
shards (see ``repro.learning.experiment.data_cache_stats``); builds are
pure functions of those axes, so the streamed rows are byte-identical
with the cache hot or cold.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.io.jsonl import append_jsonl, read_jsonl, truncate_partial_tail
from repro.io.results import history_from_dict, history_to_dict
from repro.learning.experiment import run_experiment
from repro.learning.history import TrainingHistory
from repro.sweep.grid import ScenarioGrid, SweepCell, config_from_dict, config_to_dict
from repro.utils.logging import get_logger

_logger = get_logger("sweep.runner")

#: Bumped when the row layout changes incompatibly.
#: v2: corrected delivery accounting (crashed senders are `suppressed`,
#: not `sent`; in-flight messages expire as `expired_at_reset`, not
#: `dropped`; drop RNG decoupled from crash schedules) plus per-round
#: delivery traces (`history.delivery_trace`, `summary.trace`).  Rows
#: written by earlier versions are re-run on resume.
ROW_SCHEMA_VERSION = 2

PathLike = Union[str, Path]


def run_cell(payload: dict) -> dict:
    """Execute one grid cell and build its result row.

    Module-level (not a closure) so ``multiprocessing`` can ship it to
    worker processes under any start method.  The row is a pure function
    of the cell's configuration — the property the parallel == serial
    and resume guarantees rest on.
    """
    config = config_from_dict(payload["config"])
    history = run_experiment(config)
    summary = {
        "final_accuracy": history.final_accuracy(),
        "best_accuracy": history.best_accuracy(),
        "final_loss": history.losses()[-1] if history.records else None,
        "rounds": history.rounds,
    }
    if history.network_stats:
        # Non-synchronous cells report their delivery counters next to
        # the accuracies (synchronous cells stay byte-identical to the
        # pre-engine row layout).
        summary["network"] = dict(history.network_stats)
    if history.delivery_trace:
        # Compact per-round reading for the summary table; the full
        # trace rides along in the row's "history".
        from repro.analysis.reporting import delivery_trace_summary

        summary["trace"] = delivery_trace_summary(history.delivery_trace)
    return {
        "schema": ROW_SCHEMA_VERSION,
        "index": payload["index"],
        "cell_id": payload["cell_id"],
        "axes": payload["axes"],
        "config": payload["config"],
        "summary": summary,
        "history": history_to_dict(history),
    }


def rows_to_histories(rows: List[dict]) -> Dict[str, TrainingHistory]:
    """Reconstruct the per-cell training histories, keyed by cell id."""
    return {
        row["cell_id"]: history_from_dict(row["history"])
        for row in rows
        if "history" in row
    }


class SweepRunner:
    """Executes a scenario grid with optional parallelism and resume.

    Parameters
    ----------
    grid:
        The scenario grid to run.
    workers:
        1 (default) runs cells in-process; larger values use a
        ``multiprocessing`` pool of that size.  Either way results are
        consumed in cell order, so the streamed output is identical.
    output_path:
        Optional JSONL file to stream rows to.  Required for resume.
    resume:
        When true (default) and ``output_path`` exists, rows whose cell
        id and configuration match the current grid are reused and their
        cells skipped.
    on_cell:
        Optional callback ``(cell, row, reused)`` fired per completed
        cell — the CLI uses it for progress output.
    """

    def __init__(
        self,
        grid: ScenarioGrid,
        *,
        workers: int = 1,
        output_path: Optional[PathLike] = None,
        resume: bool = True,
        on_cell: Optional[Callable[[SweepCell, dict, bool], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.grid = grid
        self.workers = int(workers)
        self.output_path = None if output_path is None else Path(output_path)
        self.resume = bool(resume)
        self.on_cell = on_cell

    # -- resume bookkeeping --------------------------------------------------
    def completed_rows(
        self, cells: Optional[List[SweepCell]] = None
    ) -> Dict[str, dict]:
        """Rows already present in the output file, keyed by cell id.

        Only rows whose configuration matches the current grid count as
        completed; a row from an older spec with the same cell id is
        ignored (its cell re-runs and the fresh row wins on read-back).
        ``cells`` optionally supplies the already-expanded grid.
        """
        if not self.resume or self.output_path is None or not self.output_path.exists():
            return {}
        if cells is None:
            cells = self.grid.cells()
        expected = {cell.cell_id: config_to_dict(cell.config) for cell in cells}
        completed: Dict[str, dict] = {}
        for row in read_jsonl(self.output_path):
            cell_id = row.get("cell_id")
            if (
                isinstance(cell_id, str)
                and cell_id in expected
                and row.get("schema") == ROW_SCHEMA_VERSION
                and row.get("config") == expected[cell_id]
            ):
                completed[cell_id] = row
        return completed

    # -- execution -----------------------------------------------------------
    def run(self) -> List[dict]:
        """Run every pending cell; return all rows in grid order."""
        cells = self.grid.validate()  # fail fast before any cell runs
        completed = self.completed_rows(cells)
        if self.output_path is not None and self.output_path.exists():
            if self.resume:
                # An interrupted writer may have left a partial final
                # line; drop those bytes so appended rows start clean.
                truncate_partial_tail(self.output_path)
            else:
                # Resume is off: start the stream fresh instead of
                # appending duplicate rows after the existing ones.
                self.output_path.write_text("")
        pending = [cell for cell in cells if cell.cell_id not in completed]
        if completed:
            _logger.info(
                "resuming sweep: %d/%d cells already completed",
                len(completed), len(cells),
            )

        rows_by_id = dict(completed)
        results = self._results(pending)
        # Walk the grid in order so progress callbacks (fresh and
        # cached alike) fire immediately and with monotonic indices;
        # pending results arrive in this same order from _results.
        for cell in cells:
            if cell.cell_id in completed:
                row, reused = completed[cell.cell_id], True
            else:
                row, reused = next(results), False
                if self.output_path is not None:
                    append_jsonl(self.output_path, row)
                rows_by_id[cell.cell_id] = row
            if self.on_cell is not None:
                self.on_cell(cell, row, reused)
        return [rows_by_id[cell.cell_id] for cell in cells]

    def _results(self, pending: List[SweepCell]):
        """Yield result rows for the pending cells, in submission order."""
        payloads = [
            {
                "index": cell.index,
                "cell_id": cell.cell_id,
                "axes": cell.axes,
                "config": config_to_dict(cell.config),
            }
            for cell in pending
        ]
        if self.workers == 1 or len(pending) <= 1:
            for payload in payloads:
                yield run_cell(payload)
            return
        # imap preserves submission order, so the streamed JSONL matches
        # the serial execution byte for byte even when cells finish out
        # of order.
        with multiprocessing.Pool(processes=min(self.workers, len(pending))) as pool:
            yield from pool.imap(run_cell, payloads)
