"""Batched execution of scenario grids.

:class:`SweepRunner` executes every cell of a :class:`ScenarioGrid`
through a pluggable :class:`~repro.sweep.executors.ExecutionBackend`
(serial, process pool, or one shard of a multi-host run) and streams one
JSONL row per completed cell.  Three properties make sweeps safe to run
at scale:

- **Determinism** — each cell's experiment is fully determined by its
  configuration (which embeds a per-cell seed), so a sweep produces the
  same rows for any worker count or shard layout.  Exhaustive backends
  consume results in submission order, so the output file is
  byte-for-byte identical as well; shard files are folded back into
  that same canonical stream by ``repro.sweep.merge``.
- **Streaming** — a row is appended and flushed as soon as its cell
  finishes; an interrupt loses at most the cells in flight.
- **Resume** — rows already present in the output file are trusted
  (matched by cell id *and* configuration) and their cells skipped, so
  re-running the same command after an interrupt completes the sweep
  instead of restarting it.  Error rows (cells that raised — see
  ``repro.sweep.executors``) are *not* trusted: failed cells re-run.

Cells sharing their data axes (dataset, sample budget, heterogeneity,
partition seed) reuse one in-process build of the dataset and client
shards (see ``repro.learning.experiment.data_cache_stats``); builds are
pure functions of those axes, so the streamed rows are byte-identical
with the cache hot or cold.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.io.jsonl import append_jsonl, iter_jsonl, read_jsonl, truncate_partial_tail
from repro.io.results import history_from_dict
from repro.learning.history import TrainingHistory
from repro.sweep.executors import (
    ERROR_ROW_SCHEMA_VERSION,
    ROW_SCHEMA_VERSION,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    grid_fingerprint,
    row_matches_grid,
    run_cell,
)
from repro.sweep.grid import ScenarioGrid, SweepCell, config_to_dict
from repro.utils.logging import get_logger

_logger = get_logger("sweep.runner")

PathLike = Union[str, Path]

# Re-exported for backward compatibility: run_cell / ROW_SCHEMA_VERSION
# historically lived here before the executor layer was split out.
__all__ = [
    "ERROR_ROW_SCHEMA_VERSION",
    "ROW_SCHEMA_VERSION",
    "SweepRunner",
    "failed_rows",
    "iter_rows_to_histories",
    "rows_to_histories",
    "run_cell",
]


def iter_rows_to_histories(
    rows: Union[PathLike, Iterable[dict]],
) -> Iterator[Tuple[str, TrainingHistory]]:
    """Lazily reconstruct ``(cell_id, history)`` pairs from sweep rows.

    ``rows`` is either an iterable of row dicts or a path to a sweep
    JSONL file, which is then streamed row by row — a large sweep file
    never needs every decoded history in memory at once.  Skipped: error
    rows, rows without a history, and — with a logged warning, since an
    archived old-schema file would otherwise look mysteriously empty —
    rows from another schema version (resume leaves those on disk next
    to their fresh replacement).  A resumed file can still hold two
    *current* rows for one cell (e.g. a stale-config row from an older
    spec beside its re-run); pairs stream in file order, so the later —
    fresher — one arrives last, matching the runner's fresh-row-wins
    read-back for dict-building consumers.
    """
    if isinstance(rows, (str, Path)):
        rows = iter_jsonl(rows)
    other_schema = 0
    for row in rows:
        if "history" not in row or "error" in row:
            continue
        if row.get("schema") != ROW_SCHEMA_VERSION:
            other_schema += 1
            continue
        yield row["cell_id"], history_from_dict(row["history"])
    if other_schema:
        _logger.warning(
            "skipped %d history row(s) from other schema versions "
            "(current: v%d); re-run the sweep to refresh them",
            other_schema, ROW_SCHEMA_VERSION,
        )


def rows_to_histories(
    rows: Union[PathLike, Iterable[dict]],
) -> Dict[str, TrainingHistory]:
    """Reconstruct the per-cell training histories, keyed by cell id.

    Thin eager wrapper over :func:`iter_rows_to_histories`; prefer the
    iterator for sweep files too large to hold decoded in memory.
    """
    return dict(iter_rows_to_histories(rows))


class SweepRunner:
    """Executes a scenario grid with pluggable execution and resume.

    Parameters
    ----------
    grid:
        The scenario grid to run.
    workers:
        1 (default) runs cells in-process; larger values use a
        ``multiprocessing`` pool of that size.  Either way results are
        consumed in cell order, so the streamed output is identical.
        Ignored when ``backend`` is given explicitly.
    backend:
        An :class:`~repro.sweep.executors.ExecutionBackend` instance.
        Defaults to :class:`SerialBackend` (``workers == 1``) or
        :class:`ProcessPoolBackend` — the historical behaviour.  Pass a
        :class:`~repro.sweep.executors.ShardBackend` to run one worker
        of a multi-host sweep (the output file then holds only this
        shard's rows; see ``repro.sweep.merge``).
    max_retries:
        How many times a raising cell is re-attempted before an error
        row is emitted in its place.  Only used when ``backend`` is
        built here; an explicit backend carries its own setting.
    output_path:
        Optional JSONL file to stream rows to.  Required for resume.
    resume:
        When true (default) and ``output_path`` exists, rows whose cell
        id and configuration match the current grid are reused and their
        cells skipped.  Error rows always re-run.
    on_cell:
        Optional callback ``(cell, row, reused)`` fired per completed
        cell — the CLI uses it for progress output.
    """

    def __init__(
        self,
        grid: ScenarioGrid,
        *,
        workers: int = 1,
        backend: Optional[ExecutionBackend] = None,
        max_retries: int = 0,
        output_path: Optional[PathLike] = None,
        resume: bool = True,
        on_cell: Optional[Callable[[SweepCell, dict, bool], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.grid = grid
        self.workers = int(workers)
        if backend is None:
            backend = (
                SerialBackend(max_retries=max_retries)
                if self.workers == 1
                else ProcessPoolBackend(self.workers, max_retries=max_retries)
            )
        self.backend = backend
        self.output_path = None if output_path is None else Path(output_path)
        self.resume = bool(resume)
        self.on_cell = on_cell
        #: How many cells the last :meth:`run` actually had to execute
        #: (grid minus resumed rows); published before the first cell
        #: runs so progress callbacks can price only the pending work.
        self.pending_count: Optional[int] = None

    # -- resume bookkeeping --------------------------------------------------
    def completed_rows(
        self, cells: Optional[List[SweepCell]] = None
    ) -> Dict[str, dict]:
        """Rows already present in the output file, keyed by cell id.

        Only rows whose configuration matches the current grid count as
        completed; a row from an older spec with the same cell id is
        ignored (its cell re-runs and the fresh row wins on read-back).
        Error rows never count — their cells re-run on resume.
        ``cells`` optionally supplies the already-expanded grid.
        """
        if not self.resume or self.output_path is None or not self.output_path.exists():
            return {}
        if cells is None:
            cells = self.grid.cells()
        expected = {cell.cell_id: config_to_dict(cell.config) for cell in cells}
        completed: Dict[str, dict] = {}
        for row in read_jsonl(self.output_path):
            if row_matches_grid(row, expected) and "error" not in row:
                completed[row["cell_id"]] = row
        return completed

    # -- execution -----------------------------------------------------------
    def run(self) -> List[dict]:
        """Run every pending cell; return the rows in grid order.

        With an exhaustive backend (serial / process pool) the list
        covers every cell.  With a shard backend it covers the cells
        this worker ran or resumed — merge the shard files for the full
        grid.
        """
        cells = self.grid.validate()  # fail fast before any cell runs
        if not self.resume and not self.backend.supports_no_resume:
            raise ValueError(
                "resume=False is not supported with a lease-dir shard "
                "backend: done markers in the shared lease directory would "
                "still suppress re-execution.  Clear the lease directory "
                "(and the shard files) to restart a lease-mode sweep."
            )
        if self.output_path is None and self.backend.requires_output_path:
            raise ValueError(
                "a lease-dir shard backend needs an output path: each done "
                "marker promises the rest of the fleet that the cell's row "
                "is durable in this worker's shard file"
            )
        completed = self.completed_rows(cells)
        if self.output_path is not None:
            if not self.output_path.exists():
                # Create the stream eagerly so even a worker that ends
                # up running zero cells (e.g. an outpaced lease-mode
                # shard) leaves a mergeable, resumable file behind.
                self.output_path.parent.mkdir(parents=True, exist_ok=True)
                self.output_path.touch()
            elif self.resume:
                # An interrupted writer may have left a partial final
                # line; drop those bytes so appended rows start clean.
                truncate_partial_tail(self.output_path)
            else:
                # Resume is off: start the stream fresh instead of
                # appending duplicate rows after the existing ones.
                self.output_path.write_text("")
        pending = [cell for cell in cells if cell.cell_id not in completed]
        self.pending_count = len(pending)
        if completed:
            _logger.info(
                "resuming sweep: %d/%d cells already completed",
                len(completed), len(cells),
            )

        payloads = [
            {
                "index": cell.index,
                "cell_id": cell.cell_id,
                "axes": cell.axes,
                "config": config_to_dict(cell.config),
            }
            for cell in pending
        ]
        # The fingerprint namespaces lease-mode completion markers, so a
        # reused lease dir never satisfies a revised spec; resumed rows
        # are already durable in our stream, so a lease-mode backend
        # re-announces their done markers for the fleet.
        self.backend.bind_grid(grid_fingerprint(cells))
        self.backend.note_completed(list(completed))
        try:
            results = self.backend.submit(payloads)
            if self.backend.exhaustive:
                return self._run_exhaustive(cells, completed, results)
            return self._run_partial(cells, completed, results)
        finally:
            self.backend.close()

    def _run_exhaustive(
        self,
        cells: List[SweepCell],
        completed: Dict[str, dict],
        results: Iterator[dict],
    ) -> List[dict]:
        """Lockstep walk: one backend row per pending cell, in grid order.

        This is the original single-host path — progress callbacks
        (fresh and cached alike) fire immediately and with monotonic
        indices; pending results arrive in this same order from the
        backend, so the streamed file is byte-identical to the
        pre-backend runner.
        """
        rows_by_id = dict(completed)
        for cell in cells:
            if cell.cell_id in completed:
                row, reused = completed[cell.cell_id], True
            else:
                row, reused = next(results), False
                if self.output_path is not None:
                    append_jsonl(self.output_path, row)
                rows_by_id[cell.cell_id] = row
            if self.on_cell is not None:
                self.on_cell(cell, row, reused)
        return [rows_by_id[cell.cell_id] for cell in cells]

    def _run_partial(
        self,
        cells: List[SweepCell],
        completed: Dict[str, dict],
        results: Iterator[dict],
    ) -> List[dict]:
        """Stream a shard backend's rows as they complete.

        The backend yields only the cells this worker executed (grid
        order in static mode; claim order under leases), so cached rows
        are reported up front and executed rows as they arrive.  Each
        row is appended and flushed *before* the backend resumes — the
        ordering lease done-markers rely on.
        """
        rows_by_id = dict(completed)
        cell_by_id = {cell.cell_id: cell for cell in cells}
        if self.on_cell is not None:
            for cell in cells:
                if cell.cell_id in completed:
                    self.on_cell(cell, completed[cell.cell_id], True)
        for row in results:
            if self.output_path is not None:
                append_jsonl(self.output_path, row)
            rows_by_id[row["cell_id"]] = row
            if self.on_cell is not None:
                self.on_cell(cell_by_id[row["cell_id"]], row, False)
        return [
            rows_by_id[cell.cell_id]
            for cell in cells
            if cell.cell_id in rows_by_id
        ]


def failed_rows(rows: Iterable[dict]) -> List[dict]:
    """The error rows among ``rows`` (cells that kept raising)."""
    return [row for row in rows if "error" in row]
