"""Executable versions of the paper's Section 4 constructions.

- :mod:`repro.theory.counterexamples` — the adversarial input families
  from Theorem 4.1 (safe area), Lemma 4.2 (MD-GEOM non-convergence) and
  Theorem 4.3 (Krum), each returning the measured approximation ratio /
  convergence behaviour so tests and benchmarks can check the claims.
- :mod:`repro.theory.bounds` — empirical verification of Theorem 4.4:
  the hyperbox intersection is never empty, the honest diameter halves
  per sub-round, and the measured approximation ratio stays below
  ``2 * sqrt(d)``.
"""

from repro.theory.counterexamples import (
    krum_unbounded_instance,
    md_geom_non_convergence_instance,
    safe_area_unbounded_instance,
)
from repro.theory.bounds import (
    hyperbox_approximation_ratio_experiment,
    hyperbox_contraction_experiment,
)

__all__ = [
    "hyperbox_approximation_ratio_experiment",
    "hyperbox_contraction_experiment",
    "krum_unbounded_instance",
    "md_geom_non_convergence_instance",
    "safe_area_unbounded_instance",
]
