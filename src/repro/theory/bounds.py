"""Empirical verification of Theorem 4.4 (hyperbox algorithm guarantees)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.aggregation.hyperbox_rules import HyperboxGeometricMedian
from repro.agreement.algorithms import HyperboxGeometricMedianAgreement
from repro.agreement.base import AgreementProtocol
from repro.agreement.metrics import approximation_ratio, contraction_factors
from repro.byzantine.base import GradientAttack
from repro.byzantine.sign_flip import SignFlipAttack
from repro.utils.rng import as_generator


@dataclass
class RatioExperimentResult:
    """Measured approximation ratios against the theoretical bound."""

    ratios: List[float]
    bound: float
    dimension: int

    @property
    def max_ratio(self) -> float:
        """Worst measured ratio across trials."""
        return max(self.ratios) if self.ratios else float("nan")

    @property
    def within_bound(self) -> bool:
        """Whether every measured ratio respects the ``2 * sqrt(d)`` bound."""
        return all(r <= self.bound + 1e-9 for r in self.ratios)


def hyperbox_approximation_ratio_experiment(
    *,
    n: int = 10,
    t: int = 1,
    d: int = 6,
    trials: int = 20,
    spread: float = 3.0,
    byzantine_scale: float = 10.0,
    seed: int = 0,
) -> RatioExperimentResult:
    """Measure BOX-GEOM's one-shot ratio on random Byzantine instances.

    Each trial draws ``n - t`` honest vectors from a Gaussian cloud and
    ``t`` adversarial vectors far outside it, computes the BOX-GEOM
    output and its approximation ratio (Definition 3.3), and compares
    against the ``2 * sqrt(d)`` bound of Theorem 4.4.
    """
    rng = as_generator(seed)
    rule = HyperboxGeometricMedian(n=n, t=t)
    ratios: List[float] = []
    for _ in range(trials):
        honest = rng.normal(0.0, spread, size=(n - t, d))
        byz = rng.normal(0.0, spread, size=(t, d)) + byzantine_scale * spread
        received = np.vstack([honest, byz])
        output = rule.aggregate(received)
        ratios.append(approximation_ratio(output, honest, received, n, t))
    return RatioExperimentResult(ratios=ratios, bound=2.0 * float(np.sqrt(d)), dimension=d)


def hyperbox_contraction_experiment(
    *,
    n: int = 10,
    t: int = 1,
    d: int = 6,
    rounds: int = 8,
    spread: float = 5.0,
    attack: Optional[GradientAttack] = None,
    seed: int = 0,
) -> Dict[str, object]:
    """Measure the per-round contraction of BOX-GEOM (Theorem 4.4).

    Runs the multi-round agreement protocol under the given attack
    (sign flip by default) and reports the honest-diameter trace and the
    round-over-round contraction factors; the theorem predicts the
    maximum edge of the honest bounding box at least halves per round,
    so the diameter trace must converge to zero.
    """
    rng = as_generator(seed)
    algorithm = HyperboxGeometricMedianAgreement(n, t)
    byzantine = tuple(range(n - t, n))
    protocol = AgreementProtocol(
        algorithm,
        byzantine=byzantine,
        attack=attack if attack is not None else SignFlipAttack(),
        seed=seed,
    )
    inputs = rng.normal(0.0, spread, size=(n - t, d))
    result = protocol.run(inputs, rounds)
    diameters = result.diameter_trace()
    return {
        "diameters": diameters,
        "contraction_factors": contraction_factors(diameters),
        "converged": result.converged(epsilon=max(diameters[0], 1e-12) * 1e-2 + 1e-12),
        "rounds": rounds,
        "dimension": d,
    }
