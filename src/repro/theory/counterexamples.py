"""Adversarial input families from the paper's negative results.

Each function builds the exact vector configuration used in a proof and
measures the quantity the proof bounds, so the theoretical claims become
executable checks (used by the T1 benchmark and the theory tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.aggregation.krum import Krum
from repro.agreement.algorithms import MinimumDiameterGeometricMedianAgreement
from repro.agreement.metrics import approximation_ratio
from repro.byzantine.partition import PartitionAttack
from repro.linalg.geometric_median import geometric_median


@dataclass
class CounterexampleReport:
    """Outcome of evaluating an algorithm on an adversarial construction."""

    name: str
    measured_ratio: float
    details: Dict[str, float]


def safe_area_unbounded_instance(
    *, d: int = 4, f: int = 1, x: float = 10.0, epsilon: float = 1e-3
) -> CounterexampleReport:
    """Theorem 4.1 construction: the safe area collapses to the origin.

    ``d * f + 1`` correct nodes and ``f`` Byzantine nodes.  One correct
    node and all Byzantine nodes sit at the origin; the remaining correct
    nodes form ``d`` groups of ``f`` nodes at ``v + eps_j`` where
    ``v = (x, 0, ..., 0)``.  The safe area is the single point ``v0 = 0``
    while every candidate geometric median concentrates near ``v``, so
    the ratio ``dist(safe_area, mu*) / r_cov`` blows up (infinite in the
    limit ``epsilon -> 0``; here we report the measured, very large,
    finite value for the chosen epsilon).
    """
    if d < 3:
        raise ValueError("the construction needs d >= 3")
    if f < 1:
        raise ValueError("f must be at least 1")
    n_correct = d * f + 1
    n = n_correct + f
    t = f

    v = np.zeros(d)
    v[0] = x
    honest_vectors: List[np.ndarray] = [np.zeros(d)]
    for j in range(d):
        offset = np.zeros(d)
        offset[j] = epsilon
        for _ in range(f):
            honest_vectors.append(v + offset)
    byz_vectors = [np.zeros(d) for _ in range(f)]

    honest = np.stack(honest_vectors, axis=0)
    received = np.vstack([honest, np.stack(byz_vectors, axis=0)])

    # The safe area of this construction is the single point v0 = origin.
    safe_area_point = np.zeros(d)
    ratio = approximation_ratio(safe_area_point, honest, received, n, t)
    mu_star = geometric_median(honest, tol=1e-12, max_iter=2000)
    return CounterexampleReport(
        name="safe-area",
        measured_ratio=ratio,
        details={
            "distance_to_true_median": float(np.linalg.norm(safe_area_point - mu_star)),
            "dimension": float(d),
            "n": float(n),
            "t": float(t),
        },
    )


def krum_unbounded_instance(
    *, n: int = 10, t: int = 2, d: int = 5, spread: float = 5.0, seed: int = 7
) -> CounterexampleReport:
    """Theorem 4.3 construction: Krum with silent Byzantine nodes.

    The Byzantine parties send nothing, so exactly ``n - t`` honest
    vectors arrive and ``S_geo`` is the single point ``Geo(honest)``.
    Generic honest vectors make the medoid (Krum's output) differ from
    the geometric median, so the measured ratio is infinite.
    """
    rng = np.random.default_rng(seed)
    honest = rng.normal(0.0, spread, size=(n - t, d))
    received = honest  # Byzantine nodes stay silent.
    krum = Krum(n=n, t=t)
    output = krum.aggregate(received)
    ratio = approximation_ratio(output, honest, received, n, t)
    mu_star = geometric_median(honest, tol=1e-12, max_iter=2000)
    return CounterexampleReport(
        name="krum",
        measured_ratio=ratio,
        details={
            "distance_to_true_median": float(np.linalg.norm(output - mu_star)),
            "n": float(n),
            "t": float(t),
            "dimension": float(d),
        },
    )


def md_geom_non_convergence_instance(
    *,
    n: int = 10,
    t: int = 2,
    d: int = 4,
    separation: float = 4.0,
    rounds: int = 8,
    tie_break: str = "adversarial",
) -> Dict[str, object]:
    """Lemma 4.2 construction: MD-GEOM never converges.

    ``n - t`` honest nodes split evenly between two poles ``v1`` and
    ``v2``; Byzantine nodes echo one pole each and deliver it only to
    "their" half of the honest nodes.  Every honest node then has several
    minimum-diameter subsets of identical diameter, one of which keeps it
    pinned to a pole.  Lemma 4.2 is a worst-case statement over the valid
    executions, so the instance defaults to the *adversarial* tie-break of
    :class:`~repro.aggregation.mda.MinimumDiameterGeometricMedian`; with
    the benign ``"first"`` tie-break this particular instance happens to
    converge, which is consistent with the lemma ("does not always
    converge").

    Returns a dictionary with the per-round honest diameters and a flag
    ``converged`` (expected ``False`` under the adversarial tie-break).
    """
    if (n - t) % 2 != 0:
        raise ValueError("the construction needs an even number of honest nodes")
    if t < 2 or t * 3 >= n:
        raise ValueError("need 2 <= t < n/3 for the two-pole construction")
    honest_count = n - t
    half = honest_count // 2

    rng = np.random.default_rng(0)
    direction = rng.normal(size=d)
    direction /= np.linalg.norm(direction)
    v1 = np.zeros(d)
    v2 = separation * direction

    honest_ids = list(range(honest_count))
    byzantine_ids = list(range(honest_count, n))
    group_a = honest_ids[:half]   # start at v1
    group_b = honest_ids[half:]   # start at v2

    inputs = {}
    for node in group_a:
        inputs[node] = v1.copy()
    for node in group_b:
        inputs[node] = v2.copy()

    algorithm = MinimumDiameterGeometricMedianAgreement(n, t, tie_break=tie_break)
    attack = PartitionAttack(group_a=group_a, group_b=group_b)

    from repro.agreement.base import AgreementProtocol

    protocol = AgreementProtocol(algorithm, byzantine=byzantine_ids, attack=attack, seed=0)
    result = protocol.run(inputs, rounds)
    diameters = result.diameter_trace()
    return {
        "diameters": diameters,
        "converged": result.converged(epsilon=separation / 100.0),
        "initial_diameter": diameters[0],
        "final_diameter": diameters[-1],
        "rounds": rounds,
    }
