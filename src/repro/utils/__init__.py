"""Shared utilities: RNG management, validation, logging, and timing.

These helpers are intentionally dependency-light so every other
subpackage (geometry, aggregation, agreement, learning) can rely on them
without import cycles.
"""

from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.validation import (
    ensure_matrix,
    ensure_vector,
    require,
    validate_byzantine_bound,
)
from repro.utils.logging import get_logger
from repro.utils.timer import Timer

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "ensure_matrix",
    "ensure_vector",
    "require",
    "validate_byzantine_bound",
    "get_logger",
    "Timer",
]
