"""Minimal structured logging used by long-running experiments.

The library defaults to silent operation (tests and benchmarks should
not spam stdout); experiment runners opt into progress logging by
raising the level of the ``repro`` logger.
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"
_configured = False


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a library logger, configuring the root handler on first use."""
    global _configured
    if not _configured:
        root = logging.getLogger(_ROOT_NAME)
        if not root.handlers:
            handler = logging.StreamHandler()
            handler.setFormatter(
                logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
            )
            root.addHandler(handler)
        root.setLevel(logging.WARNING)
        _configured = True
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(f"{_ROOT_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(verbose: bool) -> None:
    """Toggle INFO-level progress messages for the whole library."""
    get_logger().setLevel(logging.INFO if verbose else logging.WARNING)
