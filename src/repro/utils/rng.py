"""Deterministic random-number management.

Every stochastic component in the library (datasets, clients, attacks,
Weiszfeld perturbations, sampling of ``S_geo``) takes either a seed or a
:class:`numpy.random.Generator`.  Centralising the conversion logic here
keeps experiments reproducible: a single integer seed fans out into an
independent stream per client / per component via ``spawn_generators``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer seed, an existing
        generator (returned unchanged), or a ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    The split uses :class:`numpy.random.SeedSequence` spawning, so the
    streams do not overlap regardless of how many draws each consumer
    makes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a fresh seed sequence from the generator's bit stream so
        # the children remain reproducible given the parent state.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class RngFactory:
    """Named, reproducible random generator factory.

    An experiment creates one factory from its master seed and asks for
    generators by component name (``"client-3"``, ``"attack"`` ...).  The
    same (seed, name) pair always yields the same stream, which makes it
    possible to re-run a single component of an experiment in isolation.
    """

    def __init__(self, seed: SeedLike = 0) -> None:
        if isinstance(seed, np.random.Generator):
            entropy: Sequence[int] = seed.integers(0, 2**63 - 1, size=4).tolist()
        elif isinstance(seed, np.random.SeedSequence):
            entropy = list(np.atleast_1d(seed.entropy)) if seed.entropy is not None else [0]
        elif seed is None:
            entropy = list(np.random.SeedSequence().entropy or [0])  # pragma: no cover
        else:
            entropy = [int(seed)]
        self._entropy = [int(e) for e in entropy]

    def generator(self, name: str) -> np.random.Generator:
        """Return the generator associated with ``name``."""
        tokens = [abs(hash(part)) % (2**32) for part in _name_tokens(name)]
        seq = np.random.SeedSequence(self._entropy + tokens)
        return np.random.default_rng(seq)

    def generators(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a generator per name, keyed by name."""
        return {name: self.generator(name) for name in names}


def _name_tokens(name: str) -> list[str]:
    return [tok for tok in str(name).split("/") if tok]


def stable_component_seed(master_seed: Optional[int], *components: object) -> int:
    """Derive a stable 32-bit seed from a master seed and component labels.

    Unlike :class:`RngFactory`, this does not depend on Python's per-run
    string hashing: the labels are folded via a small explicit FNV-1a
    style mix, so the result is stable across interpreter invocations.
    """
    acc = np.uint64(1469598103934665603)
    prime = np.uint64(1099511628211)
    base = 0 if master_seed is None else int(master_seed)
    data = repr((base, components)).encode("utf-8")
    for byte in data:
        acc = np.uint64(acc ^ np.uint64(byte))
        acc = np.uint64((int(acc) * int(prime)) % (2**64))
    return int(acc % np.uint64(2**31 - 1))
