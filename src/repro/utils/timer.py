"""Wall-clock timing helper for experiment bookkeeping."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List
from contextlib import contextmanager


@dataclass
class Timer:
    """Accumulates named wall-clock timings.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("aggregation"):
    ...     _ = sum(range(1000))
    >>> timer.total("aggregation") >= 0.0
    True
    """

    records: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.records.setdefault(name, []).append(elapsed)

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 when unused)."""
        return float(sum(self.records.get(name, [])))

    def count(self, name: str) -> int:
        """Number of measurements recorded under ``name``."""
        return len(self.records.get(name, []))

    def mean(self, name: str) -> float:
        """Mean seconds per measurement under ``name`` (0.0 when unused)."""
        values = self.records.get(name, [])
        return float(sum(values) / len(values)) if values else 0.0

    def summary(self) -> Dict[str, float]:
        """Mapping of name to total seconds, for report printing."""
        return {name: self.total(name) for name in self.records}
