"""Input validation helpers shared across the library.

The agreement and aggregation code paths are all driven by stacks of
``(m, d)`` vectors; validating shapes and the Byzantine resilience bound
in one place keeps the numerical code free of defensive clutter.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def ensure_vector(value: "np.typing.ArrayLike", *, name: str = "vector") -> np.ndarray:
    """Convert ``value`` to a 1-D float64 array, validating the shape."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def ensure_matrix(
    value: "np.typing.ArrayLike | Iterable[np.typing.ArrayLike]",
    *,
    name: str = "vectors",
    min_rows: int = 1,
    allow_non_finite: bool = False,
    dtype: "np.dtype | type" = np.float64,
) -> np.ndarray:
    """Convert a sequence of vectors to an ``(m, d)`` floating matrix.

    Accepts a 2-D array, a list of 1-D arrays, or a single vector (which
    becomes a one-row matrix).  ``dtype`` selects the storage precision
    (float64 by default); the conversion is a no-copy view whenever the
    input already matches.
    """
    if isinstance(value, np.ndarray):
        arr = np.asarray(value, dtype=dtype)
    else:
        rows = [np.asarray(v, dtype=dtype) for v in value]
        if not rows:
            raise ValueError(f"{name} must contain at least {min_rows} vector(s)")
        arr = np.stack([r.reshape(-1) for r in rows], axis=0)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D stack of vectors, got shape {arr.shape}")
    if arr.shape[0] < min_rows:
        raise ValueError(
            f"{name} must contain at least {min_rows} vector(s), got {arr.shape[0]}"
        )
    if arr.shape[1] == 0:
        raise ValueError(f"{name} must have positive dimension")
    if not allow_non_finite and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def validate_byzantine_bound(n: int, t: int, *, resilience_divisor: int = 3) -> None:
    """Validate the standard ``t < n / 3`` Byzantine resilience condition.

    Parameters
    ----------
    n:
        Total number of nodes in the system.
    t:
        Maximum number of Byzantine nodes tolerated.
    resilience_divisor:
        The denominator of the resilience bound (3 for hyperbox/MDA-style
        algorithms; safe-area algorithms use ``max(3, d + 1)``).
    """
    require(n >= 1, f"n must be positive, got {n}")
    require(t >= 0, f"t must be non-negative, got {t}")
    if resilience_divisor <= 0:
        raise ValueError(f"resilience_divisor must be positive, got {resilience_divisor}")
    if t * resilience_divisor >= n:
        raise ValueError(
            f"Byzantine resilience violated: need t < n/{resilience_divisor} "
            f"but got n={n}, t={t}"
        )


def validate_same_dimension(vectors: Sequence[np.ndarray], *, name: str = "vectors") -> int:
    """Check that all vectors share the same dimension and return it."""
    if len(vectors) == 0:
        raise ValueError(f"{name} must be non-empty")
    dims = {int(np.asarray(v).reshape(-1).shape[0]) for v in vectors}
    if len(dims) != 1:
        raise ValueError(f"{name} have inconsistent dimensions: {sorted(dims)}")
    return dims.pop()
