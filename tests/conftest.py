"""Shared fixtures and markers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    # Registered in setup.cfg as well; repeated here so the marker (and
    # `-m "not slow"` deselection) works even when pytest is pointed at
    # the tests directory without the repo-root ini file.
    config.addinivalue_line(
        "markers",
        'slow: long-running sweep / end-to-end tests (deselect with -m "not slow")',
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def gaussian_cloud(rng) -> np.ndarray:
    """A (10, 5) Gaussian point cloud reused across geometry tests."""
    return rng.normal(0.0, 2.0, size=(10, 5))


@pytest.fixture
def cloud_with_outlier(rng) -> np.ndarray:
    """Nine clustered points plus one far outlier (index 9)."""
    cloud = rng.normal(0.0, 1.0, size=(9, 4))
    outlier = np.full((1, 4), 50.0)
    return np.vstack([cloud, outlier])


@pytest.fixture
def tiny_dataset():
    """A small synthetic MNIST-like dataset shared by data/learning tests."""
    from repro.data.datasets import make_synthetic_mnist

    return make_synthetic_mnist(200, seed=3)
