"""Generate the pinned equivalence fixtures for the round-engine refactor.

This script was executed at the last pre-refactor commit (hand-rolled
round loops in ``CentralizedTrainer`` / ``DecentralizedTrainer`` and the
``SynchronousNetwork``-based ``AgreementProtocol``) to capture bitwise
reference outputs for fixed seeds.  ``tests/test_engine_equivalence.py``
asserts that the refactored ``SynchronousScheduler`` path reproduces
these numbers exactly — floats survive a JSON round trip losslessly
(``repr`` shortest-round-trip), so ``==`` on the loaded values is a
bitwise comparison.

Re-running this script on a post-refactor tree only re-pins the current
behaviour; the authoritative provenance is the commit recorded below.

    PYTHONPATH=src python tests/fixtures/make_equivalence_fixtures.py
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import numpy as np

from repro.agreement.algorithms import HyperboxGeometricMedianAgreement
from repro.agreement.base import AgreementProtocol
from repro.byzantine.sign_flip import SignFlipAttack
from repro.io.results import history_to_dict
from repro.learning.experiment import ExperimentConfig, run_experiment

FIXTURE_PATH = Path(__file__).with_name("equivalence_pre_refactor.json")


def _config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        setting="centralized",
        dataset="mnist",
        heterogeneity="uniform",
        aggregation="box-geom",
        attack="sign-flip",
        num_clients=6,
        num_byzantine=1,
        rounds=3,
        num_samples=240,
        batch_size=8,
        learning_rate=0.1,
        mlp_hidden=(16, 8),
        seed=0,
    )
    return base.with_overrides(**overrides)


def _agreement_trace() -> dict:
    rng = np.random.default_rng(42)
    algorithm = HyperboxGeometricMedianAgreement(7, 1)
    protocol = AgreementProtocol(algorithm, byzantine=(6,), attack=SignFlipAttack(), seed=7)
    inputs = rng.normal(size=(6, 4))
    result = protocol.run(inputs, rounds=3)
    return {
        "inputs_seed": 42,
        "final_matrix": result.final_matrix().tolist(),
        "diameter_trace": result.diameter_trace(),
    }


def main() -> None:
    cases = {
        "centralized/box-geom/sign-flip": _config(),
        "centralized/krum/crash": _config(aggregation="krum", attack="crash"),
        "decentralized/box-geom/sign-flip": _config(setting="decentralized", rounds=2),
        "decentralized/md-mean/none": _config(
            setting="decentralized", rounds=2, aggregation="md-mean",
            attack=None, num_byzantine=0,
        ),
    }
    payload = {
        "generated_at_commit": subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=Path(__file__).resolve().parents[2],
        ).stdout.strip(),
        "histories": {
            label: history_to_dict(run_experiment(config))
            for label, config in cases.items()
        },
        "agreement": _agreement_trace(),
    }
    FIXTURE_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
