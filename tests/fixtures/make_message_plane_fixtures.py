"""Generate the pinned equivalence fixtures for the batch message plane.

This script was executed at the last pre-refactor commit (per-message
``Message`` objects materialised eagerly by every scheduler's
``_deliver``) to capture bitwise reference outputs for fixed seeds.
``tests/test_message_plane.py`` asserts that the array-backed batch
plane reproduces these numbers exactly — floats survive a JSON round
trip losslessly (``repr`` shortest-round-trip), so ``==`` on the loaded
values is a bitwise comparison, and the sweep rows are compared as
serialised byte strings.

The cells deliberately cover every scheduler and the delivery edge
cases the refactor could disturb: crash windows, drops, pinned
adversarial delays (selective-delay), trace-reading adaptive attacks
(adaptive-delay), bursty asynchrony, and both trainers.

Re-running this script on a post-refactor tree only re-pins the current
behaviour; the authoritative provenance is the commit recorded below.

    PYTHONPATH=src python tests/fixtures/make_message_plane_fixtures.py
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import numpy as np

from repro.agreement.algorithms import HyperboxGeometricMedianAgreement
from repro.agreement.base import AgreementProtocol
from repro.byzantine.registry import make_attack
from repro.engine import make_scheduler
from repro.io.results import history_to_dict
from repro.learning.experiment import ExperimentConfig, run_experiment
from repro.sweep import ScenarioGrid, SweepRunner

HISTORY_PATH = Path(__file__).with_name("message_plane_pre_refactor.json")
ROWS_PATH = Path(__file__).with_name("sweep_rows_pre_message_plane.jsonl")


def base_config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        setting="centralized",
        dataset="mnist",
        heterogeneity="uniform",
        aggregation="box-geom",
        attack="sign-flip",
        num_clients=5,
        num_byzantine=1,
        rounds=2,
        num_samples=60,
        batch_size=8,
        learning_rate=0.05,
        mlp_hidden=(8, 4),
        seed=5,
    )
    return base.with_overrides(**overrides)


def experiment_cases() -> dict:
    """One experiment per scheduler x trainer x delivery edge case."""
    return {
        "synchronous/centralized/sign-flip": base_config(),
        "lossy/centralized/crash-drop": base_config(
            scheduler="lossy", drop_rate=0.15, crash_schedule=((1, 1, 3),),
        ),
        "lossy/decentralized/drop": base_config(
            setting="decentralized", scheduler="lossy", drop_rate=0.1,
        ),
        "partial/decentralized/selective-delay": base_config(
            setting="decentralized", scheduler="partial", delay=2,
            attack="selective-delay",
        ),
        "asynchronous/decentralized/adaptive-delay": base_config(
            setting="decentralized", scheduler="asynchronous",
            wait_timeout=2.0, burstiness=0.3, attack="adaptive-delay",
        ),
        "asynchronous/centralized/sign-flip": base_config(
            scheduler="asynchronous", wait_timeout=1.5,
        ),
    }


def agreement_engines() -> dict:
    """Raw agreement exchanges: scheduler name -> (engine factory, attack)."""
    return {
        "synchronous": (
            lambda: make_scheduler("synchronous", 7, (6,)),
            "sign-flip",
        ),
        "partial": (
            lambda: make_scheduler("partial", 7, (6,), delay=2, seed=11),
            "selective-delay",
        ),
        "lossy": (
            lambda: make_scheduler(
                "lossy", 7, (6,), drop_rate=0.2,
                crash_schedule=((1, 1, 3),), seed=11,
            ),
            "sign-flip",
        ),
        "asynchronous": (
            lambda: make_scheduler(
                "asynchronous", 7, (6,), wait_timeout=2.0,
                burstiness=0.4, seed=11,
            ),
            "adaptive-delay",
        ),
    }


def agreement_traces() -> dict:
    """Agreement protocol outputs + engine counters per scheduler."""
    out = {}
    for label, (engine_factory, attack_name) in agreement_engines().items():
        rng = np.random.default_rng(42)
        inputs = rng.normal(size=(6, 4))
        engine = engine_factory()
        algorithm = HyperboxGeometricMedianAgreement(7, 1)
        protocol = AgreementProtocol(
            algorithm, byzantine=(6,), attack=make_attack(attack_name),
            seed=7, engine=engine,
        )
        result = protocol.run(inputs, rounds=3)
        out[label] = {
            "final_matrix": result.final_matrix().tolist(),
            "diameter_trace": result.diameter_trace(),
            "stats": engine.stats_snapshot(),
            "trace": engine.trace_snapshot(),
        }
    return out


def sweep_grids() -> list:
    """Mini-grids covering every non-synchronous scheduler's row layout."""
    return [
        ScenarioGrid(
            base_config(
                scheduler="lossy", drop_rate=0.2, crash_schedule=((0, 1, 2),),
            ),
            {"aggregation": ["mean", "krum"]},
        ),
        ScenarioGrid(
            base_config(scheduler="partial", delay=2),
            {"attack": ["sign-flip", "selective-delay"]},
        ),
        ScenarioGrid(
            base_config(scheduler="asynchronous", wait_timeout=1.5),
            {"burstiness": [0.0, 0.4]},
        ),
    ]


def sweep_row_lines() -> list:
    """Serialised sweep rows, one JSON string per cell, in grid order."""
    lines = []
    for grid in sweep_grids():
        for row in SweepRunner(grid).run():
            lines.append(json.dumps(row, sort_keys=True))
    return lines


def main() -> None:
    payload = {
        "generated_at_commit": subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=Path(__file__).resolve().parents[2],
        ).stdout.strip(),
        "histories": {
            label: history_to_dict(run_experiment(config))
            for label, config in experiment_cases().items()
        },
        "agreement": agreement_traces(),
    }
    HISTORY_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {HISTORY_PATH}")
    ROWS_PATH.write_text("".join(line + "\n" for line in sweep_row_lines()))
    print(f"wrote {ROWS_PATH}")


if __name__ == "__main__":
    main()
