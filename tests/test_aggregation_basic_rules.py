"""Tests for the simple aggregation rules (mean family, geometric median, medoid)."""

import numpy as np
import pytest

from repro.aggregation.base import AggregationRule
from repro.aggregation.geometric_median import GeometricMedian
from repro.aggregation.mean import CoordinatewiseMedian, Mean, TrimmedMean
from repro.aggregation.medoid import Medoid
from repro.linalg.geometric_median import geometric_median


class TestBaseBehaviour:
    def test_single_vector_returned_unchanged(self):
        rule = Mean()
        vec = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(rule.aggregate(vec), vec[0])

    def test_callable_interface(self, gaussian_cloud):
        rule = Mean()
        np.testing.assert_allclose(rule(gaussian_cloud), rule.aggregate(gaussian_cloud))

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            Mean(n=0)

    def test_negative_t(self):
        with pytest.raises(ValueError):
            Mean(n=10, t=-1)

    def test_t_geq_n(self):
        with pytest.raises(ValueError):
            Mean(n=3, t=3)

    def test_effective_n_inferred(self, gaussian_cloud):
        rule = Mean(t=1)
        assert rule.effective_n(gaussian_cloud.shape[0]) == 10

    def test_honest_subset_size(self):
        rule = Mean(n=10, t=2)
        assert rule.honest_subset_size(10) == 8
        assert rule.honest_subset_size(9) == 8

    def test_abstract_cannot_instantiate(self):
        with pytest.raises(TypeError):
            AggregationRule()  # type: ignore[abstract]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            Mean().aggregate(np.empty((0, 3)))

    def test_nan_input_rejected(self):
        with pytest.raises(ValueError):
            Mean().aggregate(np.array([[np.nan, 1.0], [0.0, 1.0]]))


class TestMean:
    def test_matches_numpy(self, gaussian_cloud):
        np.testing.assert_allclose(Mean().aggregate(gaussian_cloud), gaussian_cloud.mean(axis=0))

    def test_not_robust_to_outlier(self, cloud_with_outlier):
        out = Mean().aggregate(cloud_with_outlier)
        honest_center = cloud_with_outlier[:9].mean(axis=0)
        assert np.linalg.norm(out - honest_center) > 1.0


class TestCoordinatewiseMedian:
    def test_matches_numpy(self, gaussian_cloud):
        np.testing.assert_allclose(
            CoordinatewiseMedian().aggregate(gaussian_cloud),
            np.median(gaussian_cloud, axis=0),
        )

    def test_robust_to_outlier(self, cloud_with_outlier):
        out = CoordinatewiseMedian().aggregate(cloud_with_outlier)
        honest_box_hi = cloud_with_outlier[:9].max(axis=0)
        assert np.all(out <= honest_box_hi + 1e-9)


class TestTrimmedMean:
    def test_trim_zero_is_mean(self, gaussian_cloud):
        rule = TrimmedMean(trim=0)
        np.testing.assert_allclose(rule.aggregate(gaussian_cloud), gaussian_cloud.mean(axis=0))

    def test_explicit_trim_removes_outlier(self, cloud_with_outlier):
        rule = TrimmedMean(trim=1)
        out = rule.aggregate(cloud_with_outlier)
        assert np.all(out <= cloud_with_outlier[:9].max(axis=0) + 1e-9)

    def test_trim_from_n_t(self, cloud_with_outlier):
        rule = TrimmedMean(n=10, t=1)
        out = rule.aggregate(cloud_with_outlier)
        # m - (n - t) = 1 value trimmed per side: outlier removed.
        assert np.all(out <= cloud_with_outlier[:9].max(axis=0) + 1e-9)

    def test_output_within_trimmed_range(self, gaussian_cloud):
        rule = TrimmedMean(trim=2)
        out = rule.aggregate(gaussian_cloud)
        ordered = np.sort(gaussian_cloud, axis=0)
        assert np.all(out >= ordered[2] - 1e-9)
        assert np.all(out <= ordered[-3] + 1e-9)

    def test_over_trim_rejected(self):
        rule = TrimmedMean(trim=3)
        with pytest.raises(ValueError):
            rule.aggregate(np.zeros((5, 2)))

    def test_negative_trim_rejected(self):
        with pytest.raises(ValueError):
            TrimmedMean(trim=-1)


class TestGeometricMedianRule:
    def test_matches_library_function(self, gaussian_cloud):
        rule = GeometricMedian(tol=1e-10, max_iter=1000)
        np.testing.assert_allclose(
            rule.aggregate(gaussian_cloud),
            geometric_median(gaussian_cloud, tol=1e-10, max_iter=1000),
            atol=1e-8,
        )

    def test_robust_to_outlier(self, cloud_with_outlier):
        out = GeometricMedian().aggregate(cloud_with_outlier)
        honest_center = cloud_with_outlier[:9].mean(axis=0)
        mean_out = Mean().aggregate(cloud_with_outlier)
        assert np.linalg.norm(out - honest_center) < np.linalg.norm(mean_out - honest_center)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GeometricMedian(tol=-1.0)
        with pytest.raises(ValueError):
            GeometricMedian(max_iter=0)


class TestMedoid:
    def test_output_is_an_input(self, gaussian_cloud):
        out = Medoid().aggregate(gaussian_cloud)
        assert any(np.allclose(out, row) for row in gaussian_cloud)

    def test_outlier_never_selected(self, cloud_with_outlier):
        out = Medoid().aggregate(cloud_with_outlier)
        assert not np.allclose(out, cloud_with_outlier[9])
