"""Tests for the one-shot BOX-MEAN / BOX-GEOM rules."""

import numpy as np
import pytest

from repro.aggregation.hyperbox_rules import HyperboxGeometricMedian, HyperboxMean
from repro.linalg.hyperbox import bounding_hyperbox


class TestTrustedHyperbox:
    def test_contained_in_honest_box_with_byzantine_value(self, cloud_with_outlier):
        rule = HyperboxGeometricMedian(n=10, t=1)
        th = rule.trusted_hyperbox(cloud_with_outlier)
        honest_box = bounding_hyperbox(cloud_with_outlier[:9])
        assert honest_box.contains_box(th)

    def test_no_trim_when_all_messages_honest_count(self):
        # Exactly n - t messages received: nothing is trimmed.
        rng = np.random.default_rng(0)
        received = rng.normal(size=(9, 4))
        rule = HyperboxGeometricMedian(n=10, t=1)
        th = rule.trusted_hyperbox(received)
        ref = bounding_hyperbox(received)
        np.testing.assert_allclose(th.lower, ref.lower)
        np.testing.assert_allclose(th.upper, ref.upper)


class TestIntersectionNonEmpty:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_intersection_never_empty_random(self, t, rng):
        # Theorem 4.4, first part: TH ∩ GH is non-empty.
        n = 10
        for trial in range(5):
            honest = rng.normal(0.0, 2.0, size=(n - t, 5))
            byz = rng.normal(0.0, 2.0, size=(t, 5)) * 20.0
            received = np.vstack([honest, byz])
            rule = HyperboxGeometricMedian(n=n, t=t)
            th = rule.trusted_hyperbox(received)
            gh = rule.aggregate_hyperbox(received)
            assert not th.intersect(gh).is_empty

    def test_box_mean_intersection_non_empty(self, rng):
        n, t = 10, 2
        honest = rng.normal(size=(n - t, 4))
        byz = np.full((t, 4), 50.0)
        received = np.vstack([honest, byz])
        rule = HyperboxMean(n=n, t=t)
        assert not rule.trusted_hyperbox(received).intersect(
            rule.aggregate_hyperbox(received)
        ).is_empty


class TestHyperboxGeometricMedian:
    def test_output_inside_trusted_hyperbox(self, cloud_with_outlier):
        rule = HyperboxGeometricMedian(n=10, t=1)
        out = rule.aggregate(cloud_with_outlier)
        assert rule.trusted_hyperbox(cloud_with_outlier).contains(out, atol=1e-9)

    def test_output_inside_honest_bounding_box(self, cloud_with_outlier):
        # The trusted hyperbox is contained in the honest box, hence so is
        # the output: Byzantine values cannot pull the aggregate outside
        # the honest range in any coordinate.
        rule = HyperboxGeometricMedian(n=10, t=1)
        out = rule.aggregate(cloud_with_outlier)
        assert bounding_hyperbox(cloud_with_outlier[:9]).contains(out, atol=1e-9)

    def test_respects_2sqrtd_bound(self, rng):
        from repro.agreement.metrics import approximation_ratio

        n, t, d = 10, 1, 6
        bound = 2.0 * np.sqrt(d)
        rule = HyperboxGeometricMedian(n=n, t=t)
        for _ in range(5):
            honest = rng.normal(0.0, 1.0, size=(n - t, d))
            byz = rng.normal(0.0, 1.0, size=(t, d)) + 25.0
            received = np.vstack([honest, byz])
            out = rule.aggregate(received)
            assert approximation_ratio(out, honest, received, n, t) <= bound + 1e-9

    def test_identical_inputs_fixed_point(self):
        pts = np.tile([1.5, -2.0, 0.25], (10, 1))
        out = HyperboxGeometricMedian(n=10, t=1).aggregate(pts)
        np.testing.assert_allclose(out, [1.5, -2.0, 0.25], atol=1e-9)

    def test_max_subsets_sampling(self, cloud_with_outlier, rng):
        exact = HyperboxGeometricMedian(n=10, t=1).aggregate(cloud_with_outlier)
        sampled = HyperboxGeometricMedian(n=10, t=1, max_subsets=8, rng=rng).aggregate(
            cloud_with_outlier
        )
        # Sampling perturbs GH but the output stays in the honest box.
        assert bounding_hyperbox(cloud_with_outlier[:9]).contains(sampled, atol=1e-9)
        assert np.linalg.norm(exact - sampled) < 5.0

    def test_invalid_max_subsets(self):
        with pytest.raises(ValueError):
            HyperboxGeometricMedian(n=10, t=1, max_subsets=0)


class TestHyperboxMean:
    def test_output_inside_honest_box(self, cloud_with_outlier):
        rule = HyperboxMean(n=10, t=1)
        out = rule.aggregate(cloud_with_outlier)
        assert bounding_hyperbox(cloud_with_outlier[:9]).contains(out, atol=1e-9)

    def test_no_byzantine_near_mean(self, gaussian_cloud):
        # With t=1 but only honest vectors, BOX-MEAN's output should stay
        # close to the overall mean (all subset means cluster around it).
        out = HyperboxMean(n=10, t=1).aggregate(gaussian_cloud)
        spread = np.linalg.norm(gaussian_cloud.std(axis=0))
        assert np.linalg.norm(out - gaussian_cloud.mean(axis=0)) < spread

    def test_differs_from_box_geom_on_skewed_data(self, rng):
        honest = np.vstack([rng.normal(0.0, 0.2, size=(7, 3)), rng.normal(5.0, 0.2, size=(2, 3))])
        byz = np.full((1, 3), 100.0)
        received = np.vstack([honest, byz])
        mean_out = HyperboxMean(n=10, t=1).aggregate(received)
        geom_out = HyperboxGeometricMedian(n=10, t=1).aggregate(received)
        assert not np.allclose(mean_out, geom_out)
