"""Tests for Krum and Multi-Krum."""

import numpy as np
import pytest

from repro.aggregation.krum import Krum, MultiKrum, krum_scores


class TestKrumScores:
    def test_shape(self, gaussian_cloud):
        scores = krum_scores(gaussian_cloud, n=10, t=1)
        assert scores.shape == (10,)

    def test_outlier_has_highest_score(self, cloud_with_outlier):
        scores = krum_scores(cloud_with_outlier, n=10, t=1)
        assert int(np.argmax(scores)) == 9

    def test_single_vector(self):
        scores = krum_scores(np.array([[1.0, 2.0]]), n=10, t=1)
        np.testing.assert_allclose(scores, [0.0])

    def test_neighbourhood_override(self, gaussian_cloud):
        tight = krum_scores(gaussian_cloud, n=10, t=1, neighbourhood=2)
        wide = krum_scores(gaussian_cloud, n=10, t=1, neighbourhood=8)
        assert np.all(tight <= wide + 1e-12)

    def test_scores_nonnegative(self, gaussian_cloud):
        assert np.all(krum_scores(gaussian_cloud, n=10, t=2) >= 0.0)

    @pytest.mark.parametrize("neighbourhood", [1, 2, 5, 8, 9])
    def test_partition_bitwise_equal_to_sorted_reference(self, rng, neighbourhood):
        # The production path partitions each row to its k+1 smallest
        # entries before sorting; the reference sorts the full row.  The
        # scores must stay bitwise identical (same values summed in the
        # same order), for every neighbourhood size including the full
        # row (k = m - 1), across many random stacks.
        from repro.linalg.distances import pairwise_sq_distances

        for trial in range(20):
            vectors = rng.normal(size=(10, 4))
            sq = pairwise_sq_distances(vectors)
            k = max(1, min(neighbourhood, 9))
            reference = np.sort(sq, axis=1)[:, 1 : k + 1].sum(axis=1)
            scores = krum_scores(vectors, n=10, t=1, neighbourhood=neighbourhood)
            assert np.array_equal(scores, reference), (
                f"partitioned Krum scores differ from the sorted reference "
                f"(trial {trial}, k={k})"
            )

    def test_partition_bitwise_with_duplicate_rows(self):
        # Duplicate points produce tied (zero) off-diagonal distances —
        # the nastiest case for a partition-based k-smallest selection.
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [0.0, 0.0], [5.0, 5.0], [5.0, 5.0]])
        from repro.linalg.distances import pairwise_sq_distances

        sq = pairwise_sq_distances(pts)
        for k in (1, 2, 3, 4):
            reference = np.sort(sq, axis=1)[:, 1 : k + 1].sum(axis=1)
            scores = krum_scores(pts, n=5, t=0, neighbourhood=k)
            assert np.array_equal(scores, reference)


class TestKrum:
    def test_output_is_an_input_vector(self, gaussian_cloud):
        out = Krum(n=10, t=1).aggregate(gaussian_cloud)
        assert any(np.allclose(out, row) for row in gaussian_cloud)

    def test_never_selects_far_outlier(self, cloud_with_outlier):
        rule = Krum(n=10, t=1)
        assert rule.selected_index(cloud_with_outlier) != 9

    def test_selects_cluster_member_against_adversary(self, rng):
        honest = rng.normal(0.0, 0.5, size=(8, 6))
        byz = np.full((2, 6), 100.0)
        received = np.vstack([honest, byz])
        out = Krum(n=10, t=2).aggregate(received)
        assert np.linalg.norm(out - honest.mean(axis=0)) < 5.0

    def test_invalid_neighbourhood(self):
        with pytest.raises(ValueError):
            Krum(n=10, t=1, neighbourhood=0)

    def test_deterministic_tie_break(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0], [1.0, 1.0]])
        idx = Krum(n=4, t=0).selected_index(pts)
        assert idx == 0


class TestMultiKrum:
    def test_q_one_equals_krum(self, gaussian_cloud):
        krum_out = Krum(n=10, t=1).aggregate(gaussian_cloud)
        multi_out = MultiKrum(n=10, t=1, q=1).aggregate(gaussian_cloud)
        np.testing.assert_allclose(multi_out, krum_out)

    def test_q_equals_m_is_mean(self, gaussian_cloud):
        out = MultiKrum(n=10, t=1, q=10).aggregate(gaussian_cloud)
        np.testing.assert_allclose(out, gaussian_cloud.mean(axis=0), atol=1e-12)

    def test_selected_count(self, gaussian_cloud):
        picks = MultiKrum(n=10, t=1, q=3).selected_indices(gaussian_cloud)
        assert len(picks) == 3
        assert len(set(picks.tolist())) == 3

    def test_outlier_not_in_selection(self, cloud_with_outlier):
        picks = MultiKrum(n=10, t=1, q=3).selected_indices(cloud_with_outlier)
        assert 9 not in picks.tolist()

    def test_q_larger_than_m_clipped(self):
        pts = np.random.default_rng(0).normal(size=(4, 3))
        out = MultiKrum(n=10, t=1, q=50).aggregate(pts)
        np.testing.assert_allclose(out, pts.mean(axis=0), atol=1e-12)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            MultiKrum(n=10, t=1, q=0)

    def test_paper_q3_default(self):
        assert MultiKrum(n=10, t=1).q == 3
