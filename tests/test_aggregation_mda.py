"""Tests for the minimum-diameter aggregation rules (MD-MEAN, MD-GEOM)."""

import numpy as np
import pytest

from repro.aggregation.mda import (
    MinimumDiameterGeometricMedian,
    MinimumDiameterMean,
)
from repro.linalg.geometric_median import geometric_median


class TestMinimumDiameterMean:
    def test_excludes_outlier(self, cloud_with_outlier):
        rule = MinimumDiameterMean(n=10, t=1)
        out = rule.aggregate(cloud_with_outlier)
        honest_mean = cloud_with_outlier[:9].mean(axis=0)
        np.testing.assert_allclose(out, honest_mean, atol=1e-9)

    def test_no_byzantine_reduces_to_mean_of_tightest_subset(self, gaussian_cloud):
        rule = MinimumDiameterMean(n=10, t=0)
        np.testing.assert_allclose(rule.aggregate(gaussian_cloud), gaussian_cloud.mean(axis=0))

    def test_output_inside_received_hull_box(self, cloud_with_outlier):
        rule = MinimumDiameterMean(n=10, t=1)
        out = rule.aggregate(cloud_with_outlier)
        assert np.all(out >= cloud_with_outlier.min(axis=0) - 1e-9)
        assert np.all(out <= cloud_with_outlier.max(axis=0) + 1e-9)

    def test_minimum_diameter_set_size(self, gaussian_cloud):
        rule = MinimumDiameterMean(n=10, t=2)
        idx, diam = rule.minimum_diameter_set(gaussian_cloud)
        assert len(idx) == 8
        assert diam >= 0.0

    def test_max_subsets_sampling_still_valid(self, cloud_with_outlier, rng):
        rule = MinimumDiameterMean(n=10, t=1, max_subsets=5, rng=rng)
        out = rule.aggregate(cloud_with_outlier)
        # The greedy anchored candidates always exclude the far outlier.
        assert np.linalg.norm(out - cloud_with_outlier[:9].mean(axis=0)) < 2.0

    def test_invalid_max_subsets(self):
        with pytest.raises(ValueError):
            MinimumDiameterMean(n=10, t=1, max_subsets=0)

    def test_invalid_tie_break(self):
        with pytest.raises(ValueError):
            MinimumDiameterMean(n=10, t=1, tie_break="bogus")


class TestMinimumDiameterGeometricMedian:
    def test_excludes_outlier(self, cloud_with_outlier):
        rule = MinimumDiameterGeometricMedian(n=10, t=1, tol=1e-10, max_iter=1000)
        out = rule.aggregate(cloud_with_outlier)
        expected = geometric_median(cloud_with_outlier[:9], tol=1e-10, max_iter=1000)
        np.testing.assert_allclose(out, expected, atol=1e-6)

    def test_2_approximation_of_true_geometric_median(self, rng):
        # Lemma 4.2 discussion: MD-GEOM's one-shot output is a
        # 2-approximation of the honest geometric median.
        from repro.agreement.metrics import approximation_ratio

        n, t, d = 10, 2, 4
        honest = rng.normal(0.0, 1.0, size=(n - t, d))
        byz = rng.normal(0.0, 1.0, size=(t, d)) + 30.0
        received = np.vstack([honest, byz])
        rule = MinimumDiameterGeometricMedian(n=n, t=t)
        out = rule.aggregate(received)
        ratio = approximation_ratio(out, honest, received, n, t)
        assert ratio <= 2.0 + 1e-6

    def test_adversarial_tie_break_differs_on_tied_instance(self):
        # Two poles, equal multiplicities: ties exist and the adversarial
        # pick maximises the distance from the mean.
        pts = np.vstack([np.zeros((3, 2)), np.tile([4.0, 0.0], (3, 1))])
        benign = MinimumDiameterGeometricMedian(n=6, t=1, tie_break="first").aggregate(pts)
        adversarial = MinimumDiameterGeometricMedian(n=6, t=1, tie_break="adversarial").aggregate(pts)
        center = pts.mean(axis=0)
        assert np.linalg.norm(adversarial - center) >= np.linalg.norm(benign - center) - 1e-9

    def test_deterministic(self, cloud_with_outlier):
        rule = MinimumDiameterGeometricMedian(n=10, t=1)
        a = rule.aggregate(cloud_with_outlier)
        b = rule.aggregate(cloud_with_outlier)
        np.testing.assert_allclose(a, b)
