"""Tests for the aggregation rule registry."""

import numpy as np
import pytest

from repro.aggregation.base import AggregationRule
from repro.aggregation.registry import available_rules, make_rule, register_rule


EXPECTED_RULES = {
    "mean",
    "cw-median",
    "trimmed-mean",
    "geomedian",
    "medoid",
    "krum",
    "multi-krum",
    "md-mean",
    "md-geom",
    "box-mean",
    "box-geom",
}


class TestRegistry:
    def test_all_paper_rules_registered(self):
        assert EXPECTED_RULES.issubset(set(available_rules()))

    def test_make_rule_instances(self, gaussian_cloud):
        for name in EXPECTED_RULES:
            rule = make_rule(name, n=10, t=1)
            out = rule.aggregate(gaussian_cloud)
            assert out.shape == (gaussian_cloud.shape[1],)
            assert np.all(np.isfinite(out))

    def test_unknown_rule(self):
        with pytest.raises(KeyError):
            make_rule("does-not-exist", n=10, t=1)

    def test_kwargs_forwarded(self, gaussian_cloud):
        rule = make_rule("multi-krum", n=10, t=1, q=5)
        assert rule.q == 5

    def test_case_insensitive(self):
        rule = make_rule("Box-Geom", n=10, t=1)
        assert rule.name == "box-geom"

    def test_register_duplicate_rejected(self):
        class Dummy(AggregationRule):
            name = "dummy-rule"

            def _aggregate(self, vectors, context):
                return vectors.mean(axis=0)

        register_rule("dummy-rule-test", Dummy)
        try:
            with pytest.raises(ValueError):
                register_rule("dummy-rule-test", Dummy)
            register_rule("dummy-rule-test", Dummy, overwrite=True)
        finally:
            # Clean up so repeated test runs in one session stay isolated.
            from repro.aggregation import registry

            registry._REGISTRY.pop("dummy-rule-test", None)

    def test_register_empty_name_rejected(self):
        class Dummy(AggregationRule):
            def _aggregate(self, vectors, context):
                return vectors.mean(axis=0)

        with pytest.raises(ValueError):
            register_rule("  ", Dummy)
