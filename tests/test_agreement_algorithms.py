"""Behavioural tests of the concrete agreement algorithms.

These tests check the paper's qualitative claims:

- BOX-GEOM / BOX-MEAN converge (honest diameter contracts) even under
  split-brain adversaries (Theorem 4.4).
- MD-GEOM admits non-convergent executions under the adversarial
  tie-break (Lemma 4.2) but behaves well with a benign scheduler.
- Outputs of the BOX algorithms stay inside the honest bounding box.
- The safe-area algorithm works for small d and enforces its resilience
  condition.
"""

import numpy as np
import pytest

from repro.agreement.algorithms import (
    HyperboxGeometricMedianAgreement,
    HyperboxMeanAgreement,
    MinimumDiameterGeometricMedianAgreement,
    MinimumDiameterMeanAgreement,
    SimpleGeometricMedianAgreement,
    SimpleMeanAgreement,
    TrimmedMeanAgreement,
)
from repro.agreement.base import AgreementProtocol
from repro.agreement.registry import available_algorithms, make_algorithm
from repro.agreement.safe_area import SafeAreaAgreement
from repro.byzantine.partition import PartitionAttack
from repro.byzantine.sign_flip import SignFlipAttack


def two_pole_inputs(n_honest, d, separation, rng):
    half = n_honest // 2
    direction = np.zeros(d)
    direction[0] = 1.0
    inputs = np.vstack(
        [np.zeros((half, d)), np.tile(separation * direction, (n_honest - half, 1))]
    )
    noise = rng.normal(0.0, 1e-3, size=inputs.shape)
    return inputs + noise


class TestHyperboxAgreementConvergence:
    @pytest.mark.parametrize("algo_cls", [HyperboxGeometricMedianAgreement, HyperboxMeanAgreement])
    def test_contracts_under_partition_attack(self, algo_cls, rng):
        n, t, d = 10, 2, 4
        honest_count = n - t
        algorithm = algo_cls(n, t)
        group_a = list(range(honest_count // 2))
        group_b = list(range(honest_count // 2, honest_count))
        attack = PartitionAttack(group_a=group_a, group_b=group_b)
        protocol = AgreementProtocol(algorithm, byzantine=(8, 9), attack=attack, seed=1)
        inputs = two_pole_inputs(honest_count, d, separation=8.0, rng=rng)
        result = protocol.run(inputs, rounds=10)
        diameters = result.diameter_trace()
        # Theorem 4.4: E_max at least halves per round, so after 10 rounds
        # the diameter must have contracted by orders of magnitude.
        assert diameters[-1] < diameters[0] * 1e-2
        assert result.converged(epsilon=diameters[0] * 0.05)

    def test_outputs_stay_in_honest_box(self, rng):
        n, t, d = 10, 1, 5
        algorithm = HyperboxGeometricMedianAgreement(n, t)
        protocol = AgreementProtocol(algorithm, byzantine=(9,), attack=SignFlipAttack(scale=50.0), seed=0)
        inputs = rng.normal(size=(n - 1, d))
        result = protocol.run(inputs, rounds=5)
        for round_idx in range(result.rounds):
            mat = result.honest_matrix(round_idx)
            assert np.all(mat >= inputs.min(axis=0) - 1e-9)
            assert np.all(mat <= inputs.max(axis=0) + 1e-9)

    def test_validity_identical_inputs_unchanged(self):
        n, t = 6, 1
        algorithm = HyperboxGeometricMedianAgreement(n, t)
        protocol = AgreementProtocol(algorithm, byzantine=(5,), attack=SignFlipAttack(), seed=0)
        inputs = np.tile([2.0, -1.0, 0.5], (n - 1, 1))
        result = protocol.run(inputs, rounds=3)
        np.testing.assert_allclose(result.final_matrix(), inputs, atol=1e-9)


class TestMinimumDiameterAgreement:
    def test_adversarial_tie_break_non_convergence(self):
        from repro.theory.counterexamples import md_geom_non_convergence_instance

        report = md_geom_non_convergence_instance(rounds=6)
        assert report["converged"] is False
        assert report["final_diameter"] == pytest.approx(report["initial_diameter"], rel=1e-4)

    def test_benign_tie_break_converges_on_same_instance(self):
        from repro.theory.counterexamples import md_geom_non_convergence_instance

        report = md_geom_non_convergence_instance(rounds=6, tie_break="first")
        assert report["converged"] is True

    def test_md_mean_converges_under_sign_flip(self, rng):
        n, t, d = 10, 1, 4
        algorithm = MinimumDiameterMeanAgreement(n, t)
        protocol = AgreementProtocol(algorithm, byzantine=(9,), attack=SignFlipAttack(), seed=0)
        inputs = rng.normal(size=(n - 1, d))
        result = protocol.run(inputs, rounds=4)
        assert result.converged(1e-6)


class TestOtherAgreements:
    def test_trimmed_mean_converges(self, rng):
        n, t, d = 7, 2, 3
        algorithm = TrimmedMeanAgreement(n, t)
        protocol = AgreementProtocol(algorithm, byzantine=(5, 6), attack=SignFlipAttack(), seed=0)
        inputs = rng.normal(size=(n - 2, d))
        result = protocol.run(inputs, rounds=4)
        assert result.converged(1e-9)

    def test_simple_mean_and_geomedian_names(self):
        assert SimpleMeanAgreement(6, 1).name == "mean"
        assert SimpleGeometricMedianAgreement(6, 1).name == "geomedian"

    def test_safe_area_low_dimension(self, rng):
        n, t, d = 8, 1, 2
        algorithm = SafeAreaAgreement(n, t)
        received = rng.normal(size=(n, d))
        out = algorithm.update(received)
        assert out.shape == (d,)

    def test_safe_area_rejects_high_dimension(self, rng):
        n, t, d = 8, 1, 10
        algorithm = SafeAreaAgreement(n, t)
        with pytest.raises(ValueError):
            algorithm.update(rng.normal(size=(n, d)))

    def test_safe_area_quorum(self, rng):
        algorithm = SafeAreaAgreement(9, 1)
        with pytest.raises(ValueError):
            algorithm.update(rng.normal(size=(3, 2)))


class TestAgreementRegistry:
    def test_paper_algorithms_available(self):
        expected = {"box-geom", "box-mean", "md-geom", "md-mean", "trimmed-mean",
                    "safe-area", "mean", "geomedian"}
        assert expected.issubset(set(available_algorithms()))

    def test_make_algorithm(self):
        algo = make_algorithm("box-geom", 10, 1)
        assert isinstance(algo, HyperboxGeometricMedianAgreement)
        assert algo.n == 10 and algo.t == 1

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_algorithm("nope", 10, 1)

    def test_kwargs_forwarded(self):
        algo = make_algorithm("md-geom", 10, 1, tie_break="adversarial")
        assert algo.rule.tie_break == "adversarial"

    def test_all_registered_update_works(self, rng):
        received = rng.normal(size=(10, 3))
        for name in available_algorithms():
            algo = make_algorithm(name, 10, 1)
            out = algo.update(received)
            assert out.shape == (3,)
            assert np.all(np.isfinite(out))
