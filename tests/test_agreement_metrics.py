"""Tests for the approximation-ratio / convergence metrics (Section 3)."""

import numpy as np
import pytest

from repro.agreement.metrics import (
    approximation_ratio,
    contraction_factors,
    covering_ball_of_sgeo,
    epsilon_agreement_reached,
    geometric_median_candidates,
    honest_diameter_trace,
    true_geometric_median,
)
from repro.linalg.geometric_median import geometric_median
from repro.linalg.subsets import subset_count


class TestSgeo:
    def test_candidate_count_exhaustive(self, gaussian_cloud):
        cands = geometric_median_candidates(gaussian_cloud, n=10, t=2)
        assert cands.shape == (subset_count(10, 8), 5)

    def test_single_candidate_when_t_zero(self, gaussian_cloud):
        cands = geometric_median_candidates(gaussian_cloud, n=10, t=0)
        assert cands.shape[0] == 1
        np.testing.assert_allclose(
            cands[0], geometric_median(gaussian_cloud, tol=1e-9, max_iter=200), atol=1e-6
        )

    def test_sampling_budget_respected(self, gaussian_cloud, rng):
        cands = geometric_median_candidates(gaussian_cloud, n=10, t=2, max_subsets=6, rng=rng)
        assert 6 <= cands.shape[0] <= 8

    def test_candidates_inside_input_box(self, cloud_with_outlier):
        cands = geometric_median_candidates(cloud_with_outlier, n=10, t=1)
        assert np.all(cands >= cloud_with_outlier.min(axis=0) - 1e-9)
        assert np.all(cands <= cloud_with_outlier.max(axis=0) + 1e-9)


class TestCoveringBall:
    def test_ball_covers_all_candidates(self, gaussian_cloud):
        ball = covering_ball_of_sgeo(gaussian_cloud, n=10, t=2)
        cands = geometric_median_candidates(gaussian_cloud, n=10, t=2)
        assert ball.contains_all(cands)

    def test_true_median_inside_ball_when_all_honest(self, gaussian_cloud):
        # Lemma 3.2: mu* lies in the convex hull of S_geo, hence inside any
        # ball covering S_geo when the received set equals the honest set.
        ball = covering_ball_of_sgeo(gaussian_cloud, n=10, t=2)
        mu = true_geometric_median(gaussian_cloud)
        assert ball.contains(mu, rtol=1e-6, atol=1e-6)

    def test_zero_radius_without_byzantine_room(self, gaussian_cloud):
        ball = covering_ball_of_sgeo(gaussian_cloud, n=10, t=0)
        assert ball.radius == pytest.approx(0.0, abs=1e-9)


class TestApproximationRatio:
    def test_true_median_has_zero_ratio(self, cloud_with_outlier):
        honest = cloud_with_outlier[:9]
        mu = true_geometric_median(honest)
        ratio = approximation_ratio(mu, honest, cloud_with_outlier, n=10, t=1)
        assert ratio == pytest.approx(0.0, abs=1e-6)

    def test_far_output_large_ratio(self, cloud_with_outlier):
        honest = cloud_with_outlier[:9]
        far = np.full(4, 1e6)
        ratio = approximation_ratio(far, honest, cloud_with_outlier, n=10, t=1)
        assert ratio > 100.0

    def test_degenerate_ball_exact_output(self, gaussian_cloud):
        honest = gaussian_cloud
        mu = true_geometric_median(honest)
        ratio = approximation_ratio(mu, honest, honest, n=10, t=0)
        assert ratio == 0.0

    def test_degenerate_ball_wrong_output_infinite(self, gaussian_cloud):
        honest = gaussian_cloud
        ratio = approximation_ratio(honest.mean(axis=0) + 10.0, honest, honest, n=10, t=0)
        assert ratio == float("inf")

    def test_ratio_scale_invariance(self, cloud_with_outlier):
        honest = cloud_with_outlier[:9]
        out = honest.mean(axis=0)
        r1 = approximation_ratio(out, honest, cloud_with_outlier, n=10, t=1)
        r2 = approximation_ratio(3.0 * out, 3.0 * honest, 3.0 * cloud_with_outlier, n=10, t=1)
        assert r1 == pytest.approx(r2, rel=1e-3)


class TestConvergenceDiagnostics:
    def test_honest_diameter_trace(self, rng):
        mats = [rng.normal(size=(5, 3)) * scale for scale in (1.0, 0.5, 0.1)]
        trace = honest_diameter_trace(mats)
        assert len(trace) == 3
        assert trace[0] > trace[-1]

    def test_contraction_factors(self):
        factors = contraction_factors([8.0, 4.0, 1.0])
        assert factors == [pytest.approx(0.5), pytest.approx(0.25)]

    def test_contraction_factor_zero_prev(self):
        assert contraction_factors([0.0, 0.0]) == [0.0]

    def test_epsilon_agreement(self):
        vectors = np.array([[0.0, 0.0], [0.05, 0.0]])
        assert epsilon_agreement_reached(vectors, 0.1)
        assert not epsilon_agreement_reached(vectors, 0.01)

    def test_epsilon_must_be_positive(self):
        with pytest.raises(ValueError):
            epsilon_agreement_reached(np.zeros((2, 2)), 0.0)
