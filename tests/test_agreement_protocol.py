"""Tests for the agreement protocol runner and result bookkeeping."""

import numpy as np
import pytest

from repro.agreement.algorithms import (
    HyperboxGeometricMedianAgreement,
    HyperboxMeanAgreement,
    TrimmedMeanAgreement,
)
from repro.agreement.base import AggregationAgreement, AgreementProtocol, AgreementResult
from repro.aggregation.mean import Mean
from repro.byzantine.crash import CrashAttack
from repro.byzantine.sign_flip import SignFlipAttack


class TestAgreementResult:
    def test_final_vectors_without_rounds(self):
        initial = {0: np.zeros(2), 1: np.ones(2)}
        result = AgreementResult(initial=initial, honest_ids=(0, 1))
        assert result.rounds == 0
        np.testing.assert_allclose(result.final_matrix(), [[0.0, 0.0], [1.0, 1.0]])

    def test_diameter_trace_starts_at_inputs(self):
        initial = {0: np.zeros(2), 1: np.array([3.0, 4.0])}
        result = AgreementResult(initial=initial, honest_ids=(0, 1))
        assert result.diameter_trace() == [pytest.approx(5.0)]

    def test_converged_epsilon(self):
        initial = {0: np.zeros(1), 1: np.array([0.5])}
        result = AgreementResult(initial=initial, honest_ids=(0, 1))
        assert result.converged(1.0)
        assert not result.converged(0.1)


class TestAggregationAgreement:
    def test_wraps_rule(self, gaussian_cloud):
        agreement = AggregationAgreement(10, 1, Mean())
        out = agreement.update(gaussian_cloud)
        np.testing.assert_allclose(out, gaussian_cloud.mean(axis=0))

    def test_quorum_enforced(self):
        agreement = AggregationAgreement(10, 2, Mean())
        with pytest.raises(ValueError):
            agreement.update(np.zeros((5, 3)))

    def test_resilience_bound_enforced(self):
        with pytest.raises(ValueError):
            HyperboxGeometricMedianAgreement(9, 3)

    def test_minimum_messages(self):
        assert HyperboxGeometricMedianAgreement(10, 3).minimum_messages() == 7


class TestAgreementProtocol:
    def test_no_byzantine_converges_immediately(self, rng):
        algorithm = HyperboxMeanAgreement(6, 1)
        protocol = AgreementProtocol(algorithm, byzantine=(), attack=None)
        inputs = rng.normal(size=(6, 3))
        result = protocol.run(inputs, rounds=2)
        # All nodes see the same messages, so they agree exactly after one round.
        assert result.diameter_trace()[1] == pytest.approx(0.0, abs=1e-12)

    def test_crash_attack_tolerated(self, rng):
        n, t = 7, 2
        algorithm = HyperboxGeometricMedianAgreement(n, t)
        protocol = AgreementProtocol(algorithm, byzantine=(5, 6), attack=CrashAttack())
        inputs = rng.normal(size=(n - 2, 4))
        result = protocol.run(inputs, rounds=3)
        assert result.converged(1e-6)

    def test_sign_flip_attack_converges_and_stays_in_honest_box(self, rng):
        n, t = 10, 1
        algorithm = HyperboxGeometricMedianAgreement(n, t)
        protocol = AgreementProtocol(algorithm, byzantine=(9,), attack=SignFlipAttack())
        inputs = rng.normal(size=(n - 1, 5))
        result = protocol.run(inputs, rounds=4)
        assert result.converged(1e-6)
        final = result.final_matrix()
        assert np.all(final >= inputs.min(axis=0) - 1e-9)
        assert np.all(final <= inputs.max(axis=0) + 1e-9)

    def test_too_many_byzantine_rejected(self):
        algorithm = HyperboxMeanAgreement(10, 1)
        with pytest.raises(ValueError):
            AgreementProtocol(algorithm, byzantine=(8, 9), attack=SignFlipAttack())

    def test_byzantine_id_out_of_range(self):
        algorithm = HyperboxMeanAgreement(10, 2)
        with pytest.raises(ValueError):
            AgreementProtocol(algorithm, byzantine=(10,), attack=None)

    def test_dict_inputs(self, rng):
        algorithm = TrimmedMeanAgreement(5, 1)
        protocol = AgreementProtocol(algorithm, byzantine=(4,), attack=CrashAttack())
        inputs = {i: rng.normal(size=3) for i in range(4)}
        result = protocol.run(inputs, rounds=2)
        assert set(result.final_vectors()) == {0, 1, 2, 3}

    def test_missing_dict_input_rejected(self, rng):
        algorithm = TrimmedMeanAgreement(5, 1)
        protocol = AgreementProtocol(algorithm, byzantine=(4,), attack=None)
        with pytest.raises(ValueError):
            protocol.run({0: np.zeros(2)}, rounds=1)

    def test_matrix_input_row_count_mismatch(self, rng):
        algorithm = TrimmedMeanAgreement(5, 1)
        protocol = AgreementProtocol(algorithm, byzantine=(4,), attack=None)
        with pytest.raises(ValueError):
            protocol.run(rng.normal(size=(5, 2)), rounds=1)

    def test_zero_rounds_returns_inputs(self, rng):
        algorithm = TrimmedMeanAgreement(4, 1)
        protocol = AgreementProtocol(algorithm, byzantine=(), attack=None)
        inputs = rng.normal(size=(4, 2))
        result = protocol.run(inputs, rounds=0)
        np.testing.assert_allclose(result.final_matrix(), inputs)

    def test_negative_rounds_rejected(self, rng):
        algorithm = TrimmedMeanAgreement(4, 1)
        protocol = AgreementProtocol(algorithm, byzantine=(), attack=None)
        with pytest.raises(ValueError):
            protocol.run(rng.normal(size=(4, 2)), rounds=-1)
