"""Agreement-protocol regression tests.

Two families of guarantees the multi-round algorithms must keep:

- **contraction** — honest disagreement never grows across sub-rounds:
  the Euclidean diameter for the safe-area algorithm (whose update
  stays inside the convex hull of honest values), and the per-coordinate
  spread for the hyperbox algorithms (whose update stays inside the
  locally trusted hyperbox, itself inside the honest coordinate range).
- **Krum neighbourhood clipping** — the configurable neighbourhood is
  clipped to ``m - 1`` when fewer than ``n - t`` vectors arrive, and a
  nonsensical ``t >= n`` fails loudly instead of silently clamping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.krum import Krum, krum_scores
from repro.agreement.algorithms import (
    HyperboxGeometricMedianAgreement,
    HyperboxMeanAgreement,
)
from repro.agreement.base import AgreementProtocol
from repro.agreement.safe_area import SafeAreaAgreement
from repro.byzantine.registry import make_attack
from repro.linalg.distances import max_coordinate_spread


def honest_inputs(seed: int, count: int, d: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(0.0, 3.0, size=(count, d))


class TestDiameterContraction:
    def test_safe_area_diameter_non_increasing_under_crash(self):
        n, t, d = 7, 2, 2
        algorithm = SafeAreaAgreement(n, t, grid_resolution=2)
        protocol = AgreementProtocol(algorithm, byzantine=(5, 6), attack=None)
        result = protocol.run(honest_inputs(0, n - t, d), rounds=4)
        trace = result.diameter_trace()
        for before, after in zip(trace, trace[1:]):
            assert after <= before + 1e-9, f"diameter grew: {trace}"
        assert trace[-1] < trace[0]  # it actually contracts, too

    def test_safe_area_diameter_non_increasing_one_dimension(self):
        n, t, d = 7, 2, 1
        algorithm = SafeAreaAgreement(n, t)
        protocol = AgreementProtocol(algorithm, byzantine=(6,), attack=None)
        result = protocol.run(honest_inputs(1, n - 1, d), rounds=5)
        trace = result.diameter_trace()
        for before, after in zip(trace, trace[1:]):
            assert after <= before + 1e-9, f"diameter grew: {trace}"

    @pytest.mark.parametrize(
        "algorithm_cls", (HyperboxMeanAgreement, HyperboxGeometricMedianAgreement)
    )
    def test_hyperbox_spread_non_increasing_under_sign_flip(self, algorithm_cls):
        """Every hyperbox update lands inside the locally trusted box,
        which lies inside the honest per-coordinate range — so the
        honest coordinate spread (``E_max``) cannot grow, even against
        the paper's sign-flip adversary."""
        n, t, d = 7, 2, 3
        algorithm = algorithm_cls(n, t)
        protocol = AgreementProtocol(
            algorithm, byzantine=(5, 6), attack=make_attack("sign-flip"), seed=3
        )
        result = protocol.run(honest_inputs(2, n - t, d), rounds=4)
        spreads = [max_coordinate_spread(result.honest_matrix(None))]
        spreads += [
            max_coordinate_spread(result.honest_matrix(r)) for r in range(result.rounds)
        ]
        for before, after in zip(spreads, spreads[1:]):
            assert after <= before + 1e-9, f"coordinate spread grew: {spreads}"
        assert spreads[-1] < spreads[0]


class TestKrumNeighbourhoodBoundary:
    def test_invalid_tolerance_raises_like_rule_constructor(self):
        vectors = honest_inputs(3, 4, 3)
        with pytest.raises(ValueError, match="t must be smaller than n, got n=4, t=4"):
            krum_scores(vectors, n=4, t=4)
        with pytest.raises(ValueError, match="t must be smaller than n"):
            krum_scores(vectors, n=3, t=5)
        with pytest.raises(ValueError, match="n must be positive"):
            krum_scores(vectors, n=0, t=0)
        with pytest.raises(ValueError, match="t must be non-negative"):
            krum_scores(vectors, n=4, t=-1)

    def test_inferred_n_with_excessive_t_raises(self):
        # With n inferred from the received stack, t >= m is nonsensical
        # and must fail instead of clamping the neighbourhood to 1.
        vectors = honest_inputs(4, 3, 2)
        rule = Krum(n=None, t=3)
        with pytest.raises(ValueError, match="t must be smaller than n"):
            rule.aggregate(vectors)

    def test_neighbourhood_clipped_below_quorum(self):
        """m < n - t: the requested neighbourhood saturates at m - 1."""
        n, t = 10, 2
        vectors = honest_inputs(5, 6, 4)  # m = 6 < n - t = 8
        clipped = krum_scores(vectors, n, t, neighbourhood=n - t - 1)
        explicit = krum_scores(vectors, n, t, neighbourhood=vectors.shape[0] - 1)
        np.testing.assert_array_equal(clipped, explicit)
        # The default neighbourhood (n - t - 1 = 7) clips identically.
        np.testing.assert_array_equal(krum_scores(vectors, n, t), explicit)

    def test_boundary_exactly_quorum_not_clipped(self):
        """m = n - t: the default neighbourhood m - 1 fits exactly."""
        n, t = 8, 2
        vectors = honest_inputs(6, n - t, 4)  # m = 6, default k = 5 = m - 1
        default = krum_scores(vectors, n, t)
        explicit = krum_scores(vectors, n, t, neighbourhood=vectors.shape[0] - 1)
        np.testing.assert_array_equal(default, explicit)
        # One more neighbour than exists is the first clipped value.
        np.testing.assert_array_equal(
            krum_scores(vectors, n, t, neighbourhood=vectors.shape[0]), explicit
        )
        # One fewer genuinely changes the scores on generic inputs.
        tighter = krum_scores(vectors, n, t, neighbourhood=vectors.shape[0] - 2)
        assert not np.array_equal(tighter, explicit)

    def test_selection_consistent_across_boundary(self):
        n, t = 9, 2
        vectors = honest_inputs(7, 5, 3)  # m = 5 < n - t = 7
        wide = Krum(n=n, t=t, neighbourhood=n - t - 1)
        exact = Krum(n=n, t=t, neighbourhood=vectors.shape[0] - 1)
        assert wide.selected_index(vectors) == exact.selected_index(vectors)
        np.testing.assert_array_equal(wide.aggregate(vectors), exact.aggregate(vectors))
