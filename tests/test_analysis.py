"""Tests for repro.analysis (trace statistics and reporting)."""

import numpy as np
import pytest

from repro.analysis.reporting import comparison_table, histories_to_records
from repro.analysis.traces import (
    classify_trace,
    moving_average,
    relative_gap,
    summarize_history,
)
from repro.learning.history import RoundRecord, TrainingHistory


def make_history(accuracies, aggregation="box-geom"):
    history = TrainingHistory(
        setting="centralized", aggregation=aggregation, attack="sign-flip",
        heterogeneity="mild", num_clients=10, num_byzantine=1,
    )
    for r, acc in enumerate(accuracies):
        history.append(RoundRecord(round_index=r, accuracy=acc, loss=1.0 - acc))
    return history


class TestMovingAverage:
    def test_constant_sequence_unchanged(self):
        assert moving_average([0.5] * 6, window=3) == [0.5] * 6

    def test_length_preserved(self):
        assert len(moving_average([0.1, 0.2, 0.9], window=5)) == 3

    def test_smooths_spike(self):
        smooth = moving_average([0.0, 0.0, 1.0, 0.0, 0.0], window=3)
        assert max(smooth) < 1.0

    def test_window_one_is_identity(self):
        values = [0.1, 0.9, 0.3]
        assert moving_average(values, window=1) == values

    def test_empty(self):
        assert moving_average([], window=3) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([0.1], window=0)


class TestRelativeGap:
    def test_sign(self):
        assert relative_gap(0.8, 0.4) > 0
        assert relative_gap(0.4, 0.8) < 0

    def test_zero_denominator_guard(self):
        assert relative_gap(0.0, 0.0) == 0.0


class TestClassifyTrace:
    def test_converging(self):
        trace = list(np.linspace(0.1, 0.9, 30))
        assert classify_trace(trace) == "converging"

    def test_stagnant(self):
        trace = [0.1] * 20
        assert classify_trace(trace) == "stagnant"

    def test_diverging(self):
        trace = list(np.linspace(0.1, 0.7, 15)) + [0.12] * 15
        assert classify_trace(trace) == "diverging"

    def test_unstable(self):
        rng = np.random.default_rng(0)
        trace = (0.5 + 0.3 * np.sin(np.arange(40)) + rng.normal(0, 0.02, 40)).clip(0, 1)
        assert classify_trace(trace.tolist()) in ("unstable", "diverging")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify_trace([])


class TestSummaries:
    def test_summarize_history(self):
        history = make_history(list(np.linspace(0.1, 0.8, 20)))
        summary = summarize_history(history)
        assert summary.final == pytest.approx(0.8)
        assert summary.best == pytest.approx(0.8)
        assert summary.classification == "converging"
        assert summary.above_chance

    def test_summarize_empty_rejected(self):
        history = TrainingHistory(
            setting="centralized", aggregation="mean", attack=None,
            heterogeneity="uniform", num_clients=2, num_byzantine=0,
        )
        with pytest.raises(ValueError):
            summarize_history(history)

    def test_histories_to_records(self):
        histories = {
            "box-geom": make_history(list(np.linspace(0.1, 0.8, 20))),
            "mean": make_history([0.1] * 20, aggregation="mean"),
        }
        records = histories_to_records(histories)
        assert len(records) == 2
        by_label = {r["label"]: r for r in records}
        assert by_label["box-geom"]["classification"] == "converging"
        assert by_label["mean"]["classification"] == "stagnant"

    def test_comparison_table_contains_all_labels(self):
        histories = {
            "box-geom": make_history([0.1, 0.5, 0.8]),
            "md-mean": make_history([0.1, 0.1, 0.1], aggregation="md-mean"),
        }
        table = comparison_table(histories)
        assert "box-geom" in table and "md-mean" in table
        assert "verdict" in table


class TestFormatPercent:
    """The shared NaN-aware percent formatter (PR 6 bugfix)."""

    def test_finite(self):
        from repro.analysis.reporting import format_percent

        assert format_percent(0.5) == "  50.0%"
        assert format_percent(1.0) == " 100.0%"
        assert len(format_percent(0.123)) == 7

    def test_nan_and_none_render_dash(self):
        from repro.analysis.reporting import format_percent

        assert format_percent(float("nan")) == "      -"
        # None is what the strict-JSON writer leaves behind for NaN.
        assert format_percent(None) == "      -"
        assert "nan" not in format_percent(float("nan"))

    def test_width(self):
        from repro.analysis.reporting import format_percent

        assert format_percent(0.5, width=9) == "    50.0%"
        assert format_percent(None, width=9) == "        -"


class TestSweepTableNaN:
    """Zero-sent cells render '-' instead of 'nan%' (PR 6 bugfix)."""

    @staticmethod
    def _row(index, worst, sent=0, delivered=0, late=0):
        return {
            "index": index,
            "axes": {"aggregation": f"rule{index}"},
            "summary": {
                "final_accuracy": 0.5,
                "best_accuracy": 0.6,
                "rounds": 2,
                "network": {"sent": sent, "delivered": delivered},
                "trace": {"rounds": 2, "worst_deliv": worst, "late": late},
            },
        }

    def test_zero_sent_trace_renders_dash(self):
        from repro.analysis.reporting import sweep_summary_table

        rows = [
            self._row(0, worst=None),  # zero sent: NaN nulled by writer
            self._row(1, worst=0.75, sent=8, delivered=6),
        ]
        table = sweep_summary_table(rows)
        assert "nan" not in table
        lines = table.splitlines()
        assert lines[2].rstrip().endswith("-       -      0")
        assert "75.0%" in lines[3]

    def test_zero_sent_float_nan_renders_dash(self):
        # In-process rows (no JSON round trip) carry the real NaN.
        from repro.analysis.reporting import sweep_summary_table

        table = sweep_summary_table([self._row(0, worst=float("nan"))])
        assert "nan" not in table


class TestAxisNameRecovery:
    """Axes-mapping-first column recovery (PR 6 bugfix)."""

    def test_order_recovered_from_escaped_cell_id(self):
        from repro.analysis.reporting import sweep_summary_table

        rows = [
            {
                "index": 0,
                "cell_id": "beta=x/alpha=a%2Fb",
                "axes": {"alpha": "a/b", "beta": "x"},
                "summary": {"final_accuracy": 0.1, "best_accuracy": 0.1,
                            "rounds": 1},
            }
        ]
        header = sweep_summary_table(rows).splitlines()[0]
        # Grid order (beta first) restored from the cell id, not the
        # mapping's sorted order.
        assert header.index("beta") < header.index("alpha")

    def test_axes_mapping_wins_over_ambiguous_legacy_id(self):
        from repro.analysis.reporting import sweep_summary_table

        # A legacy id whose value embeds a raw '/' mis-parses into bogus
        # names; the axes mapping is authoritative.
        rows = [
            {
                "index": 0,
                "cell_id": "alpha=a/b=c",  # pre-escaping id
                "axes": {"alpha": "a/b=c"},
                "summary": {"final_accuracy": 0.1, "best_accuracy": 0.1,
                            "rounds": 1},
            }
        ]
        header = sweep_summary_table(rows).splitlines()[0]
        assert "alpha" in header and " b " not in header

    def test_explicit_axis_names_pin_order(self):
        from repro.analysis.reporting import sweep_summary_table

        rows = [
            {
                "index": 0,
                "axes": {"a": "1", "b": "2"},
                "summary": {"final_accuracy": 0.1, "best_accuracy": 0.1,
                            "rounds": 1},
            }
        ]
        header = sweep_summary_table(rows, axis_names=["b", "a"]).splitlines()[0]
        assert header.index("b") < header.index("a")
